"""Fault injectors: turn error models into bit flips on simulated arrays.

All injectors implement :meth:`FaultInjector.inject`, which flips cells of
a :class:`repro.xbar.CrossbarArray` (and optionally check-bits in a
:class:`repro.core.CheckStore`) and returns an :class:`InjectionResult`
describing exactly what was flipped — campaigns need the ground truth to
classify ECC behaviour as corrected / detected / miscorrected.

The batched campaign engine (:mod:`repro.faults.batch`) drives the same
models through :meth:`FaultInjector.inject_batch`, which upsets a stack of
``B`` trials held as ``(B, n, n)`` / ``(B, m, b, b)`` tensors, and through
:meth:`FaultInjector.inject_batch_packed`, which upsets the bit-sliced
``uint64`` layout (64 trials per word, :mod:`repro.utils.bitpack`). All
paths share the RNG-consuming draw core (:meth:`FaultInjector
._draw_batch`), and every implementation draws per trial in the scalar
order (data mask, then check plane 0, then plane 1, ...), so a batched
run — packed or not — consumes an injector's stream exactly as ``B``
scalar :meth:`inject` calls would; the host-side draws are converted to
flip events first and only the application step depends on the layout.
This is the property the differential test harnesses
(`tests/faults/test_batch_equivalence.py`,
`tests/faults/test_packed_equivalence.py`) pin down.

Check planes are code-defined: the diagonal code stores two ``(m, b, b)``
planes (leading, counter), the row+column product code two, and the
matrix codes of :mod:`repro.core.registry` a single ``(r, b, b)`` plane.
Injectors therefore draw over a *tuple* of per-plane shapes
(``plane_shapes``) rather than a hardwired pair; for the diagonal
layout (two equal planes) the consumed stream is bit-identical to the
historical two-plane draw order, which keeps every existing seeding
contract intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checkstore import CheckStore
from repro.faults.ser import probability_from_fit
from repro.utils.backend import BackendLike, get_backend
from repro.utils.rng import SeedLike, make_rng
from repro.xbar.crossbar import CrossbarArray

#: Plane codes used by the flat batched ground truth.
PLANE_LEADING = 0
PLANE_COUNTER = 1
PLANE_NAMES = ("leading", "counter")


@dataclass
class InjectionResult:
    """Ground truth of one injection round."""

    data_flips: List[Tuple[int, int]] = field(default_factory=list)
    check_flips: List[Tuple[str, int, int, int]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Total number of injected upsets (data + check bits)."""
        return len(self.data_flips) + len(self.check_flips)

    def merge(self, other: "InjectionResult") -> "InjectionResult":
        """Union of two injection rounds."""
        return InjectionResult(self.data_flips + other.data_flips,
                               self.check_flips + other.check_flips)


@dataclass
class BatchInjectionResult:
    """Ground truth of one injection round over ``B`` stacked trials.

    Flip events are stored flat with a trial index per event — the
    memory-light layout keeps per-trial reductions (totals, multi-fault
    block counts) as single ``bincount`` passes. Duplicate events are kept
    (a cell listed twice flipped twice), matching the scalar ground truth.
    """

    batch: int
    #: Data flip events: parallel arrays (trial, row, col).
    trial: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    #: Check-bit flip events: parallel arrays (trial, plane, d, br, bc).
    check_trial: np.ndarray
    check_plane: np.ndarray
    check_d: np.ndarray
    check_br: np.ndarray
    check_bc: np.ndarray

    @classmethod
    def from_events(cls, batch: int,
                    data_events: Sequence[Tuple[int, np.ndarray, np.ndarray]],
                    check_events: Sequence[Tuple[int, int, np.ndarray,
                                                 np.ndarray, np.ndarray]],
                    ) -> "BatchInjectionResult":
        """Assemble from per-trial event lists.

        ``data_events`` holds ``(trial, rows, cols)`` tuples and
        ``check_events`` holds ``(trial, plane, ds, brs, bcs)`` tuples.
        """
        i64 = np.int64
        if data_events:
            trial = np.concatenate([np.full(r.size, t, dtype=i64)
                                    for t, r, _ in data_events])
            rows = np.concatenate([np.asarray(r, dtype=i64)
                                   for _, r, _ in data_events])
            cols = np.concatenate([np.asarray(c, dtype=i64)
                                   for _, _, c in data_events])
        else:
            trial = rows = cols = np.empty(0, dtype=i64)
        if check_events:
            check_trial = np.concatenate([np.full(d.size, t, dtype=i64)
                                          for t, _, d, _, _ in check_events])
            check_plane = np.concatenate([np.full(d.size, p, dtype=i64)
                                          for _, p, d, _, _ in check_events])
            check_d = np.concatenate([np.asarray(d, dtype=i64)
                                      for _, _, d, _, _ in check_events])
            check_br = np.concatenate([np.asarray(br, dtype=i64)
                                       for _, _, _, br, _ in check_events])
            check_bc = np.concatenate([np.asarray(bc, dtype=i64)
                                       for _, _, _, _, bc in check_events])
        else:
            check_trial = check_plane = check_d = check_br = check_bc = \
                np.empty(0, dtype=i64)
        return cls(batch, trial, rows, cols, check_trial, check_plane,
                   check_d, check_br, check_bc)

    @property
    def totals(self) -> np.ndarray:
        """Per-trial total injected upsets (data + check bits), ``(B,)``."""
        return (np.bincount(self.trial, minlength=self.batch)
                + np.bincount(self.check_trial, minlength=self.batch))

    def multi_fault_blocks(self, grid) -> np.ndarray:
        """Per-trial count of blocks hit by >= 2 upsets, ``(B,)``.

        Mirrors ``FaultCampaign._count_multi_fault_blocks``: a block's
        tally includes its data cells and its own check-bits, and every
        flip event counts (duplicates included).
        """
        b = grid.blocks_per_side
        blocks = b * b
        keys = np.concatenate([
            self.trial * blocks + (self.rows // grid.m) * b
            + (self.cols // grid.m),
            self.check_trial * blocks + self.check_br * b + self.check_bc,
        ])
        per_block = np.bincount(keys, minlength=self.batch * blocks)
        return (per_block.reshape(self.batch, blocks) >= 2).sum(axis=1)

    def result_of(self, i: int,
                  plane_names: Sequence[str] = PLANE_NAMES) -> InjectionResult:
        """Scalar-shaped ground truth of trial ``i`` (differential tests).

        ``plane_names`` maps plane ids to the scalar flip-event plane
        labels; it defaults to the diagonal pair and should be a code's
        ``plane_names`` for other check-plane layouts.
        """
        sel = self.trial == i
        csel = self.check_trial == i
        return InjectionResult(
            data_flips=list(zip(self.rows[sel].tolist(),
                                self.cols[sel].tolist())),
            check_flips=[(plane_names[p], d, br, bc)
                         for p, d, br, bc in zip(
                             self.check_plane[csel].tolist(),
                             self.check_d[csel].tolist(),
                             self.check_br[csel].tolist(),
                             self.check_bc[csel].tolist())],
        )

    def apply_planes(self, data, planes: Sequence,
                     backend: BackendLike = None) -> None:
        """XOR every flip event into the batch tensors (in place).

        ``planes`` is the code-ordered sequence of stored check-plane
        tensors (``None`` entries are skipped — check memory not
        exposed). The scatter applies repeated events as repeated
        inversions, so duplicated cells cancel pairwise exactly like
        repeated scalar :meth:`CrossbarArray.flip` calls. The tensors
        live on ``backend`` (:meth:`repro.utils.backend.ArrayBackend
        .scatter_xor`); the flip event arrays themselves always stay
        host-side numpy.
        """
        be = get_backend(backend)
        if self.trial.size:
            be.scatter_xor(data, (self.trial, self.rows, self.cols))
        for plane_id, plane in enumerate(planes):
            if plane is None:
                continue
            sel = self.check_plane == plane_id
            if sel.any():
                be.scatter_xor(
                    plane, (self.check_trial[sel], self.check_d[sel],
                            self.check_br[sel], self.check_bc[sel]))

    def apply(self, data, lead, ctr, backend: BackendLike = None) -> None:
        """Two-plane (diagonal layout) wrapper over :meth:`apply_planes`."""
        self.apply_planes(data, (lead, ctr), backend=backend)

    def apply_planes_packed(self, data, planes: Sequence,
                            backend: BackendLike = None) -> None:
        """XOR every flip event into packed ``uint64`` word tensors.

        The bit-slice analogue of :meth:`apply_planes`: trial ``i``'s
        event becomes the single-bit mask ``1 << (i % 64)`` scatter-XORed
        into word ``i // 64`` at the event's cell
        (:mod:`repro.utils.bitpack` layout), so duplicated events cancel
        pairwise exactly like the unpacked scatter. The host-side event
        arrays are the same either way — the ground truth is
        layout-independent.
        """
        be = get_backend(backend)
        one = np.uint64(1)
        if self.trial.size:
            bits = one << (self.trial % 64).astype(np.uint64)
            be.scatter_xor(data, (self.trial // 64, self.rows, self.cols),
                           bits)
        for plane_id, plane in enumerate(planes):
            if plane is None:
                continue
            sel = self.check_plane == plane_id
            if sel.any():
                t = self.check_trial[sel]
                bits = one << (t % 64).astype(np.uint64)
                be.scatter_xor(
                    plane, (t // 64, self.check_d[sel],
                            self.check_br[sel], self.check_bc[sel]), bits)

    def apply_packed(self, data, lead, ctr,
                     backend: BackendLike = None) -> None:
        """Two-plane (diagonal layout) wrapper over
        :meth:`apply_planes_packed`."""
        self.apply_planes_packed(data, (lead, ctr), backend=backend)


def _resolve_rngs(rngs, default_rng: Optional[np.random.Generator],
                  batch: int) -> Sequence[np.random.Generator]:
    """Per-trial generators for a batched injection round.

    ``None`` falls back to the injector's own stream consumed sequentially
    across trials — the scalar-compatible mode. An explicit sequence (one
    generator per trial) enables the sharded per-trial seeding of
    :mod:`repro.faults.batch`.
    """
    if rngs is None:
        return [default_rng] * batch
    rngs = list(rngs)
    if len(rngs) != batch:
        raise ValueError(f"need {batch} per-trial generators, got {len(rngs)}")
    return rngs


class FaultInjector:
    """Base class; concrete injectors override :meth:`inject`."""

    def to_config(self) -> dict:
        """This injector's declarative ``{"kind", "params"}`` config.

        The JSON form :mod:`repro.faults.serialize` registers builders
        for — what lets a :class:`repro.faults.batch.ShardTask` cross
        process and host boundaries as plain data. Seeds are not part of
        the config: per-trial seeding never consumes the injector's own
        stream, so the config fully determines relocatable behaviour.
        Classes without a declarative form (explicit flip lists, ad-hoc
        test doubles) raise ``TypeError``.
        """
        raise TypeError(
            f"{type(self).__name__} has no declarative config; only "
            f"registered injector kinds (repro.faults.serialize) can be "
            f"serialized for distributed execution")

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None,
               rng: Optional[np.random.Generator] = None) -> InjectionResult:
        """Apply one round of upsets; return the ground truth.

        ``rng`` overrides the injector's own stream for this round — the
        hook the per-trial-seeded differential reference uses.
        """
        raise NotImplementedError

    def _draw_batch(self, batch: int, data_shape: Tuple[int, ...],
                    plane_shapes: Optional[Tuple[Tuple[int, ...], ...]],
                    rngs: Optional[Sequence[np.random.Generator]],
                    ) -> BatchInjectionResult:
        """Draw one round of upsets for ``batch`` trials (no application).

        The layout-independent core both :meth:`inject_batch` and
        :meth:`inject_batch_packed` share: concrete injectors implement
        their per-trial draws here, in the scalar draw order, and the
        base class applies the resulting ground truth to whichever
        tensor layout is in play. ``plane_shapes`` is the code-ordered
        tuple of per-trial check-plane shapes — ``((m, b, b), (m, b, b))``
        for the diagonal layout, ``((r, b, b),)`` for a single-plane
        matrix code — or ``None``/empty when check memory is not exposed.
        Draws happen per plane in tuple order, after the data draw.
        """
        raise NotImplementedError

    def inject_batch_planes(self, data, planes: Sequence = (),
                            rngs: Optional[Sequence[np.random.Generator]]
                            = None,
                            backend: BackendLike = None
                            ) -> BatchInjectionResult:
        """Apply one round of upsets to a ``(B, n, n)`` stack, in place.

        ``planes`` is the code-ordered sequence of stored check-plane
        tensors (each ``(B, rk, b, b)``); empty when check memory is not
        exposed (the batched analogue of passing ``store=None`` to
        :meth:`inject`). ``rngs`` supplies one generator per trial;
        ``None`` consumes the injector's own stream sequentially, which
        reproduces ``B`` scalar rounds bit-for-bit. ``backend`` names the
        array backend holding the stacked tensors; draws always happen
        host-side so the stream contract is backend-independent.
        """
        planes = tuple(planes)
        shapes = tuple(tuple(p.shape[1:]) for p in planes) or None
        result = self._draw_batch(int(data.shape[0]), tuple(data.shape[1:]),
                                  shapes, rngs)
        result.apply_planes(data, planes, backend=backend)
        return result

    def inject_batch(self, data, lead=None, ctr=None,
                     rngs: Optional[Sequence[np.random.Generator]] = None,
                     backend: BackendLike = None) -> BatchInjectionResult:
        """Two-plane (diagonal layout) wrapper over
        :meth:`inject_batch_planes`.

        ``lead``/``ctr`` are the stored check-bit planes ``(B, m, b, b)``
        or ``None`` when check memory is not exposed. As historically,
        the two planes share ``lead``'s shape for the draws.
        """
        shapes = None if lead is None else (tuple(lead.shape[1:]),) * 2
        result = self._draw_batch(int(data.shape[0]), tuple(data.shape[1:]),
                                  shapes, rngs)
        result.apply_planes(data, (lead, ctr), backend=backend)
        return result

    def inject_batch_planes_packed(self, batch: int, data,
                                   planes: Sequence = (),
                                   rngs: Optional[
                                       Sequence[np.random.Generator]] = None,
                                   backend: BackendLike = None
                                   ) -> BatchInjectionResult:
        """Apply one round of upsets to a packed ``(W, n, n)`` word stack.

        The bit-slice analogue of :meth:`inject_batch_planes`: ``data``
        holds ``batch`` trials packed 64 per ``uint64`` word along axis 0
        (:mod:`repro.utils.bitpack` layout) and ``planes`` the packed
        ``(W, rk, b, b)`` check-bit words (empty when not exposed).
        ``batch`` is the true trial count (it cannot be recovered from
        ``W`` when ``batch % 64 != 0``). The RNG draws are identical to
        the unpacked path — same per-trial order, same host-side streams
        — so both seeding contracts of :mod:`repro.faults.batch` hold
        regardless of layout; only the application step differs
        (:meth:`BatchInjectionResult.apply_planes_packed`).
        """
        planes = tuple(planes)
        shapes = tuple(tuple(p.shape[1:]) for p in planes) or None
        result = self._draw_batch(int(batch), tuple(data.shape[1:]),
                                  shapes, rngs)
        result.apply_planes_packed(data, planes, backend=backend)
        return result

    def inject_batch_packed(self, batch: int, data, lead=None, ctr=None,
                            rngs: Optional[Sequence[np.random.Generator]]
                            = None,
                            backend: BackendLike = None
                            ) -> BatchInjectionResult:
        """Two-plane (diagonal layout) wrapper over
        :meth:`inject_batch_planes_packed`."""
        shapes = None if lead is None else (tuple(lead.shape[1:]),) * 2
        result = self._draw_batch(int(batch), tuple(data.shape[1:]),
                                  shapes, rngs)
        result.apply_planes_packed(data, (lead, ctr), backend=backend)
        return result


class MaskFieldInjector(FaultInjector):
    """Base for injectors drawing one index field per plane per round.

    Subclasses implement :meth:`_draw_mask_indices` (which cells of a
    given plane shape upset this round) and set ``include_check_bits``
    and ``rng``; the shared bodies here fix the per-trial draw order —
    data mask, then each check plane in code order — in **one** place
    for both the scalar and the batched path, which is what makes
    sequential-seeded batched runs bit-identical to ``B`` scalar
    :meth:`inject` calls for every subclass.
    """

    include_check_bits: bool = True
    rng: np.random.Generator

    def _draw_mask_indices(self, rng: np.random.Generator,
                           shape: Tuple[int, ...]) -> Tuple[np.ndarray, ...]:
        """Indices of cells upset this round within one plane."""
        raise NotImplementedError

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None,
               rng: Optional[np.random.Generator] = None) -> InjectionResult:
        rng = self.rng if rng is None else rng
        result = InjectionResult()
        rows, cols = self._draw_mask_indices(rng, (mem.rows, mem.cols))
        if rows.size:
            mem.flip_many(rows, cols)
            result.data_flips = list(zip(rows.tolist(), cols.tolist()))
        if store is not None and self.include_check_bits:
            for plane, arr in (("leading", store.lead), ("counter", store.ctr)):
                ds, brs, bcs = self._draw_mask_indices(rng, arr.shape)
                for d, br, bc in zip(ds.tolist(), brs.tolist(), bcs.tolist()):
                    store.flip(plane, d, br, bc)
                    result.check_flips.append((plane, d, br, bc))
        return result

    def _draw_batch(self, batch: int, data_shape: Tuple[int, ...],
                    plane_shapes: Optional[Tuple[Tuple[int, ...], ...]],
                    rngs: Optional[Sequence[np.random.Generator]],
                    ) -> BatchInjectionResult:
        rngs = _resolve_rngs(rngs, self.rng, batch)
        data_events, check_events = [], []
        for i, rng in enumerate(rngs):
            rows, cols = self._draw_mask_indices(rng, data_shape)
            if rows.size:
                data_events.append((i, rows, cols))
            if plane_shapes and self.include_check_bits:
                for plane_id, shape in enumerate(plane_shapes):
                    ds, brs, bcs = self._draw_mask_indices(rng, shape)
                    if ds.size:
                        check_events.append((i, plane_id, ds, brs, bcs))
        return BatchInjectionResult.from_events(batch, data_events,
                                                check_events)


class UniformInjector(MaskFieldInjector):
    """Paper's model: i.i.d. upsets with per-bit probability ``p``.

    ``p`` is usually derived from an SER and an exposure window via
    :func:`repro.faults.ser.probability_from_fit`; the convenience
    constructor :meth:`from_ser` does exactly that. When a ``store`` is
    provided, check-bits are exposed at the same per-bit probability —
    check memory is built from the same memristors as data memory.
    """

    def __init__(self, probability: float, seed: SeedLike = None,
                 include_check_bits: bool = True):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0,1], got {probability}")
        self.probability = probability
        self.include_check_bits = include_check_bits
        self.rng = make_rng(seed)

    def to_config(self) -> dict:
        return {"kind": "uniform",
                "params": {"probability": self.probability,
                           "include_check_bits": self.include_check_bits}}

    @classmethod
    def from_ser(cls, ser_fit_per_bit: float, hours: float,
                 seed: SeedLike = None,
                 include_check_bits: bool = True) -> "UniformInjector":
        """Injector with ``p = 1 - exp(-lambda T / 1e9)``."""
        return cls(probability_from_fit(ser_fit_per_bit, hours), seed,
                   include_check_bits)

    def _draw_mask_indices(self, rng: np.random.Generator,
                           shape: Tuple[int, ...]) -> Tuple[np.ndarray, ...]:
        """Indices of cells upset this round (one Bernoulli field draw)."""
        return np.nonzero(rng.random(shape) < self.probability)


class DeterministicInjector(FaultInjector):
    """Flips an explicit list of cells; for reproducible unit tests.

    ``plane_names`` maps check-flip plane labels to plane ids for the
    batched path; it defaults to the diagonal pair.
    """

    def __init__(self, data_flips: Sequence[Tuple[int, int]] = (),
                 check_flips: Sequence[Tuple[str, int, int, int]] = (),
                 plane_names: Optional[Sequence[str]] = None):
        self.data_flips = list(data_flips)
        self.check_flips = list(check_flips)
        self.plane_names = tuple(plane_names) if plane_names is not None \
            else None

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None,
               rng: Optional[np.random.Generator] = None) -> InjectionResult:
        result = InjectionResult()
        for r, c in self.data_flips:
            mem.flip(r, c)
            result.data_flips.append((r, c))
        if store is not None:
            for plane, d, br, bc in self.check_flips:
                store.flip(plane, d, br, bc)
                result.check_flips.append((plane, d, br, bc))
        return result

    def _draw_batch(self, batch: int, data_shape: Tuple[int, ...],
                    plane_shapes: Optional[Tuple[Tuple[int, ...], ...]],
                    rngs: Optional[Sequence[np.random.Generator]],
                    ) -> BatchInjectionResult:
        rows = np.asarray([r for r, _ in self.data_flips], dtype=np.int64)
        cols = np.asarray([c for _, c in self.data_flips], dtype=np.int64)
        data_events = [(i, rows, cols) for i in range(batch)] \
            if rows.size else []
        check_events = []
        if plane_shapes and self.check_flips:
            names = self.plane_names if self.plane_names is not None \
                else PLANE_NAMES
            for i in range(batch):
                for plane, d, br, bc in self.check_flips:
                    check_events.append((
                        i, list(names).index(plane),
                        np.asarray([d]), np.asarray([br]), np.asarray([bc])))
        return BatchInjectionResult.from_events(batch, data_events,
                                                check_events)


class BurstInjector(FaultInjector):
    """Abrupt multi-bit upset: a cluster of flips around a strike point.

    Models the multiple-bit upsets reported for crossbar RRAM under ion
    strikes (Liu et al., TNS 2015): a strike at a random cell flips that
    cell plus each neighbour within ``radius`` (Chebyshev) with
    ``neighbor_probability``.
    """

    def __init__(self, strikes: int = 1, radius: int = 1,
                 neighbor_probability: float = 0.5, seed: SeedLike = None):
        if strikes < 0:
            raise ValueError(f"strikes must be non-negative, got {strikes}")
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.strikes = strikes
        self.radius = radius
        self.neighbor_probability = neighbor_probability
        self.rng = make_rng(seed)

    def to_config(self) -> dict:
        return {"kind": "burst",
                "params": {
                    "strikes": self.strikes, "radius": self.radius,
                    "neighbor_probability": self.neighbor_probability}}

    def _strike_cells(self, rng: np.random.Generator, rows: int,
                      cols: int) -> list[Tuple[int, int]]:
        """Cells hit by one round of strikes, in the canonical sorted order."""
        hit = set()
        for _ in range(self.strikes):
            r0 = int(rng.integers(0, rows))
            c0 = int(rng.integers(0, cols))
            hit.add((r0, c0))
            for dr in range(-self.radius, self.radius + 1):
                for dc in range(-self.radius, self.radius + 1):
                    if dr == 0 and dc == 0:
                        continue
                    r, c = r0 + dr, c0 + dc
                    if 0 <= r < rows and 0 <= c < cols and \
                            rng.random() < self.neighbor_probability:
                        hit.add((r, c))
        return sorted(hit)

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None,
               rng: Optional[np.random.Generator] = None) -> InjectionResult:
        rng = self.rng if rng is None else rng
        result = InjectionResult()
        for r, c in self._strike_cells(rng, mem.rows, mem.cols):
            mem.flip(r, c)
            result.data_flips.append((r, c))
        return result

    def _draw_batch(self, batch: int, data_shape: Tuple[int, ...],
                    plane_shapes: Optional[Tuple[Tuple[int, ...], ...]],
                    rngs: Optional[Sequence[np.random.Generator]],
                    ) -> BatchInjectionResult:
        rngs = _resolve_rngs(rngs, self.rng, batch)
        data_events = []
        for i, rng in enumerate(rngs):
            cells = self._strike_cells(rng, data_shape[0], data_shape[1])
            if cells:
                arr = np.asarray(cells, dtype=np.int64)
                data_events.append((i, arr[:, 0], arr[:, 1]))
        return BatchInjectionResult.from_events(batch, data_events, [])


class LinearBurstInjector(FaultInjector):
    """One linear burst of ``length`` adjacent flips per trial.

    The dominant crossbar MBU geometry runs along a wordline or bitline
    (Liu et al., TNS 2015): each round picks a uniform lane and start
    position and flips ``length`` adjacent cells in that lane. The burst
    survival analysis (:func:`repro.reliability.burst
    .simulate_burst_survival`) drives campaigns with this injector; the
    closed form it validates is :func:`repro.reliability.burst
    .linear_burst_survival`.

    The start position is uniform over the full lane with wrap-around
    (cell indices mod the lane length) — the geometry
    :func:`repro.reliability.burst.linear_burst_survival` states its
    closed form for; without the wrap the edge placements bias L=2
    survival from ``1/m`` down to ``(b-1)/(n-1)``.

    Draw order per trial is (lane, start) — two bounded-integer draws —
    identically in :meth:`inject` and :meth:`inject_batch`, so the
    batched engine's sequential-seeding contract holds for this injector
    like every other.
    """

    def __init__(self, length: int, orientation: str = "row",
                 seed: SeedLike = None):
        if length < 1:
            raise ValueError(f"burst length must be >= 1, got {length}")
        if orientation not in ("row", "col"):
            raise ValueError(
                f"orientation must be 'row' or 'col': {orientation}")
        self.length = length
        self.orientation = orientation
        self.rng = make_rng(seed)

    def to_config(self) -> dict:
        return {"kind": "linear_burst",
                "params": {"length": self.length,
                           "orientation": self.orientation}}

    def _burst_cells(self, rng: np.random.Generator, rows: int,
                     cols: int) -> Tuple[np.ndarray, np.ndarray]:
        """(rows, cols) of one burst; start uniform, wrap-around lane."""
        along = cols if self.orientation == "row" else rows
        across = rows if self.orientation == "row" else cols
        if self.length > along:
            raise ValueError(f"burst length {self.length} exceeds the "
                             f"{along}-cell lane")
        lane = int(rng.integers(0, across))
        start = int(rng.integers(0, along))
        span = np.arange(start, start + self.length, dtype=np.int64) % along
        lanes = np.full(self.length, lane, dtype=np.int64)
        if self.orientation == "row":
            return lanes, span
        return span, lanes

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None,
               rng: Optional[np.random.Generator] = None) -> InjectionResult:
        rng = self.rng if rng is None else rng
        result = InjectionResult()
        rows, cols = self._burst_cells(rng, mem.rows, mem.cols)
        for r, c in zip(rows.tolist(), cols.tolist()):
            mem.flip(r, c)
            result.data_flips.append((r, c))
        return result

    def _draw_batch(self, batch: int, data_shape: Tuple[int, ...],
                    plane_shapes: Optional[Tuple[Tuple[int, ...], ...]],
                    rngs: Optional[Sequence[np.random.Generator]],
                    ) -> BatchInjectionResult:
        rngs = _resolve_rngs(rngs, self.rng, batch)
        data_events = []
        for i, rng in enumerate(rngs):
            rows, cols = self._burst_cells(rng, data_shape[0], data_shape[1])
            data_events.append((i, rows, cols))
        return BatchInjectionResult.from_events(batch, data_events, [])


class CheckBitInjector(FaultInjector):
    """Uniform upsets restricted to the check memory (CMEM-only faults)."""

    def __init__(self, probability: float, seed: SeedLike = None):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0,1], got {probability}")
        self.probability = probability
        self.rng = make_rng(seed)

    def to_config(self) -> dict:
        return {"kind": "check_bit",
                "params": {"probability": self.probability}}

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None,
               rng: Optional[np.random.Generator] = None) -> InjectionResult:
        rng = self.rng if rng is None else rng
        result = InjectionResult()
        if store is None:
            return result
        for plane, arr in (("leading", store.lead), ("counter", store.ctr)):
            cmask = rng.random(arr.shape) < self.probability
            ds, brs, bcs = np.nonzero(cmask)
            for d, br, bc in zip(ds.tolist(), brs.tolist(), bcs.tolist()):
                store.flip(plane, d, br, bc)
                result.check_flips.append((plane, d, br, bc))
        return result

    def _draw_batch(self, batch: int, data_shape: Tuple[int, ...],
                    plane_shapes: Optional[Tuple[Tuple[int, ...], ...]],
                    rngs: Optional[Sequence[np.random.Generator]],
                    ) -> BatchInjectionResult:
        if not plane_shapes:
            return BatchInjectionResult.from_events(batch, [], [])
        rngs = _resolve_rngs(rngs, self.rng, batch)
        check_events = []
        for i, rng in enumerate(rngs):
            for plane_id, shape in enumerate(plane_shapes):
                cmask = rng.random(shape) < self.probability
                ds, brs, bcs = np.nonzero(cmask)
                if ds.size:
                    check_events.append((i, plane_id, ds, brs, bcs))
        return BatchInjectionResult.from_events(batch, [], check_events)
