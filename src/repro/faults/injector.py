"""Fault injectors: turn error models into bit flips on simulated arrays.

All injectors implement :meth:`FaultInjector.inject`, which flips cells of
a :class:`repro.xbar.CrossbarArray` (and optionally check-bits in a
:class:`repro.core.CheckStore`) and returns an :class:`InjectionResult`
describing exactly what was flipped — campaigns need the ground truth to
classify ECC behaviour as corrected / detected / miscorrected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checkstore import CheckStore
from repro.faults.ser import probability_from_fit
from repro.utils.rng import SeedLike, make_rng
from repro.xbar.crossbar import CrossbarArray


@dataclass
class InjectionResult:
    """Ground truth of one injection round."""

    data_flips: List[Tuple[int, int]] = field(default_factory=list)
    check_flips: List[Tuple[str, int, int, int]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Total number of injected upsets (data + check bits)."""
        return len(self.data_flips) + len(self.check_flips)

    def merge(self, other: "InjectionResult") -> "InjectionResult":
        """Union of two injection rounds."""
        return InjectionResult(self.data_flips + other.data_flips,
                               self.check_flips + other.check_flips)


class FaultInjector:
    """Base class; concrete injectors override :meth:`inject`."""

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None) -> InjectionResult:
        """Apply one round of upsets; return the ground truth."""
        raise NotImplementedError


class UniformInjector(FaultInjector):
    """Paper's model: i.i.d. upsets with per-bit probability ``p``.

    ``p`` is usually derived from an SER and an exposure window via
    :func:`repro.faults.ser.probability_from_fit`; the convenience
    constructor :meth:`from_ser` does exactly that. When a ``store`` is
    provided, check-bits are exposed at the same per-bit probability —
    check memory is built from the same memristors as data memory.
    """

    def __init__(self, probability: float, seed: SeedLike = None,
                 include_check_bits: bool = True):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0,1], got {probability}")
        self.probability = probability
        self.include_check_bits = include_check_bits
        self.rng = make_rng(seed)

    @classmethod
    def from_ser(cls, ser_fit_per_bit: float, hours: float,
                 seed: SeedLike = None,
                 include_check_bits: bool = True) -> "UniformInjector":
        """Injector with ``p = 1 - exp(-lambda T / 1e9)``."""
        return cls(probability_from_fit(ser_fit_per_bit, hours), seed,
                   include_check_bits)

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None) -> InjectionResult:
        result = InjectionResult()
        mask = self.rng.random((mem.rows, mem.cols)) < self.probability
        rows, cols = np.nonzero(mask)
        if rows.size:
            mem.flip_many(rows, cols)
            result.data_flips = list(zip(rows.tolist(), cols.tolist()))
        if store is not None and self.include_check_bits:
            for plane, arr in (("leading", store.lead), ("counter", store.ctr)):
                cmask = self.rng.random(arr.shape) < self.probability
                ds, brs, bcs = np.nonzero(cmask)
                for d, br, bc in zip(ds.tolist(), brs.tolist(), bcs.tolist()):
                    store.flip(plane, d, br, bc)
                    result.check_flips.append((plane, d, br, bc))
        return result


class DeterministicInjector(FaultInjector):
    """Flips an explicit list of cells; for reproducible unit tests."""

    def __init__(self, data_flips: Sequence[Tuple[int, int]] = (),
                 check_flips: Sequence[Tuple[str, int, int, int]] = ()):
        self.data_flips = list(data_flips)
        self.check_flips = list(check_flips)

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None) -> InjectionResult:
        result = InjectionResult()
        for r, c in self.data_flips:
            mem.flip(r, c)
            result.data_flips.append((r, c))
        if store is not None:
            for plane, d, br, bc in self.check_flips:
                store.flip(plane, d, br, bc)
                result.check_flips.append((plane, d, br, bc))
        return result


class BurstInjector(FaultInjector):
    """Abrupt multi-bit upset: a cluster of flips around a strike point.

    Models the multiple-bit upsets reported for crossbar RRAM under ion
    strikes (Liu et al., TNS 2015): a strike at a random cell flips that
    cell plus each neighbour within ``radius`` (Chebyshev) with
    ``neighbor_probability``.
    """

    def __init__(self, strikes: int = 1, radius: int = 1,
                 neighbor_probability: float = 0.5, seed: SeedLike = None):
        if strikes < 0:
            raise ValueError(f"strikes must be non-negative, got {strikes}")
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.strikes = strikes
        self.radius = radius
        self.neighbor_probability = neighbor_probability
        self.rng = make_rng(seed)

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None) -> InjectionResult:
        result = InjectionResult()
        hit = set()
        for _ in range(self.strikes):
            r0 = int(self.rng.integers(0, mem.rows))
            c0 = int(self.rng.integers(0, mem.cols))
            hit.add((r0, c0))
            for dr in range(-self.radius, self.radius + 1):
                for dc in range(-self.radius, self.radius + 1):
                    if dr == 0 and dc == 0:
                        continue
                    r, c = r0 + dr, c0 + dc
                    if 0 <= r < mem.rows and 0 <= c < mem.cols and \
                            self.rng.random() < self.neighbor_probability:
                        hit.add((r, c))
        for r, c in sorted(hit):
            mem.flip(r, c)
            result.data_flips.append((r, c))
        return result


class CheckBitInjector(FaultInjector):
    """Uniform upsets restricted to the check memory (CMEM-only faults)."""

    def __init__(self, probability: float, seed: SeedLike = None):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0,1], got {probability}")
        self.probability = probability
        self.rng = make_rng(seed)

    def inject(self, mem: CrossbarArray,
               store: Optional[CheckStore] = None) -> InjectionResult:
        result = InjectionResult()
        if store is None:
            return result
        for plane, arr in (("leading", store.lead), ("counter", store.ctr)):
            cmask = self.rng.random(arr.shape) < self.probability
            ds, brs, bcs = np.nonzero(cmask)
            for d, br, bc in zip(ds.tolist(), brs.tolist(), bcs.tolist()):
                store.flip(plane, d, br, bc)
                result.check_flips.append((plane, d, br, bc))
        return result
