"""Soft-error-rate arithmetic (FIT/bit <-> probabilities <-> MTTF).

Conventions (paper Sec. V-A and Shooman, *Reliability of Computer Systems
and Networks*):

* ``lambda`` [FIT/bit]: one FIT is one failure per ``10^9`` hours, so a
  device with SER ``lambda`` upsets as a Poisson process with rate
  ``lambda / 10^9`` per hour.
* Probability that a specific memristor suffers at least one soft error
  within a window of ``T`` hours: ``p = 1 - exp(-lambda * T / 10^9)``.
* A memory with failure rate ``R`` [FIT] has ``MTTF = 10^9 / R`` hours.
"""

from __future__ import annotations

import numpy as np

#: Hours corresponding to the FIT normalization constant (10^9).
HOURS_PER_FIT_UNIT = 1e9


def probability_from_fit(ser_fit_per_bit: float, hours: float) -> float:
    """P(at least one upset of one bit within ``hours``).

    ``1 - exp(-lambda T / 1e9)`` — the exact exponential-window form the
    paper uses, not the small-lambda linearization.
    """
    if ser_fit_per_bit < 0:
        raise ValueError(f"SER must be non-negative, got {ser_fit_per_bit}")
    if hours < 0:
        raise ValueError(f"hours must be non-negative, got {hours}")
    return float(-np.expm1(-ser_fit_per_bit * hours / HOURS_PER_FIT_UNIT))


def fit_from_probability(probability: float, hours: float) -> float:
    """Failure rate [FIT] of a unit that fails with ``probability`` per
    window of ``hours``: ``p * 1e9 / T`` (paper Sec. V-A)."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0,1], got {probability}")
    if hours <= 0:
        raise ValueError(f"hours must be positive, got {hours}")
    return probability * HOURS_PER_FIT_UNIT / hours


def mttf_hours_from_fit(fit: float) -> float:
    """Mean time to failure in hours for a failure rate in FIT."""
    if fit < 0:
        raise ValueError(f"FIT must be non-negative, got {fit}")
    if fit == 0:
        return float("inf")
    return HOURS_PER_FIT_UNIT / fit


def error_probability(ser_fit_per_bit: float, hours: float) -> float:
    """Alias of :func:`probability_from_fit` (readability in call sites)."""
    return probability_from_fit(ser_fit_per_bit, hours)


def expected_errors(ser_fit_per_bit: float, hours: float, bits: int) -> float:
    """Expected number of upsets across ``bits`` cells in ``hours``."""
    if bits < 0:
        raise ValueError(f"bits must be non-negative, got {bits}")
    return ser_fit_per_bit * hours / HOURS_PER_FIT_UNIT * bits
