"""Device-parameter presets.

The paper's reliability analysis (Sec. V-A) is parameterized by a single
figure of merit: the memristor Soft Error Rate (SER) in FIT/bit, where one
FIT is one failure per 10^9 device-hours. The reference point used in
Figure 6 is an SER of ``1e-3`` FIT/bit, "similar to Flash memory"
(Slayman, RAMS 2011). The presets below bundle that with nominal RRAM
resistance/timing values from the MAGIC literature so examples can speak in
physical units.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Flash-like soft error rate used as Figure 6's reference point [FIT/bit].
FLASH_LIKE_SER = 1e-3


@dataclass(frozen=True)
class DeviceParameters:
    """Physical parameters of a memristive device technology.

    Attributes
    ----------
    name:
        Human-readable technology label.
    r_on, r_off:
        LRS / HRS resistance in ohms.
    switching_time_ns:
        Nominal SET/RESET switching time; one MAGIC cycle is bounded below
        by this figure.
    ser_fit_per_bit:
        Soft error rate in FIT/bit used by the reliability model.
    """

    name: str
    r_on: float
    r_off: float
    switching_time_ns: float
    ser_fit_per_bit: float

    @property
    def resistance_ratio(self) -> float:
        """HRS/LRS ratio; MAGIC needs this to be large (>= ~10^2)."""
        return self.r_off / self.r_on

    def cycle_time_s(self) -> float:
        """Duration of one MAGIC clock cycle in seconds."""
        return self.switching_time_ns * 1e-9


#: Nominal HfO2-style RRAM device, the technology family the paper cites
#: for its soft-error mechanisms (Tosson et al., Chang et al.).
DEFAULT_DEVICE = DeviceParameters(
    name="hfo2-rram-nominal",
    r_on=1e3,
    r_off=1e6,
    switching_time_ns=1.3,
    ser_fit_per_bit=FLASH_LIKE_SER,
)

#: A pessimistic device with heavier drift, for sensitivity studies.
HIGH_DRIFT_DEVICE = DeviceParameters(
    name="hfo2-rram-high-drift",
    r_on=5e3,
    r_off=5e5,
    switching_time_ns=2.0,
    ser_fit_per_bit=1.0,
)

#: An optimistic device corresponding to the left edge of Figure 6's sweep.
LOW_SER_DEVICE = DeviceParameters(
    name="hfo2-rram-low-ser",
    r_on=1e3,
    r_off=1e6,
    switching_time_ns=1.1,
    ser_fit_per_bit=1e-5,
)

KNOWN_DEVICES = {
    d.name: d for d in (DEFAULT_DEVICE, HIGH_DRIFT_DEVICE, LOW_SER_DEVICE)
}
