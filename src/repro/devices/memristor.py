"""Single-memristor state model.

MAGIC (Kvatinsky et al., TCAS-II 2014) represents logic values with
resistance: Low Resistive State (LRS) encodes logical ``1`` and High
Resistive State (HRS) encodes logical ``0``. A NOR gate is performed by
initializing the output device to LRS and applying ``V0`` to the inputs
while grounding the output; if any input is in LRS, the voltage divider
drives the output device above its switching threshold and it flips to HRS.

The bulk simulator (:mod:`repro.xbar`) stores whole crossbars as numpy bool
arrays for speed; this module provides the per-device object used in
fine-grained tests and the state-encoding constants that give those arrays
their physical meaning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MemristorState(enum.IntEnum):
    """Resistive state of a memristor; integer value is the logical bit."""

    HRS = 0  # High Resistive State -> logical 0
    LRS = 1  # Low Resistive State  -> logical 1


HRS = MemristorState.HRS
LRS = MemristorState.LRS


@dataclass
class Memristor:
    """A single memristive device with resistance-coded state.

    Parameters
    ----------
    state:
        Initial :class:`MemristorState` (default HRS / logical 0).
    r_on, r_off:
        Device resistances (ohms) in LRS and HRS. Used by the analog
        divider check in :meth:`magic_nor_would_switch`.
    """

    state: MemristorState = MemristorState.HRS
    r_on: float = 1e3
    r_off: float = 1e6
    write_count: int = field(default=0, repr=False)

    @property
    def bit(self) -> int:
        """Logical value currently stored (LRS -> 1, HRS -> 0)."""
        return int(self.state)

    @property
    def resistance(self) -> float:
        """Present resistance of the device in ohms."""
        return self.r_on if self.state is MemristorState.LRS else self.r_off

    def write(self, bit: int) -> None:
        """SET (bit=1 -> LRS) or RESET (bit=0 -> HRS) the device."""
        self.state = MemristorState.LRS if bit else MemristorState.HRS
        self.write_count += 1

    def init_lrs(self) -> None:
        """Initialize to LRS, as required before acting as a MAGIC output."""
        self.write(1)

    def flip(self) -> None:
        """Soft error: invert the stored state without a controlled write."""
        self.state = MemristorState(1 - int(self.state))

    def magic_nor_would_switch(self, inputs: list["Memristor"], v0: float = 1.0,
                               v_threshold_fraction: float = 0.5) -> bool:
        """Analog sanity model of a MAGIC NOR output transition.

        Computes the voltage across this (output) device from the resistive
        divider formed with the parallel combination of the input devices
        under applied voltage ``v0``, and reports whether it exceeds the
        switching threshold (expressed as a fraction of ``v0``). Functional
        simulation does not call this; it exists so tests can confirm the
        bool-array semantics agree with the divider picture for sane device
        parameters (``r_off >> r_on``).
        """
        if not inputs:
            raise ValueError("MAGIC NOR requires at least one input device")
        conductance = sum(1.0 / d.resistance for d in inputs)
        r_inputs = 1.0 / conductance
        v_out = v0 * self.resistance / (self.resistance + r_inputs)
        return v_out > v_threshold_fraction * v0
