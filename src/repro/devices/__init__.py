"""Memristor device models.

The library operates functionally (bits are bits), but the device layer
records the physical interpretation used by the paper: logical ``1`` is the
Low Resistive State (LRS) and logical ``0`` the High Resistive State (HRS),
and soft errors are unintentional LRS<->HRS transitions caused by oxygen
vacancy drift, ion strikes, or environmental variation.
"""

from repro.devices.memristor import HRS, LRS, Memristor, MemristorState
from repro.devices.models import (
    DEFAULT_DEVICE,
    FLASH_LIKE_SER,
    DeviceParameters,
    KNOWN_DEVICES,
)

__all__ = [
    "HRS",
    "LRS",
    "Memristor",
    "MemristorState",
    "DeviceParameters",
    "DEFAULT_DEVICE",
    "FLASH_LIKE_SER",
    "KNOWN_DEVICES",
]
