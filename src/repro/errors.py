"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration problems from runtime
simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class GeometryError(ConfigurationError):
    """Crossbar/block geometry constraint violated (e.g. ``n % m != 0``)."""


class CrossbarError(ReproError):
    """Illegal access or operation on a crossbar array."""


class MagicOperationError(CrossbarError):
    """A MAGIC gate was issued with invalid operands (overlap, bad axis...)."""


class UninitializedOutputError(MagicOperationError):
    """A MAGIC gate targeted output cells that were not initialized to LRS."""


class EccError(ReproError):
    """Base class for ECC-related failures."""


class UncorrectableError(EccError):
    """A syndrome was detected that cannot be attributed to a single error."""

    def __init__(self, message: str, syndrome=None):
        super().__init__(message)
        self.syndrome = syndrome


class MiscorrectionError(EccError):
    """Used by verification harnesses when ECC silently corrupted data."""


class SynthesisError(ReproError):
    """Logic synthesis / technology mapping failed."""


class MappingError(SynthesisError):
    """SIMPLER row mapping failed (e.g. the row is too small)."""


class SchedulingError(ReproError):
    """The ECC-extended scheduler hit an impossible resource constraint."""


class NetlistError(ReproError):
    """Malformed logic network (cycles, undriven nodes, bad references)."""
