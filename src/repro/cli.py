"""Command-line interface: paper artifacts and the campaign service.

::

    python -m repro table1 [--benchmarks dec ctrl ...]
    python -m repro table2 [--n 1020 --m 15 --k 3]
    python -m repro fig6   [--ser 1e-3]
    python -m repro ablations
    python -m repro select [--n N --m M ... --ber B ... --row-fraction F ...]
                           [--trials T --seed S --codes C ... --packing P]
    python -m repro info

    python -m repro serve  [--host H --port P --store DIR --workers N]
                           [--execution local|distributed --queue NAME]
    python -m repro submit SPEC.json [--url U --wait --timeout S]
    python -m repro status JOB_ID [--url U]
    python -m repro trace  JOB_ID (--store DIR | --url U) [--json]
    python -m repro metrics [--url U --raw]
    python -m repro perf ingest  [--results DIR --ledger PATH]
    python -m repro perf report  [--ledger PATH --bench B ... --json]
    python -m repro perf compare [--against REV|baseline|FILE]
                           [--rev R --threshold F --json]
    python -m repro perf baseline [--ledger PATH --rev R --out FILE]
    python -m repro perf jobs (--store DIR | --url U) [--threshold F]
    python -m repro worker (--store DIR [--broker PATH] | --url U)
                           [--id W --lease-ttl S --max-units N]
    python -m repro store gc --store DIR [--max-age-days D]
                           [--max-bytes B --dry-run]
    python -m repro store verify --store DIR [--quarantine]

Everything prints to stdout; exit code 0 on success. ``submit`` and
``status`` print the job record as JSON (``-`` reads the spec from
stdin), so they compose with ``jq``-style pipelines; ``store gc``
prints its eviction report as JSON the same way. ``worker`` joins a
distributed service's fleet: give it the service's ``--store`` path
(same host / shared disk) or its ``--url`` (any host). ``store
verify`` digest-checks every record and exits 1 when anything is
corrupt (``--quarantine`` also moves the bad files aside), so it
slots straight into cron/CI health gates. ``trace`` reconstructs a
job's cross-process timeline from its persisted trace events (read
straight from the store directory or over the service's ``/trace/``
endpoint); ``metrics`` dumps the service's Prometheus exposition plus
an estimated p50/p95/p99 summary for every histogram (``--raw`` for
exposition only). The ``perf`` family is the longitudinal observatory
(:mod:`repro.obs.perf`): ``ingest`` backfills committed artifacts as
the seed epoch, ``report`` prints the trend table, ``compare`` is the
regression gate (exit 1 past threshold), ``baseline`` snapshots a
revision for CI, and ``jobs`` flags per-phase drift on settled service
campaigns. Every subcommand honours ``REPRO_LOG=<level>[,text|json]``
for trace-correlated structured logging on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

#: Default bind/connect address of the campaign service.
DEFAULT_SERVICE_HOST = "127.0.0.1"
DEFAULT_SERVICE_PORT = 8937
DEFAULT_SERVICE_STORE = ".repro-service"


def _default_service_url() -> str:
    return f"http://{DEFAULT_SERVICE_HOST}:{DEFAULT_SERVICE_PORT}"


def _cmd_table1(args) -> int:
    from repro.analysis.latency import run_table1
    names = args.benchmarks or None
    result = run_table1(names=names, verify=args.verify)
    print(result["rendering"])
    print(f"\nmeasured geomean overhead: "
          f"{result['geomean_overhead_pct']:.2f}% "
          f"(paper: {result['paper_geomean_overhead_pct']}%)")
    return 0


def _cmd_table2(args) -> int:
    from repro.analysis.area_report import run_table2
    from repro.arch.config import ArchConfig
    config = ArchConfig(n=args.n, m=args.m, pc_count=args.k)
    result = run_table2(config)
    print(result["rendering"])
    print(f"\nstorage overhead: {result['storage_overhead_pct']:.1f}% "
          "over the raw data array")
    return 0


def _cmd_fig6(args) -> int:
    from repro.analysis.figures import fig6_series, render_loglog
    result = fig6_series()
    print(render_loglog(result["points"]))
    print(f"\nimprovement at SER={args.ser} FIT/bit: ", end="")
    from repro.reliability.model import ReliabilityModel
    print(f"{ReliabilityModel().improvement_factor(args.ser):.4g}")
    return 0


def _cmd_ablations(args) -> int:
    from repro.analysis.ablations import (
        block_size_tradeoff,
        check_period_tradeoff,
        horizontal_parity_strawman,
    )
    from repro.analysis.report import format_table
    print("block-size trade-off (SER 1e-3 FIT/bit):")
    rows = block_size_tradeoff()
    print(format_table(
        ["m", "storage ovh %", "MTTF (h)"],
        [[r["m"], round(r["check_overhead_pct"], 2),
          f"{r['mttf_hours']:.3g}"] for r in rows]))
    print("\ncheck-period trade-off:")
    rows = check_period_tradeoff()
    print(format_table(
        ["T (h)", "MTTF (h)"],
        [[r["period_hours"], f"{r['mttf_hours']:.3g}"] for r in rows]))
    print("\nhorizontal-parity strawman (Fig. 2a):")
    result = horizontal_parity_strawman()
    print(format_table(
        ["operation", "horizontal ops", "diagonal ops"],
        [["row-parallel", result["row_parallel_op"]["horizontal_update_ops"],
          result["row_parallel_op"]["diagonal_update_ops"]],
         ["column-parallel",
          result["column_parallel_op"]["horizontal_update_ops"],
          result["column_parallel_op"]["diagonal_update_ops"]]]))
    return 0


def _cmd_select(args) -> int:
    from repro.analysis.selector import Scenario, default_scenarios, select

    if args.m or args.ber or args.row_fraction:
        ms = args.m or [3, 5]
        bers = args.ber or [1e-3, 1e-2]
        fracs = args.row_fraction or [0.9, 0.5, 0.1]
        scenarios = [Scenario(name=f"m{m}-ber{ber:g}-row{frac:g}",
                              n=args.n, m=m, ber=ber, row_fraction=frac,
                              trials=args.trials, seed=args.seed)
                     for m in ms for ber in bers for frac in fracs]
    else:
        scenarios = default_scenarios(trials=args.trials, seed=args.seed)
    report = select(scenarios, codes=args.codes or None,
                    packing=args.packing)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_info(args) -> int:
    import repro
    from repro.circuits.registry import BENCHMARKS
    from repro.service.scheduler import service_info
    info = service_info()
    print(f"repro {repro.__version__} — diagonal-parity ECC for "
          "memristive PIM (DAC 2021 reproduction)")
    print(f"benchmarks: {', '.join(sorted(BENCHMARKS))}")
    print("artifacts: table1 (latency), table2 (area), fig6 (MTTF), "
          "ablations")
    print(f"backends: {', '.join(info['backends'])}")
    print(f"packings: {', '.join(info['packings'])}")
    print(f"codes: {', '.join(info['codes'])}")
    native = "built" if info["native_kernels_available"] else "not built"
    print(f"kernel tiers: {', '.join(info['kernel_tiers'])} "
          f"(native extension: {native})")
    print(f"job kinds: {', '.join(info['job_kinds'])}")
    print(f"injector kinds: {', '.join(info['injector_kinds'])}")
    print(f"queue backends: {', '.join(info['queue_backends'])}")
    print(f"execution modes: {', '.join(info['execution_modes'])}")
    print("service: serve (start), submit (enqueue a spec), "
          "status (poll a job), worker (join a distributed fleet), "
          "store gc (evict old results)")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.scheduler import CampaignService
    from repro.service.server import ServiceServer

    async def run() -> None:
        service = CampaignService(
            args.store, workers=args.workers,
            shard_trials=args.shard_trials, queue=args.queue,
            max_concurrent_jobs=args.max_concurrent_jobs,
            execution=args.execution, broker_path=args.broker)
        server = ServiceServer(service, host=args.host, port=args.port)
        async with server:
            extra = ""
            if args.execution == "distributed":
                extra = (f", execution: distributed, "
                         f"broker: {service.broker_path}")
            print(f"campaign service listening on {server.url} "
                  f"(store: {args.store}, workers: {args.workers}, "
                  f"shard_trials: {args.shard_trials}{extra})", flush=True)
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("campaign service stopped")
    return 0


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient

    if args.spec == "-":
        text = sys.stdin.read()
    else:
        with open(args.spec) as handle:
            text = handle.read()
    client = ServiceClient(args.url)
    record = client.submit(json.loads(text))
    if args.wait:
        record = client.wait(record["id"], timeout=args.timeout)
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _cmd_status(args) -> int:
    from repro.service.client import ServiceClient

    record = ServiceClient(args.url).status(args.job_id)
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0 if record["state"] != "failed" else 1


def _cmd_trace(args) -> int:
    from repro.obs.timeline import render_timeline

    if (args.store is None) == (args.url is None):
        print("trace needs exactly one of --store (read events from "
              "the store directory) or --url (ask the service)",
              file=sys.stderr)
        return 2
    if args.store is not None:
        from repro.service.store import ResultStore
        events = ResultStore(args.store).read_events(args.job_id)
    else:
        from repro.service.client import ServiceClient
        try:
            events = ServiceClient(args.url).trace(args.job_id)
        except ValueError:
            events = []
    if not events:
        print(f"no trace recorded for {args.job_id!r}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(events, indent=2, sort_keys=True))
    else:
        print(render_timeline(events))
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs.metrics import render_histogram_summary
    from repro.service.client import ServiceClient

    text = ServiceClient(args.url).metrics_text()
    print(text, end="")
    if not args.raw:
        summary = render_histogram_summary(text)
        if summary:
            print("\n# histogram percentiles (estimated from bucket "
                  "counts)\n" + summary)
    return 0


def _ledger_records(args) -> list:
    from repro.obs import perf

    records = perf.read_ledger(args.ledger)
    if not records:
        print(f"no readable records in {args.ledger!r} — run "
              f"`repro perf ingest` or a benchmark first",
              file=sys.stderr)
    return records


def _cmd_perf_ingest(args) -> int:
    from repro.obs import perf

    report = perf.ingest_results(args.results, args.ledger)
    print(json.dumps(report, indent=2, sort_keys=True))
    if report["added"] == 0 and report["skipped"] == 0:
        print(f"no BENCH_*.json files under {args.results!r}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_perf_report(args) -> int:
    from repro.obs import perf

    records = _ledger_records(args)
    if not records:
        return 1
    report = perf.trend_report(records, benches=args.bench or None)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(perf.render_trend(report))
    return 0


def _cmd_perf_compare(args) -> int:
    import os

    from repro.obs import perf

    records = _ledger_records(args)
    if not records:
        return 2
    against = args.against
    if against == "baseline":
        against = args.baseline_file
    if os.path.isfile(against):
        try:
            baseline = perf.load_baseline(against)
        except (OSError, ValueError, KeyError) as exc:
            print(f"unreadable baseline {against!r}: {exc}",
                  file=sys.stderr)
            return 2
        base_label = against
    else:
        base_records = perf.records_for_rev(records, against)
        if not base_records:
            print(f"no ledger records for revision {against!r} and no "
                  f"such baseline file", file=sys.stderr)
            return 2
        baseline = perf.collect_series(base_records)
        base_label = f"rev {against}"
    current_rev = args.rev or perf.latest_rev(records)
    current_records = perf.records_for_rev(records, current_rev)
    if not current_records:
        print(f"no ledger records for revision {current_rev!r}",
              file=sys.stderr)
        return 2
    gate = tuple(d.strip() for d in args.gate_directions.split(",")
                 if d.strip())
    report = perf.compare(baseline, perf.collect_series(current_records),
                          threshold=args.threshold,
                          n_boot=args.bootstrap, seed=args.seed,
                          gate_directions=gate)
    report["baseline"] = base_label
    report["current"] = f"rev {current_rev}"
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"baseline: {base_label}   current: rev {current_rev}")
        print(perf.render_compare(report))
    # Exit status is the gate verdict, so CI needs no JSON parsing.
    return 0 if report["ok"] else 1


def _cmd_perf_baseline(args) -> int:
    from repro.obs import perf

    records = _ledger_records(args)
    if not records:
        return 1
    baseline = perf.baseline_from_records(records, rev=args.rev)
    perf.write_baseline(args.out, baseline)
    print(f"wrote baseline of rev {baseline['git_rev']} "
          f"({len(baseline['series'])} series) to {args.out}")
    return 0


def _cmd_perf_jobs(args) -> int:
    from repro.obs import perf

    if (args.store is None) == (args.url is None):
        print("perf jobs needs exactly one of --store (read the "
              "store's perf ledger) or --url (ask the service)",
              file=sys.stderr)
        return 2
    if args.store is not None:
        from repro.service.store import ResultStore
        report = perf.jobs_report(ResultStore(args.store).read_perf(),
                                  threshold=args.threshold)
    else:
        from repro.service.client import ServiceClient
        report = ServiceClient(args.url).perf_report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(perf.render_jobs(report))
    return 0 if report.get("ok", True) else 1


def _cmd_worker(args) -> int:
    from repro.distributed.broker import SqliteBroker
    from repro.distributed.worker import (
        BrokerWorkSource,
        HttpWorkSource,
        ShardWorker,
        default_worker_id,
    )

    if (args.store is None) == (args.url is None):
        print("worker needs exactly one of --store (shared-store "
              "topology) or --url (HTTP topology)", file=sys.stderr)
        return 2
    if args.store is not None:
        from repro.service.scheduler import BROKER_FILENAME
        from repro.service.store import ResultStore
        broker_path = args.broker or \
            f"{args.store.rstrip('/')}/{BROKER_FILENAME}"
        source = BrokerWorkSource(SqliteBroker(broker_path),
                                  ResultStore(args.store))
        where = f"broker {broker_path}"
    else:
        from repro.service.client import ServiceClient
        source = HttpWorkSource(ServiceClient(args.url))
        where = f"service {args.url}"
    worker = ShardWorker(source, worker_id=args.id or default_worker_id(),
                         lease_ttl_s=args.lease_ttl,
                         poll_interval_s=args.poll_interval)
    print(f"worker {worker.worker_id} pulling from {where} "
          f"(lease ttl {worker.lease_ttl_s:.0f}s)", flush=True)
    try:
        processed = worker.run(max_units=args.max_units,
                               idle_exit_s=args.idle_exit)
    except KeyboardInterrupt:
        processed = worker.units_done
        print(f"worker {worker.worker_id} interrupted")
    print(f"worker {worker.worker_id} exiting: {processed} unit(s) "
          f"processed, {worker.units_failed} failed", flush=True)
    return 0


def _cmd_store_gc(args) -> int:
    from repro.service.store import ResultStore

    max_age_s = None if args.max_age_days is None \
        else args.max_age_days * 86400.0
    report = ResultStore(args.store).gc(
        max_age_s=max_age_s, max_bytes=args.max_bytes,
        sweep_orphans=not args.no_orphan_sweep, dry_run=args.dry_run)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_store_verify(args) -> int:
    from repro.service.store import ResultStore

    report = ResultStore(args.store).verify(quarantine=args.quarantine)
    print(json.dumps(report, indent=2, sort_keys=True))
    # Exit status is the scriptable verdict: 1 when anything failed the
    # integrity check, so cron jobs and CI gates need no JSON parsing.
    return 1 if report["corrupt"] else 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="regenerate Table I (latency)")
    p1.add_argument("--benchmarks", nargs="*", default=None,
                    help="subset of benchmark names (default: all 11)")
    p1.add_argument("--verify", action="store_true",
                    help="re-verify each circuit against its golden model")
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="regenerate Table II (area)")
    p2.add_argument("--n", type=int, default=1020)
    p2.add_argument("--m", type=int, default=15)
    p2.add_argument("--k", type=int, default=3)
    p2.set_defaults(func=_cmd_table2)

    p3 = sub.add_parser("fig6", help="regenerate Figure 6 (MTTF)")
    p3.add_argument("--ser", type=float, default=1e-3,
                    help="SER [FIT/bit] for the headline comparison")
    p3.set_defaults(func=_cmd_fig6)

    p4 = sub.add_parser("ablations", help="run the ablation sweeps")
    p4.set_defaults(func=_cmd_ablations)

    psel = sub.add_parser(
        "select", help="sweep scenarios x codes, print the Pareto report")
    psel.add_argument("--n", type=int, default=15,
                      help="crossbar dimension for explicit sweeps")
    psel.add_argument("--m", type=int, action="append", default=None,
                      help="block size (repeatable; odd, divides n)")
    psel.add_argument("--ber", type=float, action="append", default=None,
                      help="per-bit upset probability (repeatable)")
    psel.add_argument("--row-fraction", type=float, action="append",
                      default=None,
                      help="fraction of row-parallel ops (repeatable)")
    psel.add_argument("--trials", type=int, default=512,
                      help="Monte-Carlo trials per scenario x code")
    psel.add_argument("--seed", type=int, default=0,
                      help="campaign root entropy")
    psel.add_argument("--codes", nargs="*", default=None,
                      help="subset of registered codes (default: all)")
    psel.add_argument("--packing", default="u8", choices=["u8", "u64"],
                      help="engine tensor layout for the coverage runs")
    psel.set_defaults(func=_cmd_select)

    p5 = sub.add_parser("info", help="library, benchmark, and service info")
    p5.set_defaults(func=_cmd_info)

    p6 = sub.add_parser("serve", help="run the campaign service")
    p6.add_argument("--host", default=DEFAULT_SERVICE_HOST)
    p6.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                    help="listen port (0 picks a free one)")
    p6.add_argument("--store", default=DEFAULT_SERVICE_STORE,
                    help="result-store directory (created if missing)")
    p6.add_argument("--workers", type=int, default=2,
                    help="work-unit pool size")
    p6.add_argument("--shard-trials", type=int, default=512,
                    help="max trials per checkpointable shard")
    p6.add_argument("--queue", default="memory",
                    help="registered job-queue backend (memory | sqlite)")
    p6.add_argument("--max-concurrent-jobs", type=int, default=2)
    p6.add_argument("--execution", default="local",
                    choices=["local", "distributed"],
                    help="where shard spans run: this process's pool "
                         "(local) or the repro-worker fleet (distributed)")
    p6.add_argument("--broker", default=None,
                    help="broker SQLite file for distributed execution "
                         "(default: <store>/broker.sqlite3)")
    p6.set_defaults(func=_cmd_serve)

    p7 = sub.add_parser("submit", help="submit a job spec to the service")
    p7.add_argument("spec", help="path to a JSON job spec ('-' for stdin)")
    p7.add_argument("--url", default=_default_service_url())
    p7.add_argument("--wait", action="store_true",
                    help="poll until the job settles, print final record")
    p7.add_argument("--timeout", type=float, default=300.0,
                    help="--wait deadline in seconds")
    p7.set_defaults(func=_cmd_submit)

    p8 = sub.add_parser("status", help="show one service job record")
    p8.add_argument("job_id")
    p8.add_argument("--url", default=_default_service_url())
    p8.set_defaults(func=_cmd_status)

    ptrace = sub.add_parser(
        "trace", help="reconstruct one job's cross-process timeline")
    ptrace.add_argument("job_id")
    ptrace.add_argument("--store", default=None,
                        help="service store directory (read the events "
                             "files directly)")
    ptrace.add_argument("--url", default=None,
                        help="service URL (fetch via GET /trace/<id>)")
    ptrace.add_argument("--json", action="store_true",
                        help="print raw event records instead of the "
                             "rendered timeline")
    ptrace.set_defaults(func=_cmd_trace)

    from repro.obs.perf import DEFAULT_BASELINE, DEFAULT_LEDGER

    pperf = sub.add_parser(
        "perf", help="longitudinal perf ledger: trends + regression gate")
    perf_sub = pperf.add_subparsers(dest="perf_command", required=True)

    pingest = perf_sub.add_parser(
        "ingest", help="backfill committed BENCH_*.json into the ledger")
    pingest.add_argument("--results", default="benchmarks/results",
                         help="directory holding BENCH_*.json artifacts")
    pingest.add_argument("--ledger", default=DEFAULT_LEDGER,
                         help="ledger JSONL path to append to")
    pingest.set_defaults(func=_cmd_perf_ingest)

    preport = perf_sub.add_parser(
        "report", help="trend table per bench/metric/kernel tier")
    preport.add_argument("--ledger", default=DEFAULT_LEDGER)
    preport.add_argument("--bench", action="append", default=None,
                         help="restrict to these bench names "
                              "(repeatable)")
    preport.add_argument("--json", action="store_true",
                         help="print the raw report instead of a table")
    preport.set_defaults(func=_cmd_perf_report)

    pcompare = perf_sub.add_parser(
        "compare", help="gate the newest epoch against a baseline "
                        "(exit 1 on regression)")
    pcompare.add_argument("--ledger", default=DEFAULT_LEDGER)
    pcompare.add_argument("--against", default="baseline",
                          help="'baseline' (the committed snapshot), a "
                               "baseline JSON path, or a git rev prefix "
                               "present in the ledger")
    pcompare.add_argument("--baseline-file", default=DEFAULT_BASELINE,
                          help="where 'baseline' points")
    pcompare.add_argument("--rev", default=None,
                          help="current-side revision (default: the "
                               "ledger's newest by timestamp)")
    pcompare.add_argument("--threshold", type=float, default=0.2,
                          help="fail when the good-direction ratio's "
                               "CI upper bound < 1 - threshold")
    pcompare.add_argument("--bootstrap", type=int, default=400,
                          help="bootstrap resamples for the CI")
    pcompare.add_argument("--seed", type=int, default=7,
                          help="bootstrap PRNG seed (deterministic gate)")
    pcompare.add_argument("--gate-directions", default="higher",
                          help="comma list of metric directions to "
                               "gate (higher, lower); others are "
                               "reported as info")
    pcompare.add_argument("--json", action="store_true")
    pcompare.set_defaults(func=_cmd_perf_compare)

    pbaseline = perf_sub.add_parser(
        "baseline", help="snapshot one revision's series as the "
                         "committed baseline")
    pbaseline.add_argument("--ledger", default=DEFAULT_LEDGER)
    pbaseline.add_argument("--rev", default=None,
                           help="revision to snapshot (default: newest)")
    pbaseline.add_argument("--out", default=DEFAULT_BASELINE)
    pbaseline.set_defaults(func=_cmd_perf_baseline)

    pjobs = perf_sub.add_parser(
        "jobs", help="per-phase drift on settled service campaigns")
    pjobs.add_argument("--store", default=None,
                       help="store root (reads perf/ledger.jsonl)")
    pjobs.add_argument("--url", default=None,
                       help="service URL (GET /perf; server-side "
                            "threshold)")
    pjobs.add_argument("--threshold", type=float, default=0.5,
                       help="drift threshold for --store mode")
    pjobs.add_argument("--json", action="store_true")
    pjobs.set_defaults(func=_cmd_perf_jobs)

    pmetrics = sub.add_parser(
        "metrics", help="dump the service's Prometheus metrics text")
    pmetrics.add_argument("--url", default=_default_service_url())
    pmetrics.add_argument("--raw", action="store_true",
                          help="exposition only, no histogram "
                               "percentile summary")
    pmetrics.set_defaults(func=_cmd_metrics)

    p9 = sub.add_parser(
        "worker", help="run a shard worker for a distributed service")
    p9.add_argument("--store", default=None,
                    help="service store directory (shared-store topology)")
    p9.add_argument("--broker", default=None,
                    help="broker SQLite file (default: "
                         "<store>/broker.sqlite3)")
    p9.add_argument("--url", default=None,
                    help="service URL (HTTP topology, for workers "
                         "without access to the store path)")
    p9.add_argument("--id", default=None,
                    help="worker identity (default: host-pid-random)")
    p9.add_argument("--lease-ttl", type=float, default=30.0,
                    help="seconds a claim survives without heartbeat")
    p9.add_argument("--poll-interval", type=float, default=0.2,
                    help="idle sleep between empty claims")
    p9.add_argument("--max-units", type=int, default=None,
                    help="exit after this many units (default: run "
                         "until killed)")
    p9.add_argument("--idle-exit", type=float, default=None,
                    help="exit after this many consecutive idle seconds")
    p9.set_defaults(func=_cmd_worker)

    p10 = sub.add_parser("store", help="manage a service result store")
    store_sub = p10.add_subparsers(dest="store_command", required=True)
    p10gc = store_sub.add_parser(
        "gc", help="evict old results / bound store size")
    p10gc.add_argument("--store", default=DEFAULT_SERVICE_STORE,
                       help="result-store directory")
    p10gc.add_argument("--max-age-days", type=float, default=None,
                       help="evict results older than this many days")
    p10gc.add_argument("--max-bytes", type=int, default=None,
                       help="evict oldest results until the store fits")
    p10gc.add_argument("--no-orphan-sweep", action="store_true",
                       help="skip dropping checkpoint dirs whose final "
                            "record already exists")
    p10gc.add_argument("--dry-run", action="store_true",
                       help="report what would be evicted, touch nothing")
    p10gc.set_defaults(func=_cmd_store_gc)
    p10verify = store_sub.add_parser(
        "verify", help="integrity-sweep every record (digest check)")
    p10verify.add_argument("--store", default=DEFAULT_SERVICE_STORE,
                           help="result-store directory")
    p10verify.add_argument("--quarantine", action="store_true",
                           help="move corrupt records to quarantine/ "
                                "instead of just reporting them")
    p10verify.set_defaults(func=_cmd_store_verify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    # Honour REPRO_LOG=<level>[,text|json] for every subcommand (a
    # no-op when the variable is unset).
    from repro.obs.logs import configure as configure_logging
    configure_logging()
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
