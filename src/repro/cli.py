"""Command-line interface: regenerate any paper artifact from the shell.

::

    python -m repro table1 [--benchmarks dec ctrl ...]
    python -m repro table2 [--n 1020 --m 15 --k 3]
    python -m repro fig6   [--ser 1e-3]
    python -m repro ablations
    python -m repro info

Everything prints to stdout; exit code 0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args) -> int:
    from repro.analysis.latency import run_table1
    names = args.benchmarks or None
    result = run_table1(names=names, verify=args.verify)
    print(result["rendering"])
    print(f"\nmeasured geomean overhead: "
          f"{result['geomean_overhead_pct']:.2f}% "
          f"(paper: {result['paper_geomean_overhead_pct']}%)")
    return 0


def _cmd_table2(args) -> int:
    from repro.analysis.area_report import run_table2
    from repro.arch.config import ArchConfig
    config = ArchConfig(n=args.n, m=args.m, pc_count=args.k)
    result = run_table2(config)
    print(result["rendering"])
    print(f"\nstorage overhead: {result['storage_overhead_pct']:.1f}% "
          "over the raw data array")
    return 0


def _cmd_fig6(args) -> int:
    from repro.analysis.figures import fig6_series, render_loglog
    result = fig6_series()
    print(render_loglog(result["points"]))
    print(f"\nimprovement at SER={args.ser} FIT/bit: ", end="")
    from repro.reliability.model import ReliabilityModel
    print(f"{ReliabilityModel().improvement_factor(args.ser):.4g}")
    return 0


def _cmd_ablations(args) -> int:
    from repro.analysis.ablations import (
        block_size_tradeoff,
        check_period_tradeoff,
        horizontal_parity_strawman,
    )
    from repro.analysis.report import format_table
    print("block-size trade-off (SER 1e-3 FIT/bit):")
    rows = block_size_tradeoff()
    print(format_table(
        ["m", "storage ovh %", "MTTF (h)"],
        [[r["m"], round(r["check_overhead_pct"], 2),
          f"{r['mttf_hours']:.3g}"] for r in rows]))
    print("\ncheck-period trade-off:")
    rows = check_period_tradeoff()
    print(format_table(
        ["T (h)", "MTTF (h)"],
        [[r["period_hours"], f"{r['mttf_hours']:.3g}"] for r in rows]))
    print("\nhorizontal-parity strawman (Fig. 2a):")
    result = horizontal_parity_strawman()
    print(format_table(
        ["operation", "horizontal ops", "diagonal ops"],
        [["row-parallel", result["row_parallel_op"]["horizontal_update_ops"],
          result["row_parallel_op"]["diagonal_update_ops"]],
         ["column-parallel",
          result["column_parallel_op"]["horizontal_update_ops"],
          result["column_parallel_op"]["diagonal_update_ops"]]]))
    return 0


def _cmd_info(args) -> int:
    import repro
    from repro.circuits.registry import BENCHMARKS
    print(f"repro {repro.__version__} — diagonal-parity ECC for "
          "memristive PIM (DAC 2021 reproduction)")
    print(f"benchmarks: {', '.join(sorted(BENCHMARKS))}")
    print("artifacts: table1 (latency), table2 (area), fig6 (MTTF), "
          "ablations")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="regenerate Table I (latency)")
    p1.add_argument("--benchmarks", nargs="*", default=None,
                    help="subset of benchmark names (default: all 11)")
    p1.add_argument("--verify", action="store_true",
                    help="re-verify each circuit against its golden model")
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="regenerate Table II (area)")
    p2.add_argument("--n", type=int, default=1020)
    p2.add_argument("--m", type=int, default=15)
    p2.add_argument("--k", type=int, default=3)
    p2.set_defaults(func=_cmd_table2)

    p3 = sub.add_parser("fig6", help="regenerate Figure 6 (MTTF)")
    p3.add_argument("--ser", type=float, default=1e-3,
                    help="SER [FIT/bit] for the headline comparison")
    p3.set_defaults(func=_cmd_fig6)

    p4 = sub.add_parser("ablations", help="run the ablation sweeps")
    p4.set_defaults(func=_cmd_ablations)

    p5 = sub.add_parser("info", help="library and benchmark info")
    p5.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
