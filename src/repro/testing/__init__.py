"""Test-support harnesses shipped with the package (not test code).

:mod:`repro.testing.chaos` is the deterministic fault-injection
harness: seeded :class:`~repro.testing.chaos.ChaosPlan` schedules plus
proxy wrappers for the store, queue, client, and worker transport.
Shipped under ``src/`` rather than ``tests/`` because operators can
point it at a staging deployment, not just at the unit suites.
"""

from repro.testing.chaos import (
    CHAOS_SCENARIOS,
    ChaosClient,
    ChaosError,
    ChaosPlan,
    ChaosQueue,
    ChaosStore,
    ChaosWorkSource,
    FaultRule,
    TornWriteError,
    corrupt_file,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosClient",
    "ChaosError",
    "ChaosPlan",
    "ChaosQueue",
    "ChaosStore",
    "ChaosWorkSource",
    "FaultRule",
    "TornWriteError",
    "corrupt_file",
]
