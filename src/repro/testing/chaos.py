"""Deterministic fault-injection harness for the campaign fleet.

The repo's resilience claims — checkpoint-resume bit-identity, lease
expiry re-enqueue, ack-loss idempotency, corrupt-record quarantine —
are only claims until something actually injects the faults. This
module is that something, built around one rule: **every fault is a
pure function of a seed**, so a failing chaos run replays exactly and
a fixed-seed run in CI is a regression test, not a dice roll.

:class:`ChaosPlan` holds the seed and a map of *site* names to
:class:`FaultRule` triggers. A site is one injection point — e.g.
``"source.claim"`` (worker claim RPC), ``"store.put_shard.torn"``
(checkpoint write tears mid-stream) — and each site draws from its own
:class:`random.Random` stream seeded by ``SHA-256(seed, site)``.
Because each call at a site consumes exactly one draw *from that
site's own stream*, whether the k-th call at a site fires is
independent of how worker threads interleave across sites: chaos
decisions replay exactly even in a multi-threaded fleet.

The injection points are thin proxies over the real components —
subclasses where the host code type-checks
(:class:`ChaosStore`/:class:`ChaosClient`/:class:`ChaosQueue`),
a wrapper where it duck-types (:class:`ChaosWorkSource` over any
:class:`~repro.distributed.worker.WorkSource`, which is how broker
transport faults reach both the shared-store and HTTP topologies)::

    plan = ChaosPlan(seed=7, rules={
        "source.claim": FaultRule(probability=0.3),
        "store.put_shard.torn": FaultRule(at_calls=(2,)),
    })
    store = ChaosStore(tmp_path, plan)
    source = ChaosWorkSource(BrokerWorkSource(broker, store), plan)

The invariant the chaos matrix pins (``tests/testing/``): under any
plan, a campaign either completes **bit-identical** to
:meth:`CampaignRunner.run_reference` or settles terminally ``failed``
with a structured reason — never a hang, never silent corruption.

Sites the built-in proxies expose
---------------------------------

=================================  ====================================
``client.request.drop``            request never reaches the service
``client.request.delay``           request delayed ~20 ms, then sent
``client.response.drop``           request *took effect*, reply lost
``queue.put`` / ``queue.get``      transient queue backend error
``queue.put.duplicate``            job id enqueued twice
``source.claim``                   claim RPC raises
``source.claim.drop``              unit claimed, response lost (the
                                   lease-expiry race: nobody works the
                                   unit until its TTL lapses)
``source.heartbeat``               heartbeat RPC raises (beat missed)
``source.heartbeat.lost``          heartbeat answers ``False`` (lease
                                   revoked under a live worker)
``source.complete.before``         complete RPC lost before any effect
``source.complete.after``          checkpoint + ack durable, reply lost
``source.ack``                     bare ack RPC raises
``source.fail``                    failure report lost
``store.put.before/.after``        final-record write crashes around
                                   the atomic replace
``store.put_shard.before``         crash before the checkpoint write
``store.put_shard.torn``           checkpoint file torn mid-write
                                   (truncated bytes at the final path)
``store.put_shard.after``          checkpoint durable, crash before ack
``store.put_job.before/.after``    job-record persistence crashes
=================================  ====================================
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.distributed.worker import WorkSource
from repro.service.client import ServiceClient, ServiceUnavailableError
from repro.service.queue import JobQueue
from repro.service.store import ResultStore
from repro.service.spec import result_to_dict

#: Injected delay for ``*.delay`` sites — long enough to reorder async
#: races, short enough to keep chaos suites fast.
DELAY_S = 0.02


class ChaosError(ConnectionError):
    """An injected transport/backend fault (always transient in kind:
    the real operation would have succeeded)."""


class TornWriteError(OSError):
    """An injected crash in the middle of a store write — the caller
    dies exactly as a ``kill -9`` at that boundary would."""


@dataclass(frozen=True)
class FaultRule:
    """When a site fires.

    ``probability`` fires stochastically (from the site's seeded
    stream); ``at_calls`` fires deterministically at those 1-based call
    indices (the crash-consistency suite's "kill at exactly the k-th
    write" knob); ``max_fires`` caps total fires so a fault storm
    eventually clears and the run can converge.
    """

    probability: float = 0.0
    at_calls: Tuple[int, ...] = ()
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], "
                             f"got {self.probability}")
        if any(c < 1 for c in self.at_calls):
            raise ValueError(f"at_calls indices are 1-based, "
                             f"got {self.at_calls}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be non-negative, "
                             f"got {self.max_fires}")


class ChaosPlan:
    """Seeded fault schedule shared by every proxy in one run.

    Thread-safe: the worker fleet calls in from daemon threads while
    the scheduler calls in from the event loop. Determinism contract:
    for a fixed ``(seed, rules)``, whether the k-th call at a site
    fires is a pure function of ``(site, k)`` — interleaving across
    sites cannot change it (per-site streams, one draw per call).
    """

    def __init__(self, seed: int = 0,
                 rules: Optional[Dict[str, FaultRule]] = None,
                 sink: Optional[Callable[[dict], None]] = None) -> None:
        self.seed = int(seed)
        self.rules = dict(rules or {})
        #: Optional observer called with ``{"site", "call"}`` on every
        #: fire (after the decision, outside the lock). The obs layer
        #: adapts this into ``chaos.fire`` trace events
        #: (:func:`repro.obs.trace.chaos_sink`) so the matrix can
        #: assert scheduled faults against observed ones.
        self.sink = sink
        self._lock = threading.Lock()
        self._streams: Dict[str, random.Random] = {}
        self._calls: Dict[str, int] = {}
        self._fired_at: Dict[str, List[int]] = {}

    @classmethod
    def from_scenario(cls, name: str, seed: int = 0) -> "ChaosPlan":
        """A plan from the :data:`CHAOS_SCENARIOS` preset ``name``."""
        try:
            rules = CHAOS_SCENARIOS[name]
        except KeyError:
            raise ValueError(
                f"unknown chaos scenario {name!r}; known: "
                f"{sorted(CHAOS_SCENARIOS)}") from None
        return cls(seed=seed, rules=rules)

    def _stream(self, site: str) -> random.Random:
        stream = self._streams.get(site)
        if stream is None:
            # SHA-256, not hash(): per-process hash randomization must
            # never leak into the fault schedule.
            digest = hashlib.sha256(
                f"{self.seed}:{site}".encode("utf-8")).digest()
            stream = random.Random(int.from_bytes(digest[:16], "big"))
            self._streams[site] = stream
        return stream

    def should_fire(self, site: str) -> bool:
        """Record one call at ``site``; True when its rule fires.

        Sites without a rule still count calls (the trace shows what a
        scenario *could* have touched) but never fire and never draw.
        """
        with self._lock:
            self._calls[site] = call = self._calls.get(site, 0) + 1
            rule = self.rules.get(site)
            if rule is None:
                return False
            fired = False
            if rule.probability > 0.0:
                # One draw per call, unconditionally, so the stream
                # position always equals the call count — replay holds
                # even when at_calls/max_fires short-circuit the
                # decision.
                fired = self._stream(site).random() < rule.probability
            if call in rule.at_calls:
                fired = True
            fires = self._fired_at.setdefault(site, [])
            if rule.max_fires is not None and len(fires) >= rule.max_fires:
                fired = False
            if fired:
                fires.append(call)
        if fired and self.sink is not None:
            # Outside the lock (the sink may do I/O) and after the
            # decision is recorded: observation must never perturb the
            # schedule, and a broken sink must never block a fault.
            try:
                self.sink({"site": site, "call": call})
            except Exception:  # noqa: BLE001 - telemetry boundary
                pass
        return fired

    def snapshot(self) -> Dict[str, dict]:
        """Per-site ``{"calls": n, "fired_at": [k, ...]}`` trace.

        ``fired_at`` (which call indices fired, per site) is the
        replay-comparable core: it is interleaving-independent, so two
        runs of the same seeded scenario must produce identical values
        — the CI chaos lane's determinism assertion. ``calls`` totals
        are reported for context but may differ across runs whose
        thread timing diverges.
        """
        with self._lock:
            return {site: {"calls": self._calls[site],
                           "fired_at": list(self._fired_at.get(site, []))}
                    for site in sorted(self._calls)}

    def fired(self) -> Dict[str, List[int]]:
        """Just the interleaving-independent half of :meth:`snapshot`:
        per-site fired call indices, sites that never fired omitted."""
        with self._lock:
            return {site: list(fires)
                    for site, fires in sorted(self._fired_at.items())
                    if fires}


# ---------------------------------------------------------------------- #
# Proxies
# ---------------------------------------------------------------------- #


class ChaosStore(ResultStore):
    """A :class:`ResultStore` whose writes can crash at every boundary.

    ``*.before`` faults die with nothing durable; ``*.after`` faults
    die *after* the atomic replace (the checkpoint exists, the caller
    never learns); ``put_shard.torn`` leaves truncated bytes at the
    final path — the state a non-atomic writer would leave, which the
    integrity layer must quarantine on read. Reads are untouched: the
    store's own checked-read path is the subject under test.
    """

    def __init__(self, root, plan: ChaosPlan) -> None:
        super().__init__(root)
        self.plan = plan

    def put(self, key: str, record: dict) -> None:
        if self.plan.should_fire("store.put.before"):
            raise TornWriteError(
                f"chaos: crashed before writing result {key}")
        super().put(key, record)
        if self.plan.should_fire("store.put.after"):
            raise TornWriteError(
                f"chaos: crashed after writing result {key}")

    def put_shard(self, key, lo, hi, result, phases=None) -> None:
        if self.plan.should_fire("store.put_shard.before"):
            raise TornWriteError(
                f"chaos: crashed before checkpoint {key}:{lo}-{hi}")
        if self.plan.should_fire("store.put_shard.torn"):
            path = self._shard_path(key, lo, hi)
            path.parent.mkdir(parents=True, exist_ok=True)
            body = json.dumps({"lo": lo, "hi": hi,
                               "result": result_to_dict(result)})
            path.write_text(body[:max(1, len(body) // 2)])
            raise TornWriteError(
                f"chaos: checkpoint {key}:{lo}-{hi} torn mid-write")
        super().put_shard(key, lo, hi, result, phases=phases)
        if self.plan.should_fire("store.put_shard.after"):
            raise TornWriteError(
                f"chaos: crashed after checkpoint {key}:{lo}-{hi}, "
                f"before ack")

    def put_job(self, job_id: str, record: dict) -> None:
        if self.plan.should_fire("store.put_job.before"):
            raise TornWriteError(
                f"chaos: crashed before persisting job {job_id}")
        super().put_job(job_id, record)
        if self.plan.should_fire("store.put_job.after"):
            raise TornWriteError(
                f"chaos: crashed after persisting job {job_id}")


class ChaosWorkSource(WorkSource):
    """Fault-wrapped :class:`WorkSource` (claim/heartbeat/ack/complete
    transport) — works over either topology's real source."""

    def __init__(self, inner: WorkSource, plan: ChaosPlan) -> None:
        self.inner = inner
        self.plan = plan

    def claim(self, owner, ttl_s):
        if self.plan.should_fire("source.claim"):
            raise ChaosError("chaos: claim request lost")
        claimed = self.inner.claim(owner, ttl_s)
        if claimed is not None and \
                self.plan.should_fire("source.claim.drop"):
            # The broker leased the unit but the worker never heard:
            # the unit is orphaned until its lease TTL expires and the
            # fleet reclaims it — the lease-expiry race, on demand.
            return None
        return claimed

    def heartbeat(self, unit_id, owner, ttl_s):
        if self.plan.should_fire("source.heartbeat"):
            raise ChaosError("chaos: heartbeat lost")
        if self.plan.should_fire("source.heartbeat.lost"):
            return False
        return self.inner.heartbeat(unit_id, owner, ttl_s)

    def complete(self, unit_id, owner, job_key, lo, hi, tallies,
                 phases=None):
        if self.plan.should_fire("source.complete.before"):
            raise ChaosError("chaos: complete request lost")
        self.inner.complete(unit_id, owner, job_key, lo, hi, tallies,
                            phases=phases)
        if self.plan.should_fire("source.complete.after"):
            # Checkpoint and ack are durable; only the reply vanished.
            # The worker will report a failure for work that succeeded
            # — the dedupe/idempotency machinery must shrug it off.
            raise ChaosError("chaos: complete reply lost")

    def ack(self, unit_id, owner):
        if self.plan.should_fire("source.ack"):
            raise ChaosError("chaos: ack request lost")
        return self.inner.ack(unit_id, owner)

    def fail(self, unit_id, owner, error, requeue):
        if self.plan.should_fire("source.fail"):
            raise ChaosError("chaos: failure report lost")
        self.inner.fail(unit_id, owner, error, requeue)

    def shard_done(self, job_key, lo, hi):
        return self.inner.shard_done(job_key, lo, hi)

    def record_events(self, trace_id, events):
        # Telemetry passes through unfaulted: trace evidence is how
        # the matrix audits the chaos run, so chaos never eats it.
        self.inner.record_events(trace_id, events)


class ChaosClient(ServiceClient):
    """A :class:`ServiceClient` whose transport drops, delays, or
    loses replies (``client.request.drop`` / ``client.request.delay``
    / ``client.response.drop``). Dropped requests surface as
    :class:`ServiceUnavailableError` — exactly what a dead socket
    raises — so the client's own retry path is what gets exercised.
    """

    def __init__(self, url: str = "http://127.0.0.1:8937",
                 timeout: float = 30.0,
                 plan: Optional[ChaosPlan] = None) -> None:
        super().__init__(url, timeout)
        self.plan = plan if plan is not None else ChaosPlan()

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        if self.plan.should_fire("client.request.drop"):
            raise ServiceUnavailableError(
                f"chaos: dropped {method} {path}")
        if self.plan.should_fire("client.request.delay"):
            time.sleep(DELAY_S)
        response = super()._request(method, path, payload)
        if self.plan.should_fire("client.response.drop"):
            # The server processed the request; only the reply died.
            raise ServiceUnavailableError(
                f"chaos: reply lost for {method} {path}")
        return response


class ChaosQueue(JobQueue):
    """Fault-wrapped :class:`JobQueue` (``queue.put`` / ``queue.get``
    transient errors, ``queue.put.duplicate`` double delivery).
    Handed to :class:`CampaignService` via its queue-instance
    injection point."""

    def __init__(self, inner: JobQueue, plan: ChaosPlan) -> None:
        self.inner = inner
        self.plan = plan

    @property
    def closed(self) -> bool:
        return self.inner.closed

    async def put(self, job_id: str) -> None:
        if self.plan.should_fire("queue.put"):
            raise ChaosError("chaos: queue put lost")
        await self.inner.put(job_id)
        if self.plan.should_fire("queue.put.duplicate"):
            await self.inner.put(job_id)

    async def get(self) -> str:
        if self.plan.should_fire("queue.get"):
            raise ChaosError("chaos: queue get failed")
        return await self.inner.get()

    async def close(self) -> None:
        await self.inner.close()


# ---------------------------------------------------------------------- #
# Helpers + preset scenarios
# ---------------------------------------------------------------------- #


def corrupt_file(path, seed: int = 0) -> None:
    """Deterministically flip bytes in ``path`` in place (bit-rot /
    bad-sector simulation for integrity tests). The content stays the
    same length and usually stays parseable JSON-wise broken — both
    corruption flavours the checked read must catch."""
    data = bytearray(path.read_bytes() if hasattr(path, "read_bytes")
                     else open(path, "rb").read())
    if not data:
        return
    rng = random.Random(seed)
    for _ in range(max(1, len(data) // 64)):
        data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
    with open(path, "wb") as handle:
        handle.write(bytes(data))


#: Preset rule maps for the CI chaos lane (``ChaosPlan.from_scenario``).
#: Every stochastic rule carries ``max_fires`` so a campaign always has
#: fault-free headroom to converge — the matrix asserts *terminal*
#: outcomes, so scenarios must not be able to fault forever.
CHAOS_SCENARIOS: Dict[str, Dict[str, FaultRule]] = {
    # Worker claim transport flaps; the daemon's backoff must ride it.
    "flaky_claims": {
        "source.claim": FaultRule(probability=0.4, max_fires=8),
    },
    # Acks/completions vanish after taking effect: duplicate delivery
    # via lease expiry; idempotent checkpoints must absorb it.
    "lost_acks": {
        "source.complete.after": FaultRule(probability=0.4, max_fires=4),
        "source.ack": FaultRule(probability=0.3, max_fires=4),
    },
    # Claims succeed broker-side but the worker never hears.
    "lease_races": {
        "source.claim.drop": FaultRule(probability=0.3, max_fires=3),
        "source.heartbeat.lost": FaultRule(probability=0.2, max_fires=2),
    },
    # Checkpoint writes crash at every boundary, including torn bytes
    # the integrity layer must quarantine.
    "torn_checkpoints": {
        "store.put_shard.before": FaultRule(probability=0.2, max_fires=3),
        "store.put_shard.torn": FaultRule(probability=0.2, max_fires=3),
        "store.put_shard.after": FaultRule(probability=0.2, max_fires=3),
    },
    # HTTP client transport drops and delays (wait() retry path).
    "flaky_transport": {
        "client.request.drop": FaultRule(probability=0.25, max_fires=6),
        "client.request.delay": FaultRule(probability=0.25, max_fires=6),
    },
    # Queue backend flaps + duplicate job delivery (scheduler loop
    # resilience and the queued-state dedupe guard).
    "flaky_queue": {
        "queue.get": FaultRule(probability=0.3, max_fires=5),
        "queue.put.duplicate": FaultRule(probability=0.5, max_fires=3),
    },
    # Everything at once, capped low enough to converge.
    "mayhem": {
        "source.claim": FaultRule(probability=0.2, max_fires=4),
        "source.complete.after": FaultRule(probability=0.2, max_fires=2),
        "source.heartbeat": FaultRule(probability=0.2, max_fires=2),
        "store.put_shard.torn": FaultRule(probability=0.15, max_fires=2),
        "store.put_shard.after": FaultRule(probability=0.15, max_fires=2),
        "queue.put.duplicate": FaultRule(probability=0.3, max_fires=2),
    },
}
