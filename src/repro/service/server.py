"""Minimal stdlib HTTP front-end for the campaign service.

A deliberately small JSON-over-HTTP surface (no third-party web stack;
the container bakes in numpy + pytest and nothing else) that exposes a
:class:`repro.service.scheduler.CampaignService` on localhost:

==========================  ============================================
``GET  /healthz``           liveness probe -> ``{"ok": true}``
``GET  /health``            operational report
                            (:meth:`CampaignService.health`): job
                            counts, broker depth/leases, circuit
                            breakers, store quarantine
``GET  /info``              :meth:`CampaignService.info`
``POST /jobs``              submit a :class:`JobSpec` (the JSON body is
                            the spec's ``to_dict`` form) -> job record
``GET  /jobs``              every job record this instance accepted
``GET  /jobs/<id>``         one job record (404 when unknown)
``POST /units/claim``       claim one work unit under a TTL lease
``POST /units/heartbeat``   extend a worker's lease
``POST /units/ack``         ack a unit whose checkpoint already exists
``POST /units/complete``    upload span tallies + ack (the server
                            writes the shard checkpoint)
``POST /units/fail``        report a unit failure (requeue | terminal)
``POST /units/shard_done``  does the span's checkpoint already exist?
``POST /units/events``      append worker trace events (telemetry)
``GET  /metrics``           Prometheus text exposition (version 0.0.4)
                            of the service process's metrics registry
                            plus point-in-time gauges
``GET  /trace/<job-id>``    the job's raw trace events (404 when the
                            trace is unknown)
``GET  /perf``              per-phase drift report over the store's
                            perf ledger (:meth:`CampaignService.
                            perf_report`)
==========================  ============================================

The ``/units/*`` family is the multi-host worker transport
(:class:`repro.distributed.worker.HttpWorkSource`): workers that
cannot reach the service's store path speak these endpoints instead,
and the *server* performs the store writes — so the atomic-checkpoint
and bit-identity guarantees are the server's regardless of where
workers run. They answer 409 unless the service runs
``execution="distributed"``.

The server speaks just enough HTTP/1.1 for ``urllib`` and ``curl``
(request line + headers + ``Content-Length`` body, one request per
connection); it is an operator surface for submit-and-poll clients, not
a general web server. Responses are JSON — except ``/metrics``, which
serves the Prometheus text format — and errors use ``{"error": ...}``
with the matching status code.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.service.scheduler import CampaignService

#: Request bodies larger than this are rejected (a job spec is tiny).
MAX_BODY_BYTES = 1 << 20

#: Seconds a client gets to deliver its whole request; a stalled or
#: half-open connection must not pin a handler coroutine forever.
READ_TIMEOUT_S = 30.0

#: Header lines accepted before the request is rejected as malformed.
MAX_HEADER_LINES = 100

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 500: "Internal Server Error"}

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class PlainText:
    """Marker return value for non-JSON responses (``/metrics``)."""

    def __init__(self, text: str,
                 content_type: str = "text/plain; charset=utf-8") -> None:
        self.text = text
        self.content_type = content_type


class ServiceServer:
    """Asyncio HTTP wrapper around one :class:`CampaignService`."""

    def __init__(self, service: CampaignService, host: str = "127.0.0.1",
                 port: int = 8937) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def url(self) -> str:
        """Base URL of the running server (resolves ``port=0``)."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> "ServiceServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        # port=0 asks the OS for a free port; reflect the real one.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "ServiceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await asyncio.wait_for(
                self._respond(reader), timeout=READ_TIMEOUT_S)
        except asyncio.TimeoutError:
            status, payload = 400, {"error": "request read timed out"}
        except Exception as exc:  # noqa: BLE001 - connection boundary
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if isinstance(payload, PlainText):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, dict]:
        request = await reader.readline()
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        length = 0
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        else:
            return 400, {"error": f"more than {MAX_HEADER_LINES} "
                                  f"header lines"}
        if length < 0:
            return 400, {"error": "negative Content-Length"}
        if length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(length) if length else b""
        return await self._route(method, path, body)

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, dict]:
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True}
        if path == "/health" and method == "GET":
            # The operational report (job counts, broker depth and
            # leases, breakers, quarantine) — store/broker I/O, so off
            # the event loop like /info.
            return 200, await asyncio.to_thread(self.service.health)
        if path == "/info" and method == "GET":
            # info() walks store directories and queries the broker —
            # disk work that must not stall the event loop (and the
            # worker heartbeat endpoints riding on it).
            return 200, await asyncio.to_thread(self.service.info)
        if path == "/metrics" and method == "GET":
            # metrics_text() refreshes point-in-time gauges from the
            # broker file and store directories — disk I/O, so off the
            # event loop like /health.
            text = await asyncio.to_thread(self.service.metrics_text)
            return 200, PlainText(text, PROMETHEUS_CONTENT_TYPE)
        if path == "/perf" and method == "GET":
            # perf_report() reads the store's perf ledger — disk I/O,
            # off the event loop like /health.
            return 200, await asyncio.to_thread(self.service.perf_report)
        if path.startswith("/trace/") and method == "GET":
            trace_id = path[len("/trace/"):]
            events = await asyncio.to_thread(
                self.service.store.read_events, trace_id)
            if not events:
                return 404, {"error": f"no trace recorded for "
                                      f"{trace_id!r}"}
            return 200, {"trace": trace_id, "events": events}
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": [j.to_dict() for j in self.service.jobs()]}
        if path == "/jobs" and method == "POST":
            try:
                spec = json.loads(body.decode("utf-8")) if body else None
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
            if not isinstance(spec, dict):
                return 400, {"error": "body must be a JSON job spec object"}
            try:
                job = await self.service.submit(spec)
            except (TypeError, ValueError) as exc:
                return 400, {"error": str(exc)}
            return 200, job.to_dict()
        if path.startswith("/jobs/") and method == "GET":
            job_id = path[len("/jobs/"):]
            try:
                return 200, self.service.status(job_id).to_dict()
            except KeyError:
                return 404, {"error": f"unknown job {job_id!r}"}
        if path.startswith("/units/") and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
            if not isinstance(payload, dict):
                return 400, {"error": "body must be a JSON object"}
            return await self._route_units(path, payload)
        if path in ("/healthz", "/health", "/info", "/jobs",
                    "/metrics", "/perf") or \
                path.startswith(("/jobs/", "/units/", "/trace/")):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no route for {path}"}

    async def _route_units(self, path: str,
                           payload: dict) -> Tuple[int, dict]:
        """The worker transport (see the module docstring)."""
        broker = self.service.broker
        if self.service.execution != "distributed" or broker is None:
            return 409, {"error": "service is not running in distributed "
                                  "execution mode; /units/* endpoints "
                                  "are unavailable"}
        try:
            if path == "/units/claim":
                worker = str(payload["worker"])
                ttl_s = float(payload.get("ttl_s", 30.0))
                unit = await asyncio.to_thread(broker.claim, worker, ttl_s)
                if unit is None:
                    return 200, {"unit": None}
                return 200, {"unit": {"unit_id": unit.unit_id,
                                      "payload": unit.payload,
                                      "attempts": unit.attempts}}
            if path == "/units/heartbeat":
                ok = await asyncio.to_thread(
                    broker.heartbeat, str(payload["unit_id"]),
                    str(payload["worker"]),
                    float(payload.get("ttl_s", 30.0)))
                return 200, {"ok": ok}
            if path == "/units/ack":
                ok = await asyncio.to_thread(
                    broker.ack, str(payload["unit_id"]),
                    str(payload["worker"]))
                return 200, {"ok": ok}
            if path == "/units/complete":
                from repro.service.spec import result_from_dict
                tallies = result_from_dict(dict(payload["result"]))
                lo, hi = int(payload["lo"]), int(payload["hi"])
                phases = payload.get("phases")
                phases = dict(phases) if isinstance(phases, dict) \
                    else None
                # Checkpoint first, ack second — the same ordering the
                # shared-store worker uses, for the same resume reason.
                await asyncio.to_thread(
                    self.service.store.put_shard,
                    str(payload["job_key"]), lo, hi, tallies,
                    phases=phases)
                ok = await asyncio.to_thread(
                    broker.ack, str(payload["unit_id"]),
                    str(payload["worker"]))
                return 200, {"ok": ok}
            if path == "/units/fail":
                ok = await asyncio.to_thread(
                    broker.fail, str(payload["unit_id"]),
                    str(payload["worker"]),
                    str(payload.get("error", "worker failure")),
                    bool(payload.get("requeue", True)))
                return 200, {"ok": ok}
            if path == "/units/shard_done":
                tallies = await asyncio.to_thread(
                    self.service.store.get_shard,
                    str(payload["job_key"]), int(payload["lo"]),
                    int(payload["hi"]))
                return 200, {"done": tallies is not None}
            if path == "/units/events":
                events = payload.get("events")
                if not isinstance(events, list):
                    return 400, {"error": "events must be a list"}
                # Telemetry, not state: bad event dicts are dropped by
                # the JSONL codec on read, so appending is best-effort
                # by design — but the trace id is still validated (it
                # becomes a filename).
                await asyncio.to_thread(
                    self.service.store.append_events,
                    str(payload["trace"]),
                    [e for e in events if isinstance(e, dict)])
                return 200, {"ok": True}
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"malformed unit request: "
                                  f"{type(exc).__name__}: {exc}"}
        return 404, {"error": f"no route for {path}"}
