"""Minimal stdlib HTTP front-end for the campaign service.

A deliberately small JSON-over-HTTP surface (no third-party web stack;
the container bakes in numpy + pytest and nothing else) that exposes a
:class:`repro.service.scheduler.CampaignService` on localhost:

==========================  ============================================
``GET  /healthz``           liveness probe -> ``{"ok": true}``
``GET  /info``              :meth:`CampaignService.info`
``POST /jobs``              submit a :class:`JobSpec` (the JSON body is
                            the spec's ``to_dict`` form) -> job record
``GET  /jobs``              every job record this instance accepted
``GET  /jobs/<id>``         one job record (404 when unknown)
==========================  ============================================

The server speaks just enough HTTP/1.1 for ``urllib`` and ``curl``
(request line + headers + ``Content-Length`` body, one request per
connection); it is an operator surface for submit-and-poll clients, not
a general web server. Responses are always JSON; errors use
``{"error": ...}`` with the matching status code.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.service.scheduler import CampaignService

#: Request bodies larger than this are rejected (a job spec is tiny).
MAX_BODY_BYTES = 1 << 20

#: Seconds a client gets to deliver its whole request; a stalled or
#: half-open connection must not pin a handler coroutine forever.
READ_TIMEOUT_S = 30.0

#: Header lines accepted before the request is rejected as malformed.
MAX_HEADER_LINES = 100

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class ServiceServer:
    """Asyncio HTTP wrapper around one :class:`CampaignService`."""

    def __init__(self, service: CampaignService, host: str = "127.0.0.1",
                 port: int = 8937) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def url(self) -> str:
        """Base URL of the running server (resolves ``port=0``)."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> "ServiceServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        # port=0 asks the OS for a free port; reflect the real one.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "ServiceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await asyncio.wait_for(
                self._respond(reader), timeout=READ_TIMEOUT_S)
        except asyncio.TimeoutError:
            status, payload = 400, {"error": "request read timed out"}
        except Exception as exc:  # noqa: BLE001 - connection boundary
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, dict]:
        request = await reader.readline()
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        length = 0
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        else:
            return 400, {"error": f"more than {MAX_HEADER_LINES} "
                                  f"header lines"}
        if length < 0:
            return 400, {"error": "negative Content-Length"}
        if length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(length) if length else b""
        return await self._route(method, path, body)

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, dict]:
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True}
        if path == "/info" and method == "GET":
            return 200, self.service.info()
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": [j.to_dict() for j in self.service.jobs()]}
        if path == "/jobs" and method == "POST":
            try:
                spec = json.loads(body.decode("utf-8")) if body else None
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
            if not isinstance(spec, dict):
                return 400, {"error": "body must be a JSON job spec object"}
            try:
                job = await self.service.submit(spec)
            except (TypeError, ValueError) as exc:
                return 400, {"error": str(exc)}
            return 200, job.to_dict()
        if path.startswith("/jobs/") and method == "GET":
            job_id = path[len("/jobs/"):]
            try:
                return 200, self.service.status(job_id).to_dict()
            except KeyError:
                return 404, {"error": f"unknown job {job_id!r}"}
        if path in ("/healthz", "/info", "/jobs") or \
                path.startswith("/jobs/"):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no route for {path}"}
