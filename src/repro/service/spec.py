"""Declarative, JSON-serializable campaign job specifications.

A :class:`JobSpec` is the unit of submission to the campaign service:
a plain-data description of one workload that (a) round-trips through
JSON losslessly, (b) validates eagerly (before queueing), and (c) has a
canonical content hash (:meth:`JobSpec.cache_key`) used as the
content-addressed store key — identical ``(spec, entropy)`` submissions
resolve to the same key and therefore dedupe to the same cached result.

Five kinds cover the library's campaign workload families:

=====================  ==================================================
``campaign``           Fault campaign: any :class:`InjectorSpec` through
                       :class:`repro.faults.batch.CampaignRunner`.
``drift_survival``     Drift + abrupt window survival
                       (:func:`repro.reliability.drift_analysis
                       .simulate_drift_survival`).
``burst_survival``     Linear-burst survival
                       (:func:`repro.reliability.burst
                       .simulate_burst_survival`).
``adaptive_campaign``  Wilson-CI early-stopped campaign
                       (:meth:`CampaignRunner.run_adaptive`).
``logic_equivalence``  Benchmark-circuit equivalence check
                       (:mod:`repro.logic.verify`).
=====================  ==================================================

Every campaign-family spec carries the full engine configuration —
``packing`` (``"u8"``/``"u64"``), ``backend`` (registered array-backend
name), ``batch_size``, ``include_check_bits``, ``code`` (registered
block-code name, :mod:`repro.core.registry`) — with exactly the
semantics of the in-process :class:`CampaignRunner` knobs; service
execution always uses the **per-trial** seeding contract (the only
relocatable one), so the spec's ``seed`` is the campaign root entropy.
``seed=None`` draws fresh OS entropy once at submission
(:meth:`JobSpec.normalized`); the normalized spec is what gets hashed,
executed, and recorded, making every run reproducible from its record.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Type

from repro.core.blocks import BlockGrid
from repro.core.registry import code_names
from repro.faults.batch import (
    DEFAULT_BATCH_SIZE,
    PACKINGS,
    AdaptiveRunResult,
    CampaignRunner,
)
from repro.faults.campaign import CampaignResult
from repro.faults.drift import DriftInjector, DriftModel
from repro.faults.injector import FaultInjector, LinearBurstInjector
from repro.faults.serialize import (
    build_injector,
    injector_kinds,
    validate_config,
)
from repro.utils.backend import available_backends
from repro.utils.canonical import content_hash
from repro.utils.rng import resolve_entropy

# ---------------------------------------------------------------------- #
# Injector specifications
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class InjectorSpec:
    """Declarative injector description: a kind plus its parameters.

    A thin frozen-dataclass wrapper over the shared injector-config
    registry (:mod:`repro.faults.serialize` — the same kinds the
    distributed wire format speaks). ``params`` holds only JSON
    scalars; unknown kinds and unknown parameter names fail eagerly in
    :meth:`validate`, value errors surface from the injector
    constructors in :meth:`build`.
    """

    kind: str
    params: dict

    def to_config(self) -> dict:
        """The registry-form config ``{"kind", "params"}``."""
        return {"kind": self.kind, "params": dict(self.params)}

    def validate(self) -> None:
        validate_config(self.to_config())
        self.build()

    def build(self) -> FaultInjector:
        """Instantiate the injector (constructor validation applies)."""
        return build_injector(self.to_config())


# ---------------------------------------------------------------------- #
# Job specifications
# ---------------------------------------------------------------------- #

#: kind -> JobSpec subclass, populated by ``_register``.
JOB_KINDS: Dict[str, Type["JobSpec"]] = {}


def _register(cls):
    JOB_KINDS[cls.kind] = cls
    return cls


class JobSpec:
    """Base of the declarative job families (see the module docstring).

    Subclasses are frozen dataclasses whose fields are all JSON scalars
    (plus the nested :class:`InjectorSpec`); ``kind`` is a class-level
    discriminator, serialized alongside the fields.
    """

    kind: ClassVar[str]

    # -- serialization ------------------------------------------------- #

    def to_dict(self) -> dict:
        """Plain-data form, including every field at its current value."""
        out = {"kind": self.kind}
        out.update(dataclasses.asdict(self))
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @staticmethod
    def from_dict(data: dict) -> "JobSpec":
        """Rebuild any registered spec kind from its plain-data form."""
        data = dict(data)
        kind = data.pop("kind", None)
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}; "
                             f"known: {', '.join(sorted(JOB_KINDS))}")
        cls = JOB_KINDS[kind]
        injector = data.get("injector")
        if injector is not None and not isinstance(injector, InjectorSpec):
            if not isinstance(injector, dict) or \
                    not {"kind", "params"} <= set(injector):
                raise ValueError(
                    "injector must be an object with 'kind' and 'params' "
                    "fields, e.g. {\"kind\": \"uniform\", \"params\": "
                    "{\"probability\": 1e-3}}")
            data["injector"] = InjectorSpec(
                kind=injector["kind"], params=dict(injector["params"]))
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"job kind {kind!r} does not accept fields "
                             f"{unknown}")
        return cls(**data)

    @staticmethod
    def from_json(text: str) -> "JobSpec":
        return JobSpec.from_dict(json.loads(text))

    # -- normalization + content addressing ---------------------------- #

    def normalized(self) -> "JobSpec":
        """This spec with ``seed`` resolved to concrete root entropy.

        ``seed=None`` draws fresh OS entropy (once — the returned spec
        is fully reproducible); integer seeds pass through unchanged.
        """
        return dataclasses.replace(self, seed=resolve_entropy(self.seed))

    @property
    def entropy(self) -> int:
        """Root entropy of a normalized spec."""
        if self.seed is None:
            raise ValueError("spec has no entropy yet; call normalized() "
                             "to resolve seed=None into fresh entropy")
        return int(self.seed)

    def cache_key(self) -> str:
        """Content-addressed store key of this (spec, entropy) pair.

        Defined only for normalized specs: without concrete entropy two
        submissions are *not* the same work, so there is nothing to
        dedupe against.
        """
        if self.seed is None:
            raise ValueError("cache_key requires a normalized spec "
                             "(seed resolved to concrete entropy)")
        return content_hash(self.to_dict())

    # -- validation ----------------------------------------------------- #

    def validate(self) -> None:
        """Raise on any invalid field combination (eager, pre-queue)."""
        raise NotImplementedError


class _CampaignFamilySpec(JobSpec):
    """Shared surface of the sharded campaign-family kinds.

    Each subclass describes a grid geometry, an injector, and the
    engine configuration; :meth:`build_runner` materializes the
    per-trial-seeded :class:`CampaignRunner` whose results define what
    the service must reproduce bit-for-bit.
    """

    def build_injector(self) -> FaultInjector:
        raise NotImplementedError

    def build_grid(self) -> BlockGrid:
        return BlockGrid(self.n, self.m)

    def build_runner(self, workers: int = 1) -> CampaignRunner:
        """The in-process runner this spec's service execution mirrors."""
        return CampaignRunner(
            self.build_grid(), self.build_injector(), seed=self.entropy,
            include_check_bits=self.include_check_bits,
            batch_size=self.batch_size, workers=workers,
            seeding="per-trial", backend=self.backend,
            packing=self.packing, code=self.code)

    def _validate_engine_fields(self) -> None:
        self.build_grid()
        self.build_injector()
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer or None, "
                             f"got {self.seed!r}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, "
                             f"got {self.batch_size}")
        if self.packing not in PACKINGS:
            raise ValueError(f"packing must be one of {PACKINGS}, "
                             f"got {self.packing!r}")
        if self.backend not in available_backends():
            raise ValueError(
                f"backend {self.backend!r} is not registered; "
                f"registered: {', '.join(available_backends())}")
        if self.code not in code_names():
            raise ValueError(
                f"code {self.code!r} is not registered; "
                f"registered: {', '.join(code_names())}")

    def validate(self) -> None:
        self._validate_engine_fields()
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")


@_register
@dataclass(frozen=True)
class CampaignJobSpec(_CampaignFamilySpec):
    """Fixed-size fault campaign: ``trials`` trials of one injector."""

    kind: ClassVar[str] = "campaign"

    n: int
    m: int
    injector: InjectorSpec
    trials: int
    seed: Optional[int] = None
    include_check_bits: bool = True
    batch_size: int = DEFAULT_BATCH_SIZE
    packing: str = "u8"
    backend: str = "numpy"
    code: str = "diagonal"

    def validate(self) -> None:
        self.injector.validate()
        super().validate()

    def build_injector(self) -> FaultInjector:
        return self.injector.build()


@_register
@dataclass(frozen=True)
class DriftSurvivalJobSpec(_CampaignFamilySpec):
    """Drift + abrupt exposure-window survival campaign."""

    kind: ClassVar[str] = "drift_survival"

    n: int
    m: int
    trials: int
    tau_hours: float = 5e4
    beta: float = 2.0
    abrupt_fit_per_bit: float = 1e-4
    window_hours: float = 24.0
    refresh_period_hours: Optional[float] = None
    seed: Optional[int] = None
    include_check_bits: bool = True
    batch_size: int = DEFAULT_BATCH_SIZE
    packing: str = "u8"
    backend: str = "numpy"
    code: str = "diagonal"

    def build_injector(self) -> FaultInjector:
        return DriftInjector(
            DriftModel(tau_hours=self.tau_hours, beta=self.beta,
                       abrupt_fit_per_bit=self.abrupt_fit_per_bit),
            self.window_hours,
            refresh_period_hours=self.refresh_period_hours,
            include_check_bits=self.include_check_bits)


@_register
@dataclass(frozen=True)
class BurstSurvivalJobSpec(_CampaignFamilySpec):
    """Linear-burst survival campaign (check bits always exposed)."""

    kind: ClassVar[str] = "burst_survival"

    n: int
    m: int
    length: int
    trials: int
    orientation: str = "row"
    seed: Optional[int] = None
    batch_size: int = DEFAULT_BATCH_SIZE
    packing: str = "u8"
    backend: str = "numpy"
    code: str = "diagonal"

    #: Burst survival always protects check memory, like
    #: :func:`repro.reliability.burst.simulate_burst_survival`.
    @property
    def include_check_bits(self) -> bool:
        return True

    def validate(self) -> None:
        super().validate()
        if self.length > self.n:
            raise ValueError(f"burst length {self.length} exceeds the "
                             f"{self.n}-cell crossbar lane")

    def build_injector(self) -> FaultInjector:
        return LinearBurstInjector(self.length, orientation=self.orientation)


@_register
@dataclass(frozen=True)
class AdaptiveCampaignJobSpec(_CampaignFamilySpec):
    """Wilson-CI early-stopped campaign (deterministic round schedule).

    Executes as a single work unit (the adaptive loop's stopping point
    depends on every previous round, so spans are not relocatable);
    results remain reproducible and content-addressable because the
    schedule is a pure function of the spec.
    """

    kind: ClassVar[str] = "adaptive_campaign"

    n: int
    m: int
    injector: InjectorSpec
    tolerance: float
    confidence: float = 0.95
    max_trials: int = 1_000_000
    initial_trials: int = 256
    growth: float = 2.0
    seed: Optional[int] = None
    include_check_bits: bool = True
    batch_size: int = DEFAULT_BATCH_SIZE
    packing: str = "u8"
    backend: str = "numpy"
    code: str = "diagonal"

    def validate(self) -> None:
        self.injector.validate()
        self._validate_engine_fields()
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be positive, "
                             f"got {self.tolerance}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), "
                             f"got {self.confidence}")
        if self.max_trials <= 0 or self.initial_trials <= 0:
            raise ValueError("max_trials and initial_trials must be "
                             "positive")
        if self.growth < 1.0:
            raise ValueError(f"growth must be >= 1, got {self.growth}")

    def build_injector(self) -> FaultInjector:
        return self.injector.build()


@_register
@dataclass(frozen=True)
class LogicEquivalenceJobSpec(JobSpec):
    """Equivalence check of one benchmark circuit vs its golden model."""

    kind: ClassVar[str] = "logic_equivalence"

    circuit: str
    trials: int = 64
    seed: Optional[int] = None
    packing: str = "u64"
    exhaustive_threshold: int = 10

    def validate(self) -> None:
        from repro.circuits.registry import BENCHMARKS
        if self.circuit not in BENCHMARKS:
            raise ValueError(f"unknown circuit {self.circuit!r}; "
                             f"known: {', '.join(sorted(BENCHMARKS))}")
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer or None, "
                             f"got {self.seed!r}")
        if self.packing not in PACKINGS:
            raise ValueError(f"packing must be one of {PACKINGS}, "
                             f"got {self.packing!r}")
        if self.exhaustive_threshold < 0:
            raise ValueError("exhaustive_threshold must be non-negative")


# ---------------------------------------------------------------------- #
# Result serialization
# ---------------------------------------------------------------------- #

_CAMPAIGN_FIELDS = ("trials", "clean", "corrected", "detected", "silent",
                    "injected_faults", "blocks_with_multi_faults")


def result_to_dict(result) -> dict:
    """Tagged plain-data form of any service job result."""
    if isinstance(result, CampaignResult):
        out = {"type": "campaign_result"}
        out.update({f: getattr(result, f) for f in _CAMPAIGN_FIELDS})
        return out
    if isinstance(result, AdaptiveRunResult):
        return {
            "type": "adaptive_run_result",
            "result": result_to_dict(result.result),
            "tolerance": result.tolerance,
            "confidence": result.confidence,
            "halfwidth": result.halfwidth,
            "ci_low": result.ci_low,
            "ci_high": result.ci_high,
            "rounds": result.rounds,
            "converged": result.converged,
        }
    if isinstance(result, dict) and result.get("type"):
        return dict(result)
    raise TypeError(f"unserializable job result: {type(result).__name__}")


def result_from_dict(data: dict):
    """Inverse of :func:`result_to_dict`."""
    kind = data.get("type")
    if kind == "campaign_result":
        return CampaignResult(**{f: data[f] for f in _CAMPAIGN_FIELDS})
    if kind == "adaptive_run_result":
        return AdaptiveRunResult(
            result=result_from_dict(data["result"]),
            tolerance=data["tolerance"], confidence=data["confidence"],
            halfwidth=data["halfwidth"], ci_low=data["ci_low"],
            ci_high=data["ci_high"], rounds=data["rounds"],
            converged=data["converged"])
    if kind == "logic_equivalence_result":
        return dict(data)
    raise ValueError(f"unknown result type {kind!r}")
