"""Content-addressed persistent result store with shard checkpoints.

Layout under the store root (all files are JSON, written atomically via
a temp file + ``os.replace`` so a killed service never leaves a torn
record)::

    results/<key>.json            completed job record
    shards/<key>/<lo>-<hi>.json   checkpointed span of a running job
    jobs/<job_id>.json            persisted scheduler JobRecord

``<key>`` is :meth:`repro.service.spec.JobSpec.cache_key` — the SHA-256
of the normalized spec's canonical JSON — so the store *is* the dedupe
index: a resubmitted identical ``(spec, entropy)`` hits ``results/``
and is served without re-execution, and a restarted service finds the
completed spans of an interrupted campaign under ``shards/`` and only
executes the gaps. Both are sound because the per-trial seeding
contract makes every span's tallies a pure function of the key and the
span bounds (see the service-sharded execution contract in
:mod:`repro.faults.batch`).

``jobs/`` holds the scheduler's live job records so job *ids* — not
just results — survive a service restart: a restarted
:class:`repro.service.scheduler.CampaignService` reloads them, answers
``status`` queries for pre-restart ids, and re-enqueues the ones that
never reached a terminal state.

The store grows without bound by default (content-addressed records
are never invalidated); long-lived deployments run :meth:`gc` — the
``repro store gc`` subcommand — with a max-age and/or max-bytes policy
plus an orphan-shard sweep for checkpoint directories a crash left
behind after their final record was already written.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.faults.campaign import CampaignResult
from repro.service.spec import result_from_dict, result_to_dict

_SHARD_FILE = re.compile(r"^(\d+)-(\d+)\.json$")

#: Path components the store will embed in filenames. Keys are SHA-256
#: hex in practice, but the HTTP worker surface forwards caller-supplied
#: strings here, so anything that could traverse (separators, leading
#: dots, empty) is rejected at the boundary.
_SAFE_COMPONENT = re.compile(r"^[A-Za-z0-9_-][A-Za-z0-9._-]*$")


def _checked_component(value: str, what: str) -> str:
    """``value`` if it is a safe single path component, else ValueError."""
    if not isinstance(value, str) or not _SAFE_COMPONENT.match(value):
        raise ValueError(f"invalid {what} {value!r}: must be a single "
                         f"path component (letters, digits, '._-', no "
                         f"leading dot)")
    return value


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON so readers see either the old file or the new one."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """Filesystem-backed content-addressed store (see module docstring).

    The store is safe to share between a service and ad-hoc readers:
    records are immutable once written (same key -> same content by
    construction, so an overwrite race is harmless).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.shards_dir = self.root / "shards"
        self.jobs_dir = self.root / "jobs"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Final results
    # ------------------------------------------------------------------ #

    def _result_path(self, key: str) -> Path:
        return self.results_dir / f"{_checked_component(key, 'key')}.json"

    def has(self, key: str) -> bool:
        return self._result_path(key).exists()

    def get(self, key: str) -> Optional[dict]:
        """The completed job record under ``key``, or ``None``."""
        path = self._result_path(key)
        if not path.exists():
            return None
        with open(path) as handle:
            return json.load(handle)

    def put(self, key: str, record: dict) -> None:
        """Persist a completed job record (atomic)."""
        _atomic_write_json(self._result_path(key), record)

    def keys(self) -> List[str]:
        """Keys of every completed record in the store."""
        return sorted(p.stem for p in self.results_dir.glob("*.json"))

    # ------------------------------------------------------------------ #
    # Shard checkpoints
    # ------------------------------------------------------------------ #

    def _shard_path(self, key: str, lo: int, hi: int) -> Path:
        return self.shards_dir / _checked_component(key, "key") / \
            f"{int(lo)}-{int(hi)}.json"

    def put_shard(self, key: str, lo: int, hi: int,
                  result: CampaignResult) -> None:
        """Checkpoint one completed span of the job under ``key``."""
        _atomic_write_json(self._shard_path(key, lo, hi), {
            "lo": lo, "hi": hi, "result": result_to_dict(result)})

    def get_shard(self, key: str, lo: int,
                  hi: int) -> Optional[CampaignResult]:
        """The checkpointed tallies of span ``[lo, hi)``, or ``None``."""
        path = self._shard_path(key, lo, hi)
        if not path.exists():
            return None
        with open(path) as handle:
            return result_from_dict(json.load(handle)["result"])

    def shard_spans(self, key: str) -> Dict[Tuple[int, int], CampaignResult]:
        """Every checkpointed span of ``key`` (for resume planning)."""
        out: Dict[Tuple[int, int], CampaignResult] = {}
        directory = self.shards_dir / _checked_component(key, "key")
        if not directory.is_dir():
            return out
        for path in directory.iterdir():
            match = _SHARD_FILE.match(path.name)
            if not match:
                continue
            with open(path) as handle:
                record = json.load(handle)
            out[(int(match.group(1)), int(match.group(2)))] = \
                result_from_dict(record["result"])
        return out

    def clear_shards(self, key: str) -> None:
        """Drop the checkpoints of ``key`` (after its final record)."""
        directory = self.shards_dir / _checked_component(key, "key")
        if not directory.is_dir():
            return
        for path in directory.iterdir():
            try:
                path.unlink()
            except OSError:
                pass
        try:
            directory.rmdir()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Persisted job records (stable ids across service restarts)
    # ------------------------------------------------------------------ #

    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / \
            f"{_checked_component(job_id, 'job id')}.json"

    def put_job(self, job_id: str, record: dict) -> None:
        """Persist one scheduler job record (atomic overwrite)."""
        _atomic_write_json(self._job_path(job_id), record)

    def get_job(self, job_id: str) -> Optional[dict]:
        """The persisted record of ``job_id``, or ``None``."""
        path = self._job_path(job_id)
        if not path.exists():
            return None
        with open(path) as handle:
            return json.load(handle)

    def job_ids(self) -> List[str]:
        """Every persisted job id, sorted (= submission order: ids
        embed a monotonic sequence number)."""
        return sorted(p.stem for p in self.jobs_dir.glob("*.json"))

    def iter_jobs(self) -> Iterator[dict]:
        """Persisted job records in id order (skips torn/alien files)."""
        for job_id in self.job_ids():
            try:
                record = self.get_job(job_id)
            except (json.JSONDecodeError, OSError):
                continue  # a torn file must never block recovery
            if record is not None:
                yield record

    def delete_job(self, job_id: str) -> None:
        """Forget one persisted job record (id eviction)."""
        try:
            self._job_path(job_id).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Eviction / garbage collection
    # ------------------------------------------------------------------ #

    def size_bytes(self) -> int:
        """Total bytes under the store root (results, shards, jobs)."""
        total = 0
        for directory, _dirs, files in os.walk(self.root):
            for name in files:
                try:
                    total += os.path.getsize(os.path.join(directory, name))
                except OSError:
                    pass
        return total

    def gc(self, max_age_s: Optional[float] = None,
           max_bytes: Optional[int] = None, sweep_orphans: bool = True,
           dry_run: bool = False, now: Optional[float] = None) -> dict:
        """Bounded-growth policy for long-lived deployments.

        Three independent sweeps, in order:

        1. **Orphan shards** (``sweep_orphans``): checkpoint
           directories whose final record already exists — a crash
           between ``put`` and ``clear_shards`` leaves them — are
           dropped; they can never be read again.
        2. **Max age** (``max_age_s``): result records older than the
           horizon are evicted, along with the persisted *terminal* job
           records pointing at them and any equally old in-flight shard
           directories/job records (abandoned work).
        3. **Max bytes** (``max_bytes``): while the store exceeds the
           budget, the oldest result records are evicted (with their
           dependent job records), oldest first.

        Eviction is safe, never destructive of meaning: a record is a
        pure function of its spec, so an evicted key simply re-executes
        on next submission instead of hitting cache. ``dry_run=True``
        reports what would go without touching the filesystem. Returns
        a report dict (counts, evicted keys, bytes before/after).
        """
        if max_age_s is not None and max_age_s < 0:
            raise ValueError(f"max_age_s must be non-negative, "
                             f"got {max_age_s}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, "
                             f"got {max_bytes}")
        now = time.time() if now is None else now
        report = {
            "dry_run": dry_run,
            "bytes_before": self.size_bytes(),
            "evicted_results": [],
            "evicted_jobs": [],
            "orphan_shard_keys": [],
            "stale_shard_keys": [],
        }
        # `freed` tracks bytes the sweeps have reclaimed (or, on a dry
        # run, *would* reclaim) so the byte-budget step below starts
        # from the post-sweep size either way — a dry run must predict
        # the real run, not overstate it.
        freed = 0
        jobs_by_key: Dict[str, List[str]] = {}
        for record in self.iter_jobs():
            job_id = record.get("id")
            if isinstance(job_id, str):  # schema-alien files: not ours
                jobs_by_key.setdefault(record.get("key", ""), []).append(
                    job_id)

        def evict_key(key: str) -> None:
            nonlocal freed
            freed += self._key_bytes(key)
            report["evicted_results"].append(key)
            if not dry_run:
                try:
                    self._result_path(key).unlink()
                except OSError:
                    pass
                self.clear_shards(key)
            for job_id in jobs_by_key.pop(key, []):
                report["evicted_jobs"].append(job_id)
                freed += self._file_bytes(self._job_path(job_id))
                if not dry_run:
                    self.delete_job(job_id)

        # 1. orphan shard directories (final record already written)
        if sweep_orphans:
            for directory in sorted(self.shards_dir.iterdir()):
                if directory.is_dir() and self.has(directory.name):
                    report["orphan_shard_keys"].append(directory.name)
                    freed += self._dir_bytes(directory)
                    if not dry_run:
                        shutil.rmtree(directory, ignore_errors=True)

        # 2. age horizon
        if max_age_s is not None:
            horizon = now - max_age_s
            for key in self.keys():
                if self._mtime(self._result_path(key)) < horizon:
                    evict_key(key)
            for directory in sorted(self.shards_dir.iterdir()):
                if directory.is_dir() and \
                        self._dir_mtime(directory) < horizon:
                    report["stale_shard_keys"].append(directory.name)
                    freed += self._dir_bytes(directory)
                    if not dry_run:
                        shutil.rmtree(directory, ignore_errors=True)
            for record in list(self.iter_jobs()):
                if not isinstance(record.get("id"), str):
                    continue  # schema-alien JSON: never ours to delete
                if record["id"] in report["evicted_jobs"]:
                    continue
                if record.get("state") in ("done", "failed"):
                    # terminal: age from completion time
                    stamp = record.get("finished_at") or 0.0
                else:
                    # abandoned in-flight work (a deployment that died
                    # long ago): age from submission, so a record this
                    # old can never be genuinely live — left alone it
                    # would re-enqueue and re-execute on every restart
                    stamp = record.get("submitted_at") or 0.0
                if stamp < horizon:
                    report["evicted_jobs"].append(record["id"])
                    freed += self._file_bytes(
                        self._job_path(record["id"]))
                    peers = jobs_by_key.get(record.get("key", ""), [])
                    if record["id"] in peers:
                        peers.remove(record["id"])
                    if not dry_run:
                        self.delete_job(record["id"])

        # 3. byte budget (oldest results first)
        if max_bytes is not None:
            remaining = [k for k in self.keys()
                         if k not in report["evicted_results"]]
            remaining.sort(key=lambda k: self._mtime(self._result_path(k)))
            size = self.size_bytes() if not dry_run else \
                report["bytes_before"] - freed
            for key in remaining:
                if size <= max_bytes:
                    break
                size -= self._key_bytes(key)
                evict_key(key)

        report["bytes_after"] = report["bytes_before"] if dry_run \
            else self.size_bytes()
        return report

    def _key_bytes(self, key: str) -> int:
        """Bytes attributable to ``key`` (record + checkpoints)."""
        total = 0
        try:
            total += self._result_path(key).stat().st_size
        except OSError:
            pass
        directory = self.shards_dir / key
        if directory.is_dir():
            for path in directory.iterdir():
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    @staticmethod
    def _mtime(path: Path) -> float:
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    @staticmethod
    def _file_bytes(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def _dir_bytes(self, directory: Path) -> int:
        """Total file bytes directly inside ``directory``."""
        return sum(self._file_bytes(p) for p in directory.iterdir())

    def _dir_mtime(self, directory: Path) -> float:
        """Newest mtime inside ``directory`` (activity timestamp)."""
        newest = self._mtime(directory)
        for path in directory.iterdir():
            newest = max(newest, self._mtime(path))
        return newest
