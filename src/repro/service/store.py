"""Content-addressed persistent result store with shard checkpoints.

Layout under the store root (all files are JSON, written atomically via
a temp file + ``os.replace`` so a killed service never leaves a torn
record)::

    results/<key>.json            completed job record
    shards/<key>/<lo>-<hi>.json   checkpointed span of a running job

``<key>`` is :meth:`repro.service.spec.JobSpec.cache_key` — the SHA-256
of the normalized spec's canonical JSON — so the store *is* the dedupe
index: a resubmitted identical ``(spec, entropy)`` hits ``results/``
and is served without re-execution, and a restarted service finds the
completed spans of an interrupted campaign under ``shards/`` and only
executes the gaps. Both are sound because the per-trial seeding
contract makes every span's tallies a pure function of the key and the
span bounds (see the service-sharded execution contract in
:mod:`repro.faults.batch`).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.faults.campaign import CampaignResult
from repro.service.spec import result_from_dict, result_to_dict

_SHARD_FILE = re.compile(r"^(\d+)-(\d+)\.json$")


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON so readers see either the old file or the new one."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """Filesystem-backed content-addressed store (see module docstring).

    The store is safe to share between a service and ad-hoc readers:
    records are immutable once written (same key -> same content by
    construction, so an overwrite race is harmless).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.shards_dir = self.root / "shards"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Final results
    # ------------------------------------------------------------------ #

    def _result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def has(self, key: str) -> bool:
        return self._result_path(key).exists()

    def get(self, key: str) -> Optional[dict]:
        """The completed job record under ``key``, or ``None``."""
        path = self._result_path(key)
        if not path.exists():
            return None
        with open(path) as handle:
            return json.load(handle)

    def put(self, key: str, record: dict) -> None:
        """Persist a completed job record (atomic)."""
        _atomic_write_json(self._result_path(key), record)

    def keys(self) -> List[str]:
        """Keys of every completed record in the store."""
        return sorted(p.stem for p in self.results_dir.glob("*.json"))

    # ------------------------------------------------------------------ #
    # Shard checkpoints
    # ------------------------------------------------------------------ #

    def _shard_path(self, key: str, lo: int, hi: int) -> Path:
        return self.shards_dir / key / f"{lo}-{hi}.json"

    def put_shard(self, key: str, lo: int, hi: int,
                  result: CampaignResult) -> None:
        """Checkpoint one completed span of the job under ``key``."""
        _atomic_write_json(self._shard_path(key, lo, hi), {
            "lo": lo, "hi": hi, "result": result_to_dict(result)})

    def get_shard(self, key: str, lo: int,
                  hi: int) -> Optional[CampaignResult]:
        """The checkpointed tallies of span ``[lo, hi)``, or ``None``."""
        path = self._shard_path(key, lo, hi)
        if not path.exists():
            return None
        with open(path) as handle:
            return result_from_dict(json.load(handle)["result"])

    def shard_spans(self, key: str) -> Dict[Tuple[int, int], CampaignResult]:
        """Every checkpointed span of ``key`` (for resume planning)."""
        out: Dict[Tuple[int, int], CampaignResult] = {}
        directory = self.shards_dir / key
        if not directory.is_dir():
            return out
        for path in directory.iterdir():
            match = _SHARD_FILE.match(path.name)
            if not match:
                continue
            with open(path) as handle:
                record = json.load(handle)
            out[(int(match.group(1)), int(match.group(2)))] = \
                result_from_dict(record["result"])
        return out

    def clear_shards(self, key: str) -> None:
        """Drop the checkpoints of ``key`` (after its final record)."""
        directory = self.shards_dir / key
        if not directory.is_dir():
            return
        for path in directory.iterdir():
            try:
                path.unlink()
            except OSError:
                pass
        try:
            directory.rmdir()
        except OSError:
            pass
