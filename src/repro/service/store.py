"""Content-addressed persistent result store with shard checkpoints.

Layout under the store root (all files are JSON, written atomically via
a temp file + ``os.replace`` so a killed service never leaves a torn
record)::

    results/<key>.json            completed job record
    shards/<key>/<lo>-<hi>.json   checkpointed span of a running job
    jobs/<job_id>.json            persisted scheduler JobRecord
    events/<job_id>.jsonl         append-only trace events (telemetry)
    perf/ledger.jsonl             append-only perf ledger (telemetry)
    quarantine/<namespace>/...    corrupt records pulled out of the way

Every record carries a content digest (the ``integrity`` field: the
SHA-256 of its canonical JSON), stamped on write and verified on read.
A record that fails the check — bit-rot, a torn write that somehow
produced parseable-but-wrong bytes, a bad sector — is *quarantined*:
moved to ``quarantine/<namespace>/`` with a ``.reason`` sidecar and
read as missing, so the caller's resume machinery regenerates it
instead of crashing or silently consuming corruption. Records written
before the integrity layer (no stamp) are accepted as legacy.
:meth:`verify` (the ``repro store verify`` subcommand) sweeps the
whole store eagerly and reports per-namespace ok/legacy/corrupt
counts.

``<key>`` is :meth:`repro.service.spec.JobSpec.cache_key` — the SHA-256
of the normalized spec's canonical JSON — so the store *is* the dedupe
index: a resubmitted identical ``(spec, entropy)`` hits ``results/``
and is served without re-execution, and a restarted service finds the
completed spans of an interrupted campaign under ``shards/`` and only
executes the gaps. Both are sound because the per-trial seeding
contract makes every span's tallies a pure function of the key and the
span bounds (see the service-sharded execution contract in
:mod:`repro.faults.batch`).

``jobs/`` holds the scheduler's live job records so job *ids* — not
just results — survive a service restart: a restarted
:class:`repro.service.scheduler.CampaignService` reloads them, answers
``status`` queries for pre-restart ids, and re-enqueues the ones that
never reached a terminal state.

``events/`` is the observability plane's namespace: one append-only
JSONL file per trace (= per job id) accumulating span/event records
from every process that touches the job (see :mod:`repro.obs.trace`).
Events are *telemetry, not state* — they carry no integrity stamp, the
verify sweep skips them, a torn tail line is silently dropped on read,
and nothing in resume or dedupe ever depends on them. Appends use
``O_APPEND`` semantics so the scheduler and several workers can
interleave batches into one timeline without coordination.

The store grows without bound by default (content-addressed records
are never invalidated); long-lived deployments run :meth:`gc` — the
``repro store gc`` subcommand — with a max-age and/or max-bytes policy
plus an orphan-shard sweep for checkpoint directories a crash left
behind after their final record was already written.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.faults.campaign import CampaignResult
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.logs import get_logger
from repro.obs.trace import decode_event_lines, encode_event_lines
from repro.service.spec import result_from_dict, result_to_dict
from repro.utils.canonical import canonical_json

_SHARD_FILE = re.compile(r"^(\d+)-(\d+)\.json$")

_LOG = get_logger("store")

_STORE_OPS = obs_metrics.counter(
    "repro_store_ops_total", "Store operations by kind and namespace.",
    ("op", "namespace"))
_STORE_QUARANTINES = obs_metrics.counter(
    "repro_store_quarantines_total",
    "Records pulled into quarantine, by namespace.", ("namespace",))

#: Top-level field carrying each record's content digest. Stamped on
#: every write, verified on every read; records written before the
#: integrity layer existed simply lack it and are accepted as legacy.
INTEGRITY_KEY = "integrity"

#: Store namespaces the integrity sweep covers (subdirectory names).
NAMESPACES = ("results", "shards", "jobs")

#: Path components the store will embed in filenames. Keys are SHA-256
#: hex in practice, but the HTTP worker surface forwards caller-supplied
#: strings here, so anything that could traverse (separators, leading
#: dots, empty) is rejected at the boundary.
_SAFE_COMPONENT = re.compile(r"^[A-Za-z0-9_-][A-Za-z0-9._-]*$")


def _checked_component(value: str, what: str) -> str:
    """``value`` if it is a safe single path component, else ValueError."""
    if not isinstance(value, str) or not _SAFE_COMPONENT.match(value):
        raise ValueError(f"invalid {what} {value!r}: must be a single "
                         f"path component (letters, digits, '._-', no "
                         f"leading dot)")
    return value


def _payload_digest(payload: dict) -> str:
    """SHA-256 of the canonical JSON of ``payload`` minus its stamp."""
    body = {k: v for k, v in payload.items() if k != INTEGRITY_KEY}
    return hashlib.sha256(
        canonical_json(body).encode("utf-8")).hexdigest()


def _stamped(payload: dict) -> dict:
    """``payload`` with its integrity stamp (a shallow copy)."""
    out = dict(payload)
    out[INTEGRITY_KEY] = {"algo": "sha256",
                          "digest": _payload_digest(payload)}
    return out


def _integrity_error(payload) -> Optional[str]:
    """Why ``payload`` fails verification, or ``None`` when it passes.

    A record without a stamp is *legacy*, not corrupt — the store
    predates the integrity layer for some deployments — so absence
    passes; a present-but-wrong stamp is the corruption signal.
    """
    if not isinstance(payload, dict):
        return "record is not a JSON object"
    stamp = payload.get(INTEGRITY_KEY)
    if stamp is None:
        return None
    if not isinstance(stamp, dict) or "digest" not in stamp:
        return "malformed integrity stamp"
    try:
        actual = _payload_digest(payload)
    except (TypeError, ValueError):
        return "record is not canonically hashable"
    if stamp["digest"] != actual:
        return (f"digest mismatch: stamped {stamp['digest'][:12]}..., "
                f"content hashes to {actual[:12]}...")
    return None


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write stamped JSON so readers see the old file or the new one."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(_stamped(payload), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """Filesystem-backed content-addressed store (see module docstring).

    The store is safe to share between a service and ad-hoc readers:
    records are immutable once written (same key -> same content by
    construction, so an overwrite race is harmless).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.shards_dir = self.root / "shards"
        self.jobs_dir = self.root / "jobs"
        self.events_dir = self.root / "events"
        self.quarantine_dir = self.root / "quarantine"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.events_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Integrity: checked reads + quarantine
    # ------------------------------------------------------------------ #

    def _quarantine(self, path: Path, namespace: str,
                    reason: str) -> Optional[Path]:
        """Move a corrupt record out of its namespace instead of
        crashing (or silently re-serving bad bytes) on every read.

        The file lands under ``quarantine/<namespace>/`` with its name
        preserved (numeric suffix on collision) next to a ``.reason``
        sidecar recording why, when, and from where it was pulled.
        Returns the quarantined path, or ``None`` when the move itself
        failed (in which case the caller still treats the record as
        missing — quarantine is best-effort, correctness never depends
        on it).
        """
        _STORE_QUARANTINES.inc(namespace=namespace)
        _LOG.warning("quarantining corrupt record", extra={
            "event": "store.quarantine", "namespace": namespace,
            "path": str(path), "reason": reason})
        target_dir = self.quarantine_dir / namespace
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / path.name
            bump = 0
            while target.exists():
                bump += 1
                target = target_dir / f"{path.name}.{bump}"
            os.replace(path, target)
        except OSError:
            return None
        try:
            _atomic_write_json(
                Path(f"{target}.reason"),
                {"reason": reason, "namespace": namespace,
                 "original_path": str(path),
                 "quarantined_at": time.time()})
        except OSError:
            pass
        return target

    def _read_checked(self, path: Path, namespace: str) -> Optional[dict]:
        """Read + verify one record; corrupt files are quarantined and
        read as missing (the caller's resume/re-execute machinery then
        regenerates them — graceful degradation, never a crash)."""
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            self._quarantine(path, namespace,
                             f"undecodable JSON: {exc}")
            return None
        error = _integrity_error(payload)
        if error is not None:
            self._quarantine(path, namespace, error)
            return None
        payload.pop(INTEGRITY_KEY, None)
        return payload

    def quarantine_counts(self) -> Dict[str, int]:
        """Quarantined record count per namespace (``.reason`` sidecars
        excluded) — the store half of the ``/health`` payload."""
        out = {namespace: 0 for namespace in NAMESPACES}
        if not self.quarantine_dir.is_dir():
            return out
        for sub in self.quarantine_dir.iterdir():
            if sub.is_dir():
                out[sub.name] = sum(
                    1 for p in sub.iterdir()
                    if not p.name.endswith(".reason"))
        return out

    def verify(self, quarantine: bool = False) -> dict:
        """Integrity sweep over every record in the store.

        Parses and digest-checks all of ``results/``, ``shards/``, and
        ``jobs/``. Returns a report dict: per-namespace counts of
        ``ok`` (stamped, digest matches), ``legacy`` (pre-integrity
        records without a stamp), and ``corrupt`` entries
        (``{path, namespace, reason}``). With ``quarantine=True`` the
        corrupt files are moved to the quarantine namespace as a side
        effect (the same motion a checked read performs lazily).

        The ``repro store verify`` subcommand is a thin wrapper.
        """
        report = {
            "checked": 0, "ok": 0, "legacy": 0,
            "corrupt": [], "quarantined": [],
            "quarantine_counts": None,
        }

        def check(path: Path, namespace: str) -> None:
            report["checked"] += 1
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (json.JSONDecodeError, UnicodeDecodeError,
                    OSError) as exc:
                error: Optional[str] = f"undecodable JSON: {exc}"
            else:
                error = _integrity_error(payload)
                if error is None:
                    if isinstance(payload, dict) and \
                            INTEGRITY_KEY in payload:
                        report["ok"] += 1
                    else:
                        report["legacy"] += 1
                    return
            report["corrupt"].append({
                "path": str(path), "namespace": namespace,
                "reason": error})
            if quarantine:
                moved = self._quarantine(path, namespace, error)
                if moved is not None:
                    report["quarantined"].append(str(moved))

        for path in sorted(self.results_dir.glob("*.json")):
            check(path, "results")
        for directory in sorted(self.shards_dir.iterdir()) \
                if self.shards_dir.is_dir() else []:
            if directory.is_dir():
                for path in sorted(directory.iterdir()):
                    if _SHARD_FILE.match(path.name):
                        check(path, "shards")
        for path in sorted(self.jobs_dir.glob("*.json")):
            check(path, "jobs")
        report["quarantine_counts"] = self.quarantine_counts()
        return report

    # ------------------------------------------------------------------ #
    # Final results
    # ------------------------------------------------------------------ #

    def _result_path(self, key: str) -> Path:
        return self.results_dir / f"{_checked_component(key, 'key')}.json"

    def has(self, key: str) -> bool:
        return self._result_path(key).exists()

    def get(self, key: str) -> Optional[dict]:
        """The completed job record under ``key``, or ``None``.

        Digest-checked: a corrupt record is quarantined and read as
        missing, so the key simply re-executes instead of serving (or
        crashing on) bad bytes.
        """
        record = self._read_checked(self._result_path(key), "results")
        _STORE_OPS.inc(op="get_hit" if record is not None else "get_miss",
                       namespace="results")
        return record

    def put(self, key: str, record: dict) -> None:
        """Persist a completed job record (atomic)."""
        _atomic_write_json(self._result_path(key), record)
        _STORE_OPS.inc(op="put", namespace="results")

    def keys(self) -> List[str]:
        """Keys of every completed record in the store."""
        return sorted(p.stem for p in self.results_dir.glob("*.json"))

    # ------------------------------------------------------------------ #
    # Shard checkpoints
    # ------------------------------------------------------------------ #

    def _shard_path(self, key: str, lo: int, hi: int) -> Path:
        return self.shards_dir / _checked_component(key, "key") / \
            f"{int(lo)}-{int(hi)}.json"

    def put_shard(self, key: str, lo: int, hi: int,
                  result: CampaignResult,
                  phases: Optional[Dict[str, int]] = None) -> None:
        """Checkpoint one completed span of the job under ``key``.

        ``phases`` (optional) stamps the executor's per-phase timing
        profile (``{phase: ns}``, see :class:`repro.obs.PhaseProfile`)
        into the checkpoint record. It is observability metadata: the
        tallies in ``result`` stay the record's entire meaning, readers
        of :meth:`get_shard` never see it, and legacy checkpoints
        without the field remain valid.
        """
        record = {"lo": lo, "hi": hi, "result": result_to_dict(result)}
        if phases:
            record["phases"] = {str(k): int(v)
                                for k, v in phases.items()}
        _atomic_write_json(self._shard_path(key, lo, hi), record)
        _STORE_OPS.inc(op="put", namespace="shards")

    def get_shard(self, key: str, lo: int,
                  hi: int) -> Optional[CampaignResult]:
        """The checkpointed tallies of span ``[lo, hi)``, or ``None``.

        Digest-checked like :meth:`get`: a corrupt or undecodable
        checkpoint is quarantined and reads as missing, so the span is
        simply re-executed.
        """
        path = self._shard_path(key, lo, hi)
        record = self._read_checked(path, "shards")
        _STORE_OPS.inc(op="get_hit" if record is not None else "get_miss",
                       namespace="shards")
        if record is None:
            return None
        try:
            return result_from_dict(record["result"])
        except (KeyError, TypeError, ValueError) as exc:
            # Valid JSON, valid (or legacy-absent) digest, wrong shape:
            # still corruption from the reader's point of view.
            self._quarantine(path, "shards",
                             f"undecodable shard record: "
                             f"{type(exc).__name__}: {exc}")
            return None

    def shard_spans(self, key: str) -> Dict[Tuple[int, int], CampaignResult]:
        """Every checkpointed span of ``key`` (for resume planning).

        Corrupt checkpoints are quarantined and skipped — the span
        reads as a gap and re-executes.
        """
        out: Dict[Tuple[int, int], CampaignResult] = {}
        directory = self.shards_dir / _checked_component(key, "key")
        if not directory.is_dir():
            return out
        for path in sorted(directory.iterdir()):
            match = _SHARD_FILE.match(path.name)
            if not match:
                continue
            tallies = self.get_shard(key, int(match.group(1)),
                                     int(match.group(2)))
            if tallies is not None:
                out[(int(match.group(1)), int(match.group(2)))] = tallies
        return out

    def shard_phases(self, key: str) -> Dict[Tuple[int, int],
                                             Dict[str, int]]:
        """Per-span phase profiles stamped on the checkpoints of
        ``key`` (spans checkpointed without one are absent). Used by
        the scheduler to aggregate ``{phase: ns}`` onto the job record
        before the checkpoints are cleared."""
        out: Dict[Tuple[int, int], Dict[str, int]] = {}
        directory = self.shards_dir / _checked_component(key, "key")
        if not directory.is_dir():
            return out
        for path in sorted(directory.iterdir()):
            match = _SHARD_FILE.match(path.name)
            if not match:
                continue
            record = self._read_checked(path, "shards")
            if record is None:
                continue
            phases = record.get("phases")
            if isinstance(phases, dict) and phases:
                out[(int(match.group(1)), int(match.group(2)))] = {
                    str(k): int(v) for k, v in phases.items()
                    if isinstance(v, (int, float))}
        return out

    def clear_shards(self, key: str) -> None:
        """Drop the checkpoints of ``key`` (after its final record)."""
        directory = self.shards_dir / _checked_component(key, "key")
        if not directory.is_dir():
            return
        for path in directory.iterdir():
            try:
                path.unlink()
            except OSError:
                pass
        try:
            directory.rmdir()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Persisted job records (stable ids across service restarts)
    # ------------------------------------------------------------------ #

    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / \
            f"{_checked_component(job_id, 'job id')}.json"

    def put_job(self, job_id: str, record: dict) -> None:
        """Persist one scheduler job record (atomic overwrite)."""
        _atomic_write_json(self._job_path(job_id), record)
        _STORE_OPS.inc(op="put", namespace="jobs")

    def get_job(self, job_id: str) -> Optional[dict]:
        """The persisted record of ``job_id``, or ``None`` (corrupt
        records are quarantined and read as missing)."""
        record = self._read_checked(self._job_path(job_id), "jobs")
        _STORE_OPS.inc(op="get_hit" if record is not None else "get_miss",
                       namespace="jobs")
        return record

    def job_ids(self) -> List[str]:
        """Every persisted job id, sorted (= submission order: ids
        embed a monotonic sequence number)."""
        return sorted(p.stem for p in self.jobs_dir.glob("*.json"))

    def iter_jobs(self) -> Iterator[dict]:
        """Persisted job records in id order. Torn or corrupt files are
        quarantined by the checked read and skipped — they must never
        block recovery."""
        for job_id in self.job_ids():
            record = self.get_job(job_id)
            if record is not None:
                yield record

    def delete_job(self, job_id: str) -> None:
        """Forget one persisted job record (id eviction), along with
        its trace events — telemetry never outlives the job id."""
        try:
            self._job_path(job_id).unlink()
        except OSError:
            pass
        try:
            self._events_path(job_id).unlink()
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------ #
    # Trace events (append-only telemetry; see the module docstring)
    # ------------------------------------------------------------------ #

    def _events_path(self, trace_id: str) -> Path:
        return self.events_dir / \
            f"{_checked_component(trace_id, 'trace id')}.jsonl"

    def append_events(self, trace_id: str, events: List[dict]) -> None:
        """Append a batch of trace event records as JSONL lines.

        Open-for-append gives ``O_APPEND`` write semantics, so
        concurrent appenders (scheduler + N workers) interleave whole
        batches rather than torn bytes for the line sizes in play; a
        rare torn line is tolerated by the reader anyway.
        """
        if not events:
            return
        data = encode_event_lines(events)
        self.events_dir.mkdir(parents=True, exist_ok=True)
        with open(self._events_path(trace_id), "a") as handle:
            handle.write(data)
        _STORE_OPS.inc(op="append", namespace="events")

    def read_events(self, trace_id: str) -> List[dict]:
        """Every event recorded for ``trace_id``, torn lines skipped
        (events are telemetry: best-effort by contract)."""
        try:
            text = self._events_path(trace_id).read_text()
        except (OSError, ValueError):
            return []
        return decode_event_lines(text)

    def has_events(self, trace_id: str) -> bool:
        try:
            return self._events_path(trace_id).is_file()
        except ValueError:
            return False

    def event_traces(self) -> List[str]:
        """Every trace id with recorded events, sorted."""
        return sorted(p.stem for p in self.events_dir.glob("*.jsonl"))

    # ------------------------------------------------------------------ #
    # Perf ledger (append-only telemetry; see repro.obs.perf)
    # ------------------------------------------------------------------ #

    def _perf_path(self) -> Path:
        return self.root / "perf" / "ledger.jsonl"

    def append_perf(self, record: dict) -> None:
        """Append one perf-ledger record (a settled job's phase
        profile, normalised per trial — see
        :func:`repro.obs.perf.job_phases_record`). Telemetry like
        ``events/``: no integrity stamp, torn tails tolerated on read,
        nothing in resume or dedupe depends on it."""
        obs_perf.append_record(str(self._perf_path()), record)
        _STORE_OPS.inc(op="append", namespace="perf")

    def read_perf(self) -> List[dict]:
        """Every readable perf-ledger record (torn lines skipped)."""
        return obs_perf.read_ledger(str(self._perf_path()))

    # ------------------------------------------------------------------ #
    # Eviction / garbage collection
    # ------------------------------------------------------------------ #

    def size_bytes(self) -> int:
        """Total bytes under the store root (results, shards, jobs)."""
        total = 0
        for directory, _dirs, files in os.walk(self.root):
            for name in files:
                try:
                    total += os.path.getsize(os.path.join(directory, name))
                except OSError:
                    pass
        return total

    def gc(self, max_age_s: Optional[float] = None,
           max_bytes: Optional[int] = None, sweep_orphans: bool = True,
           dry_run: bool = False, now: Optional[float] = None) -> dict:
        """Bounded-growth policy for long-lived deployments.

        Three independent sweeps, in order:

        1. **Orphan shards** (``sweep_orphans``): checkpoint
           directories whose final record already exists — a crash
           between ``put`` and ``clear_shards`` leaves them — are
           dropped; they can never be read again.
        2. **Max age** (``max_age_s``): result records older than the
           horizon are evicted, along with the persisted *terminal* job
           records pointing at them and any equally old in-flight shard
           directories/job records (abandoned work).
        3. **Max bytes** (``max_bytes``): while the store exceeds the
           budget, the oldest result records are evicted (with their
           dependent job records), oldest first.

        Eviction is safe, never destructive of meaning: a record is a
        pure function of its spec, so an evicted key simply re-executes
        on next submission instead of hitting cache. ``dry_run=True``
        reports what would go without touching the filesystem. Returns
        a report dict (counts, evicted keys, bytes before/after).
        """
        if max_age_s is not None and max_age_s < 0:
            raise ValueError(f"max_age_s must be non-negative, "
                             f"got {max_age_s}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, "
                             f"got {max_bytes}")
        now = time.time() if now is None else now
        report = {
            "dry_run": dry_run,
            "bytes_before": self.size_bytes(),
            "evicted_results": [],
            "evicted_jobs": [],
            "orphan_shard_keys": [],
            "stale_shard_keys": [],
        }
        # `freed` tracks bytes the sweeps have reclaimed (or, on a dry
        # run, *would* reclaim) so the byte-budget step below starts
        # from the post-sweep size either way — a dry run must predict
        # the real run, not overstate it.
        freed = 0
        jobs_by_key: Dict[str, List[str]] = {}
        for record in self.iter_jobs():
            job_id = record.get("id")
            if isinstance(job_id, str):  # schema-alien files: not ours
                jobs_by_key.setdefault(record.get("key", ""), []).append(
                    job_id)

        def evict_key(key: str) -> None:
            nonlocal freed
            freed += self._key_bytes(key)
            report["evicted_results"].append(key)
            if not dry_run:
                try:
                    self._result_path(key).unlink()
                except OSError:
                    pass
                self.clear_shards(key)
            for job_id in jobs_by_key.pop(key, []):
                report["evicted_jobs"].append(job_id)
                freed += self._file_bytes(self._job_path(job_id))
                if not dry_run:
                    self.delete_job(job_id)

        # 1. orphan shard directories (final record already written)
        if sweep_orphans:
            for directory in sorted(self.shards_dir.iterdir()):
                if directory.is_dir() and self.has(directory.name):
                    report["orphan_shard_keys"].append(directory.name)
                    freed += self._dir_bytes(directory)
                    if not dry_run:
                        shutil.rmtree(directory, ignore_errors=True)

        # 2. age horizon
        if max_age_s is not None:
            horizon = now - max_age_s
            for key in self.keys():
                if self._mtime(self._result_path(key)) < horizon:
                    evict_key(key)
            for directory in sorted(self.shards_dir.iterdir()):
                if directory.is_dir() and \
                        self._dir_mtime(directory) < horizon:
                    report["stale_shard_keys"].append(directory.name)
                    freed += self._dir_bytes(directory)
                    if not dry_run:
                        shutil.rmtree(directory, ignore_errors=True)
            for record in list(self.iter_jobs()):
                if not isinstance(record.get("id"), str):
                    continue  # schema-alien JSON: never ours to delete
                if record["id"] in report["evicted_jobs"]:
                    continue
                if record.get("state") in ("done", "failed"):
                    # terminal: age from completion time
                    stamp = record.get("finished_at") or 0.0
                else:
                    # abandoned in-flight work (a deployment that died
                    # long ago): age from submission, so a record this
                    # old can never be genuinely live — left alone it
                    # would re-enqueue and re-execute on every restart
                    stamp = record.get("submitted_at") or 0.0
                if stamp < horizon:
                    report["evicted_jobs"].append(record["id"])
                    freed += self._file_bytes(
                        self._job_path(record["id"]))
                    peers = jobs_by_key.get(record.get("key", ""), [])
                    if record["id"] in peers:
                        peers.remove(record["id"])
                    if not dry_run:
                        self.delete_job(record["id"])

        # 3. byte budget (oldest results first)
        if max_bytes is not None:
            remaining = [k for k in self.keys()
                         if k not in report["evicted_results"]]
            remaining.sort(key=lambda k: self._mtime(self._result_path(k)))
            size = self.size_bytes() if not dry_run else \
                report["bytes_before"] - freed
            for key in remaining:
                if size <= max_bytes:
                    break
                size -= self._key_bytes(key)
                evict_key(key)

        report["bytes_after"] = report["bytes_before"] if dry_run \
            else self.size_bytes()
        return report

    def _key_bytes(self, key: str) -> int:
        """Bytes attributable to ``key`` (record + checkpoints)."""
        total = 0
        try:
            total += self._result_path(key).stat().st_size
        except OSError:
            pass
        directory = self.shards_dir / key
        if directory.is_dir():
            for path in directory.iterdir():
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    @staticmethod
    def _mtime(path: Path) -> float:
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    @staticmethod
    def _file_bytes(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def _dir_bytes(self, directory: Path) -> int:
        """Total file bytes directly inside ``directory``."""
        return sum(self._file_bytes(p) for p in directory.iterdir())

    def _dir_mtime(self, directory: Path) -> float:
        """Newest mtime inside ``directory`` (activity timestamp)."""
        newest = self._mtime(directory)
        for path in directory.iterdir():
            newest = max(newest, self._mtime(path))
        return newest
