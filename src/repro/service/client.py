"""Python client for the campaign service's HTTP surface.

Thin, blocking, stdlib-only (``urllib``): the shape a user script or a
CI smoke test wants. Submit a spec, poll until it settles, read the
result::

    from repro.service import CampaignJobSpec, InjectorSpec, ServiceClient

    client = ServiceClient("http://127.0.0.1:8937")
    job = client.submit(CampaignJobSpec(
        n=45, m=15, trials=2048, seed=7,
        injector=InjectorSpec("uniform", {"probability": 5e-3})))
    record = client.wait(job["id"])
    print(record["result"])

``repro submit`` / ``repro status`` are CLI wrappers over this class.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import List, Optional, Union

from repro.service.spec import JobSpec
from repro.utils.retry import Deadline, RetryPolicy, note_giveup, \
    poll_policy


class ServiceUnavailableError(ConnectionError):
    """The service did not answer (not running / wrong URL)."""


class JobFailedError(RuntimeError):
    """A waited-on job reached the ``failed`` state."""


class ServiceClient:
    """Blocking JSON-over-HTTP client (see the module docstring)."""

    def __init__(self, url: str = "http://127.0.0.1:8937",
                 timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        body = None if payload is None \
            else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url + path, data=body, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                detail = {}
            raise ValueError(
                detail.get("error", f"HTTP {exc.code} from {path}")
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"campaign service unreachable at {self.url}: "
                f"{exc.reason}") from None

    def _request_text(self, path: str) -> str:
        """GET a non-JSON endpoint (``/metrics``) as raw text."""
        request = urllib.request.Request(self.url + path, method="GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ValueError(f"HTTP {exc.code} from {path}") from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"campaign service unreachable at {self.url}: "
                f"{exc.reason}") from None

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #

    def health(self) -> bool:
        """True when the service answers its liveness probe."""
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except ServiceUnavailableError:
            return False

    def health_report(self) -> dict:
        """The service's detailed ``/health`` payload: job-state
        counts, broker depth and inflight leases, open circuit
        breakers, store quarantine counts, service ``uptime_s``, and a
        compact ``metrics_snapshot`` of label-summed counters (unlike
        :meth:`health`, transport errors propagate — an unreachable
        service has no health report)."""
        return self._request("GET", "/health")

    def info(self) -> dict:
        """Service introspection (:func:`repro.service.service_info`)."""
        return self._request("GET", "/info")

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        return self._request_text("/metrics")

    def perf_report(self) -> dict:
        """The service's per-phase drift report from ``GET /perf``
        (see :meth:`CampaignService.perf_report`)."""
        return self._request("GET", "/perf")

    def trace(self, job_id: str) -> List[dict]:
        """The job's raw trace events (``ValueError`` when unknown)."""
        return self._request("GET", f"/trace/{job_id}")["events"]

    def submit(self, spec: Union[JobSpec, dict]) -> dict:
        """Submit a job spec; returns the initial job record."""
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        return self._request("POST", "/jobs", spec)

    def status(self, job_id: str) -> dict:
        """The current record of ``job_id``."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[dict]:
        """Every job record the service instance has accepted."""
        return self._request("GET", "/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_interval: float = 0.1) -> dict:
        """Poll until ``job_id`` settles; return its terminal record.

        Raises :class:`JobFailedError` when the job fails and
        :class:`TimeoutError` when ``timeout`` elapses first. The two
        timeout flavours are distinguishable from the message — and
        both report the last job state this client observed — so an
        operator can tell a *dead service* (transport unreachable on
        the final poll) from a *slow job* (service answering, job
        simply not terminal yet).

        A poll that hits a transient connection error (service
        restarting between checks, socket briefly refused) does not
        abort the wait: unreachability is retried on the shared
        :class:`RetryPolicy` (capped exponential, full jitter) until
        the deadline — the same transport-error policy the worker
        daemon's claim loop uses
        (:meth:`repro.distributed.worker.ShardWorker.run`). Only the
        deadline turns persistent unreachability into an error.
        """
        deadline = Deadline.after(timeout)
        backoff = RetryPolicy(initial_s=poll_interval, cap_s=5.0)
        steady = poll_policy(poll_interval)
        errors = 0
        last_state: Optional[str] = None
        while True:
            try:
                record = self.status(job_id)
            except ServiceUnavailableError as exc:
                errors += 1
                if deadline.expired():
                    note_giveup("client.wait.unreachable")
                    observed = (
                        f"last observed job state: {last_state!r}"
                        if last_state is not None else
                        "the job's state was never observed")
                    raise TimeoutError(
                        f"job {job_id} unsettled after {timeout:.1f}s; "
                        f"service unreachable on the last poll "
                        f"({exc}); {observed} — this looks like a dead "
                        f"or unreachable service, not a slow job"
                    ) from exc
                backoff.sleep(errors - 1, deadline=deadline)
                continue
            errors = 0
            last_state = record["state"]
            if record["state"] == "done":
                return record
            if record["state"] == "failed":
                raise JobFailedError(
                    f"job {job_id} failed: {record.get('error')}")
            if deadline.expired():
                note_giveup("client.wait.slow_job")
                raise TimeoutError(
                    f"job {job_id} still {record['state']!r} after "
                    f"{timeout:.1f}s; the service is reachable — this "
                    f"is a slow or stuck job, not a dead service")
            steady.sleep(0, deadline=deadline)

    # ------------------------------------------------------------------ #
    # Worker transport (the HTTP half of repro.distributed.worker)
    # ------------------------------------------------------------------ #

    def claim_unit(self, worker: str,
                   ttl_s: float = 30.0) -> Optional[dict]:
        """Claim one work unit under a TTL lease (``None`` when idle).

        Only answered by services running ``execution="distributed"``;
        otherwise the server returns 409, surfaced as ``ValueError``.
        """
        return self._request("POST", "/units/claim",
                             {"worker": worker, "ttl_s": ttl_s})["unit"]

    def heartbeat_unit(self, unit_id: str, worker: str,
                       ttl_s: float = 30.0) -> bool:
        """Extend a lease; ``False`` means the lease was lost."""
        return bool(self._request(
            "POST", "/units/heartbeat",
            {"unit_id": unit_id, "worker": worker, "ttl_s": ttl_s})["ok"])

    def ack_unit(self, unit_id: str, worker: str) -> bool:
        """Ack a unit whose checkpoint already exists server-side."""
        return bool(self._request(
            "POST", "/units/ack",
            {"unit_id": unit_id, "worker": worker})["ok"])

    def complete_unit(self, unit_id: str, worker: str, job_key: str,
                      lo: int, hi: int, result: dict,
                      phases: Optional[dict] = None) -> bool:
        """Upload span tallies; the server checkpoints, then acks.

        ``phases`` is the optional ``{phase: ns}`` execution profile
        stamped onto the server-side checkpoint record."""
        payload = {"unit_id": unit_id, "worker": worker,
                   "job_key": job_key, "lo": lo, "hi": hi,
                   "result": result}
        if phases:
            payload["phases"] = phases
        return bool(self._request("POST", "/units/complete",
                                  payload)["ok"])

    def record_events(self, trace_id: str, events: List[dict]) -> None:
        """Append worker trace events to the service's event log."""
        if not events:
            return
        self._request("POST", "/units/events",
                      {"trace": trace_id, "events": events})

    def fail_unit(self, unit_id: str, worker: str, error: str,
                  requeue: bool = True) -> bool:
        """Report a unit failure (requeue or terminal poison)."""
        return bool(self._request(
            "POST", "/units/fail",
            {"unit_id": unit_id, "worker": worker, "error": error,
             "requeue": requeue})["ok"])

    def shard_done(self, job_key: str, lo: int, hi: int) -> bool:
        """Whether the span's checkpoint already exists server-side
        (the dedupe short-circuit after a lease-expiry race)."""
        return bool(self._request(
            "POST", "/units/shard_done",
            {"job_key": job_key, "lo": lo, "hi": hi})["done"])

    def wait_until_up(self, timeout: float = 10.0,
                      poll_interval: float = 0.1) -> None:
        """Block until the service answers (for just-started servers).

        Polls :meth:`health` with capped exponential backoff while the
        service is unreachable (:meth:`health` swallows the transport
        error itself, so a restarting service reads as ``False``, never
        as an exception); raises :class:`ServiceUnavailableError` only
        when the deadline passes first.
        """
        deadline = Deadline.after(timeout)
        # Cap lower than wait(): come-up latency is the whole point
        # here, so never doze past a second at a time.
        backoff = RetryPolicy(initial_s=poll_interval, cap_s=1.0)
        misses = 0
        while not self.health():
            if deadline.expired():
                raise ServiceUnavailableError(
                    f"campaign service at {self.url} did not come up "
                    f"within {timeout:.1f}s")
            backoff.sleep(misses, deadline=deadline)
            misses += 1
