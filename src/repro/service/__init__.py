"""Campaign service layer: submit-and-poll reliability campaigns.

Turns the library's blocking campaign entry points into long-running
service jobs:

* :mod:`repro.service.spec` — declarative, JSON-serializable
  :class:`JobSpec` families covering every campaign workload (fault
  campaigns, drift survival, burst survival, adaptive Wilson-CI runs,
  logic equivalence checks) with full fidelity to the
  packing/backend/seeding options;
* :mod:`repro.service.store` — content-addressed persistent result
  store with shard-level checkpoints (identical ``(spec, entropy)``
  submissions dedupe to the cached result; a killed service resumes a
  half-done campaign without redoing completed spans);
* :mod:`repro.service.queue` — pluggable job-queue backends (in-memory
  asyncio queue by default; the durable SQLite queue from
  :mod:`repro.distributed.broker` registers as ``"sqlite"``);
* :mod:`repro.service.scheduler` — the asyncio scheduler executing
  jobs as :class:`repro.faults.batch.ShardTask` spans on a process
  pool (``execution="local"``) or publishing them to the
  :mod:`repro.distributed` worker fleet (``execution="distributed"``),
  under the per-trial seeding contract either way, so service-executed
  results are bit-identical to in-process ``CampaignRunner`` runs;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a small
  stdlib HTTP surface (``repro serve`` / ``repro submit`` /
  ``repro status``) and its Python client.
"""

from repro.service.client import ServiceClient
from repro.service.queue import (
    MemoryJobQueue,
    available_queue_backends,
    make_queue,
    register_queue_backend,
)
from repro.service.scheduler import (
    EXECUTION_MODES,
    CampaignService,
    JobRecord,
    UnitFailedError,
    service_info,
)
from repro.service.server import ServiceServer
from repro.service.spec import (
    JOB_KINDS,
    AdaptiveCampaignJobSpec,
    BurstSurvivalJobSpec,
    CampaignJobSpec,
    DriftSurvivalJobSpec,
    InjectorSpec,
    JobSpec,
    LogicEquivalenceJobSpec,
    injector_kinds,
    result_from_dict,
    result_to_dict,
)
from repro.service.store import ResultStore

__all__ = [
    "EXECUTION_MODES",
    "JOB_KINDS",
    "AdaptiveCampaignJobSpec",
    "BurstSurvivalJobSpec",
    "CampaignJobSpec",
    "CampaignService",
    "DriftSurvivalJobSpec",
    "InjectorSpec",
    "JobRecord",
    "JobSpec",
    "LogicEquivalenceJobSpec",
    "MemoryJobQueue",
    "ResultStore",
    "ServiceClient",
    "ServiceServer",
    "UnitFailedError",
    "available_queue_backends",
    "injector_kinds",
    "make_queue",
    "register_queue_backend",
    "result_from_dict",
    "result_to_dict",
    "service_info",
]
