"""Pluggable job-queue backends for the campaign service.

The scheduler never touches a concrete queue class: it asks
:func:`make_queue` for a registered backend by name, exactly like the
array-backend registry (:mod:`repro.utils.backend`). The built-in
``"memory"`` backend wraps :class:`asyncio.Queue` — correct for a
single-process service; a distributed deployment registers a broker
adapter (Redis, SQS, ...) under a new name and selects it with
``CampaignService(queue="...")`` without any scheduler change.

The interface is deliberately minimal — FIFO put/get of opaque job ids
plus a close hook — because all job *state* lives in the scheduler's
records and the persistent :class:`repro.service.store.ResultStore`;
the queue only orders work. Crash recovery therefore does not depend
on queue durability: a restarted service re-derives progress from the
store's shard checkpoints, not from queue contents.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Tuple


class JobQueue:
    """Minimal async FIFO of job ids (see the module docstring)."""

    async def put(self, job_id: str) -> None:
        raise NotImplementedError

    async def get(self) -> str:
        raise NotImplementedError

    async def close(self) -> None:
        """Release backend resources (no-op for in-memory queues)."""


class MemoryJobQueue(JobQueue):
    """In-process FIFO over :class:`asyncio.Queue` (the default)."""

    def __init__(self) -> None:
        self._queue: asyncio.Queue = asyncio.Queue()

    async def put(self, job_id: str) -> None:
        await self._queue.put(job_id)

    async def get(self) -> str:
        return await self._queue.get()

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        return self._queue.qsize()


_QUEUE_BACKENDS: Dict[str, Callable[[], JobQueue]] = {
    "memory": MemoryJobQueue,
}


def register_queue_backend(name: str, factory: Callable[[], JobQueue],
                           overwrite: bool = False) -> None:
    """Register a queue factory under ``name`` (lazily instantiated)."""
    if name in _QUEUE_BACKENDS and not overwrite:
        raise ValueError(f"queue backend {name!r} is already registered "
                         f"(pass overwrite=True to replace it)")
    _QUEUE_BACKENDS[name] = factory


def available_queue_backends() -> Tuple[str, ...]:
    """Registered queue-backend names."""
    return tuple(sorted(_QUEUE_BACKENDS))


def make_queue(name: str) -> JobQueue:
    """Instantiate the queue backend registered under ``name``."""
    if name not in _QUEUE_BACKENDS:
        raise ValueError(f"unknown queue backend {name!r}; registered: "
                         f"{', '.join(available_queue_backends())}")
    return _QUEUE_BACKENDS[name]()
