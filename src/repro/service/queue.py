"""Pluggable job-queue backends for the campaign service.

The scheduler never touches a concrete queue class: it asks
:func:`make_queue` for a registered backend by name, exactly like the
array-backend registry (:mod:`repro.utils.backend`). The built-in
``"memory"`` backend wraps :class:`asyncio.Queue` — correct for a
single-process service; the durable ``"sqlite"`` backend
(:class:`repro.distributed.broker.SqliteJobQueue`) keeps the FIFO in a
SQLite file so queued job ids survive a service restart. Further
brokers (Redis, SQS, ...) register the same interface under a new name
and are selected with ``CampaignService(queue="...")`` without any
scheduler change; backend-specific construction knobs (file paths,
endpoints) flow through ``make_queue(name, **options)``.

The interface is deliberately minimal — FIFO put/get of opaque job ids
plus a close hook — because all job *state* lives in the scheduler's
records and the persistent :class:`repro.service.store.ResultStore`;
the queue only orders work. Crash recovery therefore does not depend
on queue durability: a restarted service re-derives progress from the
store's shard checkpoints and persisted job records, not from queue
contents.

Conformance contract (pinned for every registered backend by
``tests/service/test_queue_conformance.py``):

* ``get`` returns ids strictly in ``put`` order (FIFO);
* ``get`` blocks (asynchronously) until an id is available;
* after ``close()``, ``put`` and ``get`` raise ``RuntimeError`` and
  ``closed`` is ``True`` — a closed queue never silently drops work.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Tuple

from repro.obs import metrics as obs_metrics

_QUEUE_OPS = obs_metrics.counter(
    "repro_queue_ops_total",
    "Job-queue operations, by backend and op.", ("backend", "op"))


class JobQueue:
    """Minimal async FIFO of job ids (see the module docstring)."""

    _closed = False

    #: Metrics label for the backend; subclasses override.
    backend_name = "unknown"

    def _count_op(self, op: str) -> None:
        """Count one queue operation against this backend's label."""
        _QUEUE_OPS.inc(backend=self.backend_name, op=op)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    async def put(self, job_id: str) -> None:
        raise NotImplementedError

    async def get(self) -> str:
        raise NotImplementedError

    async def close(self) -> None:
        """Release backend resources; put/get raise afterwards."""
        self._closed = True


class MemoryJobQueue(JobQueue):
    """In-process FIFO over :class:`asyncio.Queue` (the default)."""

    backend_name = "memory"

    def __init__(self) -> None:
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed_event = asyncio.Event()

    async def put(self, job_id: str) -> None:
        self._check_open()
        await self._queue.put(job_id)
        self._count_op("put")

    async def get(self) -> str:
        self._check_open()
        # Race the queue against closure so a get() that is already
        # awaiting when close() runs raises instead of hanging forever
        # (the conformance contract: a closed queue never strands a
        # waiter). An item that arrives first wins the race.
        getter = asyncio.ensure_future(self._queue.get())
        closer = asyncio.ensure_future(self._closed_event.wait())
        try:
            done, _ = await asyncio.wait(
                {getter, closer}, return_when=asyncio.FIRST_COMPLETED)
        except BaseException:
            getter.cancel()
            closer.cancel()
            raise
        closer.cancel()
        if getter in done:
            self._count_op("get")
            return getter.result()
        getter.cancel()
        try:
            value = await getter
        except asyncio.CancelledError:
            pass
        else:
            self._count_op("get")
            return value  # an item slipped in before the cancel landed
        self._check_open()
        raise RuntimeError(  # pragma: no cover - closure is the only
            "MemoryJobQueue.get interrupted")  # way the race is lost

    async def close(self) -> None:
        await super().close()
        self._closed_event.set()

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        return self._queue.qsize()


_QUEUE_BACKENDS: Dict[str, Callable[..., JobQueue]] = {
    "memory": MemoryJobQueue,
}


def _ensure_builtin_backends() -> None:
    """Register the backends that ship outside this module.

    The durable broker lives in :mod:`repro.distributed` (it has no
    scheduler dependencies, only this interface), so importing it here
    lazily keeps registration automatic without an import cycle.
    """
    import repro.distributed.broker  # noqa: F401 - registers "sqlite"


def register_queue_backend(name: str, factory: Callable[..., JobQueue],
                           overwrite: bool = False) -> None:
    """Register a queue factory under ``name``.

    The factory is lazily instantiated; keyword options given to
    :func:`make_queue` are forwarded to it, so backends with mandatory
    configuration (file paths, URLs) surface a clear ``TypeError`` when
    constructed without it.
    """
    if name in _QUEUE_BACKENDS and not overwrite:
        raise ValueError(f"queue backend {name!r} is already registered "
                         f"(pass overwrite=True to replace it)")
    _QUEUE_BACKENDS[name] = factory


def available_queue_backends() -> Tuple[str, ...]:
    """Registered queue-backend names."""
    _ensure_builtin_backends()
    return tuple(sorted(_QUEUE_BACKENDS))


def make_queue(name: str, **options) -> JobQueue:
    """Instantiate the queue backend registered under ``name``.

    ``options`` are backend-specific constructor keywords (e.g.
    ``path=...`` for the ``"sqlite"`` backend); the in-memory backend
    takes none.
    """
    _ensure_builtin_backends()
    if name not in _QUEUE_BACKENDS:
        raise ValueError(f"unknown queue backend {name!r}; registered: "
                         f"{', '.join(available_queue_backends())}")
    return _QUEUE_BACKENDS[name](**options)
