"""Async campaign scheduler: jobs -> shard work units -> process pool.

:class:`CampaignService` is the execution core behind ``repro serve``:
an :mod:`asyncio` front-end that accepts :class:`JobSpec` submissions,
orders them through a pluggable :class:`repro.service.queue.JobQueue`,
and executes them as :class:`repro.faults.batch.ShardTask` spans on a
``concurrent.futures`` pool — the *same* work units a sharded
in-process :class:`CampaignRunner` builds, which is what makes
service-executed results bit-identical to in-process runs (the
contract ``tests/service/`` pins).

Execution pipeline of one campaign-family job:

1. **Normalize + address.** The spec's ``seed`` is resolved to concrete
   root entropy; its canonical hash is the store key.
2. **Dedupe.** A completed record under the key is returned immediately
   (``cached``); a key currently in flight attaches the submission to
   the running job instead of executing twice.
3. **Shard.** Trials split into contiguous spans of at most
   ``shard_trials`` (:func:`repro.utils.rng.shard_bounds`); spans with
   a checkpoint in the store are reused, the rest run concurrently on
   the pool, each checkpointing on completion.
4. **Merge + persist.** Span tallies merge in ``lo`` order
   (:func:`repro.faults.batch.merge_results`); the final record is
   written atomically and the span checkpoints are dropped.

A killed service therefore loses only in-flight spans: on restart,
resubmitting the same spec (same entropy) reuses every checkpointed
span and executes just the gaps, and the merged result is bit-identical
to an uninterrupted run. Adaptive and logic-equivalence jobs execute as
single work units (their results are not span-decomposable) but get the
same normalize/dedupe/persist treatment.
"""

from __future__ import annotations

import asyncio
import math
import time
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import repro
from repro.faults.batch import PACKINGS, merge_results, run_shard_task
from repro.service.queue import JobQueue, available_queue_backends, \
    make_queue
from repro.service.spec import (
    JOB_KINDS,
    AdaptiveCampaignJobSpec,
    JobSpec,
    LogicEquivalenceJobSpec,
    injector_kinds,
    result_to_dict,
)
from repro.service.store import ResultStore
from repro.utils.backend import available_backends
from repro.utils.rng import shard_bounds

#: Default trials per service shard (work-unit granularity: small enough
#: to checkpoint often, large enough to amortize engine rebuild).
DEFAULT_SHARD_TRIALS = 512


def service_info() -> dict:
    """Static introspection: what a deployed service can execute.

    The payload behind ``repro info`` and the server's ``/info``
    endpoint — operators use it to see which array backends, tensor
    layouts, job kinds, and queue backends this build serves.
    """
    return {
        "version": repro.__version__,
        "backends": list(available_backends()),
        "packings": list(PACKINGS),
        "job_kinds": sorted(JOB_KINDS),
        "injector_kinds": list(injector_kinds()),
        "queue_backends": list(available_queue_backends()),
    }


def _run_adaptive_job(spec_dict: dict) -> dict:
    """Worker entry: one adaptive campaign as a single work unit."""
    spec = JobSpec.from_dict(spec_dict)
    result = spec.build_runner().run_adaptive(
        tolerance=spec.tolerance, confidence=spec.confidence,
        max_trials=spec.max_trials, initial_trials=spec.initial_trials,
        growth=spec.growth)
    return result_to_dict(result)


def _run_logic_job(spec_dict: dict) -> dict:
    """Worker entry: one logic-equivalence check as a single work unit."""
    from repro.circuits.registry import get_spec
    from repro.logic.verify import exhaustive_check, random_check

    spec = JobSpec.from_dict(spec_dict)
    bench = get_spec(spec.circuit)
    net = bench.build()
    inputs = len(net.input_names)
    if inputs <= spec.exhaustive_threshold:
        mode, trials = "exhaustive", 1 << inputs
        message = exhaustive_check(net, bench.golden, packing=spec.packing)
    else:
        mode, trials = "random", spec.trials
        message = random_check(net, bench.golden, trials=spec.trials,
                               seed=spec.entropy, packing=spec.packing)
    return {
        "type": "logic_equivalence_result",
        "circuit": spec.circuit,
        "equivalent": message is None,
        "mismatch": message,
        "mode": mode,
        "trials": trials,
        "packing": spec.packing,
    }


@dataclass
class JobRecord:
    """Live state of one submission (what ``repro status`` shows)."""

    id: str
    spec: JobSpec
    key: str
    state: str = "queued"  # queued | running | done | failed
    cached: bool = False
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    shards_total: int = 0
    shards_done: int = 0
    shards_cached: int = 0
    result: Optional[dict] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event,
                                      repr=False)

    def to_dict(self) -> dict:
        """JSON view (the server's job-status payload)."""
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "shards": {"total": self.shards_total,
                       "done": self.shards_done,
                       "cached": self.shards_cached},
            "result": self.result,
            "spec": self.spec.to_dict(),
        }


class CampaignService:
    """Submit-and-poll campaign execution (see the module docstring).

    Parameters
    ----------
    store:
        A :class:`ResultStore` or a path to create one at. The store is
        the durable half of the service: results, dedupe index, and
        crash checkpoints all live there.
    workers:
        Pool size for work units (processes by default).
    shard_trials:
        Maximum trials per shard span — the checkpoint granularity.
    queue:
        Registered queue-backend name (default ``"memory"``).
    max_concurrent_jobs:
        Scheduler tasks pulling from the queue; shards of concurrent
        jobs interleave on the shared pool.
    executor:
        ``"process"`` (default) or ``"thread"``. The thread pool exists
        for embedding and tests (closures and mocks don't cross process
        boundaries); numpy kernels release the GIL enough to keep it
        useful for small jobs.
    shard_runner:
        The work-unit function (default
        :func:`repro.faults.batch.run_shard_task`). Injection point for
        tests and for remote-execution adapters; must be picklable
        under ``executor="process"``.
    max_job_records:
        Cap on in-memory :class:`JobRecord` objects; beyond it the
        oldest *terminal* records are evicted (their results remain in
        the store — only the transient job id is forgotten).
    """

    def __init__(self, store: Union[ResultStore, str], workers: int = 2,
                 shard_trials: int = DEFAULT_SHARD_TRIALS,
                 queue: str = "memory", max_concurrent_jobs: int = 2,
                 executor: str = "process",
                 shard_runner: Optional[Callable] = None,
                 max_job_records: int = 10_000) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if shard_trials <= 0:
            raise ValueError(f"shard_trials must be positive, "
                             f"got {shard_trials}")
        if max_concurrent_jobs <= 0:
            raise ValueError(f"max_concurrent_jobs must be positive, "
                             f"got {max_concurrent_jobs}")
        if max_job_records <= 0:
            raise ValueError(f"max_job_records must be positive, "
                             f"got {max_job_records}")
        if executor not in ("process", "thread"):
            raise ValueError(f"executor must be 'process' or 'thread', "
                             f"got {executor!r}")
        self.store = store if isinstance(store, ResultStore) \
            else ResultStore(store)
        self.workers = workers
        self.shard_trials = shard_trials
        self.queue_name = queue
        self.max_concurrent_jobs = max_concurrent_jobs
        self.executor_kind = executor
        self.shard_runner = shard_runner or run_shard_task
        self.max_job_records = max_job_records
        self._jobs: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, str] = {}       # key -> leader job id
        self._followers: Dict[str, List[str]] = {}  # key -> follower ids
        self._seq = 0
        self._queue: Optional[JobQueue] = None
        self._pool: Optional[Executor] = None
        self._scheduler_tasks: List[asyncio.Task] = []
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "CampaignService":
        if self._started:
            return self
        self._queue = make_queue(self.queue_name)
        pool_cls = ProcessPoolExecutor if self.executor_kind == "process" \
            else ThreadPoolExecutor
        self._pool = pool_cls(max_workers=self.workers)
        self._scheduler_tasks = [
            asyncio.create_task(self._scheduler_loop())
            for _ in range(self.max_concurrent_jobs)]
        self._started = True
        return self

    async def close(self) -> None:
        for task in self._scheduler_tasks:
            task.cancel()
        for task in self._scheduler_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._scheduler_tasks = []
        if self._queue is not None:
            await self._queue.close()
            self._queue = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._started = False

    async def __aenter__(self) -> "CampaignService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Submission and queries
    # ------------------------------------------------------------------ #

    async def submit(self, spec: Union[JobSpec, dict]) -> JobRecord:
        """Validate, normalize, dedupe, and enqueue one job.

        Returns the live :class:`JobRecord`; a spec whose key is
        already in the store completes immediately from cache, and one
        whose key is currently executing attaches to that run.
        """
        if not self._started:
            raise RuntimeError("service is not started; use 'async with "
                               "CampaignService(...)' or await start()")
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        spec.validate()
        spec = spec.normalized()
        key = spec.cache_key()
        self._seq += 1
        job = JobRecord(id=f"j{self._seq:06d}-{key[:8]}", spec=spec, key=key)
        self._jobs[job.id] = job
        self._evict_settled_records()

        cached = await asyncio.to_thread(self.store.get, key)
        if cached is not None:
            job.state = "done"
            job.cached = True
            job.result = cached["result"]
            job.shards_total = job.shards_cached = \
                cached.get("shards", {}).get("total", 0)
            job.shards_done = job.shards_total
            job.finished_at = time.time()
            job.done_event.set()
            return job
        if key in self._inflight:
            self._followers.setdefault(key, []).append(job.id)
            return job
        self._inflight[key] = job.id
        await self._queue.put(job.id)
        return job

    def _evict_settled_records(self) -> None:
        """Cap in-memory job records; results stay in the store.

        Long-lived services accumulate one :class:`JobRecord` per
        submission (cache hits included). Once the count exceeds
        ``max_job_records``, the oldest *terminal* records are dropped
        — their durable state is the content-addressed store record, so
        only their transient ids become unknown to ``status``.
        """
        excess = len(self._jobs) - self.max_job_records
        if excess <= 0:
            return
        for job_id in [j.id for j in self._jobs.values()
                       if j.state in ("done", "failed")][:excess]:
            del self._jobs[job_id]

    def status(self, job_id: str) -> JobRecord:
        """The live record of ``job_id`` (KeyError if unknown)."""
        return self._jobs[job_id]

    def jobs(self) -> List[JobRecord]:
        """Every record this service instance has accepted."""
        return [self._jobs[k] for k in sorted(self._jobs)]

    async def wait(self, job_id: str,
                   timeout: Optional[float] = None) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state."""
        job = self._jobs[job_id]
        await asyncio.wait_for(job.done_event.wait(), timeout)
        return job

    def info(self) -> dict:
        """Live service introspection (static info + instance state)."""
        out = service_info()
        out.update({
            "workers": self.workers,
            "shard_trials": self.shard_trials,
            "executor": self.executor_kind,
            "queue": self.queue_name,
            "jobs": {
                state: sum(1 for j in self._jobs.values()
                           if j.state == state)
                for state in ("queued", "running", "done", "failed")},
            "store": str(self.store.root),
            "stored_results": len(self.store.keys()),
        })
        return out

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    async def _scheduler_loop(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self._jobs.get(job_id)
            if job is None:
                continue
            try:
                await self._execute(job)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the loop must survive
                # _execute marks the job failed itself; this guard only
                # keeps a scheduler task alive if something escapes it.
                pass

    async def _execute(self, job: JobRecord) -> None:
        job.state = "running"
        job.started_at = time.time()
        try:
            if isinstance(job.spec, AdaptiveCampaignJobSpec):
                result = await self._run_single_unit(job, _run_adaptive_job)
            elif isinstance(job.spec, LogicEquivalenceJobSpec):
                result = await self._run_single_unit(job, _run_logic_job)
            else:
                result = await self._run_sharded(job)
            record = {
                "key": job.key,
                "kind": job.spec.kind,
                "entropy": job.spec.entropy,
                "spec": job.spec.to_dict(),
                "result": result,
                "shards": {"total": job.shards_total,
                           "cached": job.shards_cached},
                "elapsed_s": time.time() - job.started_at,
            }
            # Persisting is part of the job: a store failure (disk
            # full, permissions) must fail the job, not the scheduler.
            await asyncio.to_thread(self.store.put, job.key, record)
            await asyncio.to_thread(self.store.clear_shards, job.key)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            job.result = result
            job.state = "done"
        finally:
            job.finished_at = time.time()
            job.done_event.set()
            self._inflight.pop(job.key, None)
            self._resolve_followers(job)

    def _resolve_followers(self, leader: JobRecord) -> None:
        """Complete every submission that attached to ``leader``'s run."""
        for follower_id in self._followers.pop(leader.key, []):
            follower = self._jobs[follower_id]
            follower.state = leader.state
            follower.error = leader.error
            follower.result = leader.result
            follower.cached = leader.state == "done"
            follower.shards_total = leader.shards_total
            if leader.state == "done":
                # The follower got the whole span set without executing.
                follower.shards_done = leader.shards_total
                follower.shards_cached = leader.shards_total
            else:
                follower.shards_done = leader.shards_done
                follower.shards_cached = leader.shards_cached
            follower.finished_at = time.time()
            follower.done_event.set()

    async def _run_single_unit(self, job: JobRecord,
                               fn: Callable[[dict], dict]) -> dict:
        job.shards_total = 1
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(self._pool, fn,
                                            job.spec.to_dict())
        job.shards_done = 1
        return result

    async def _run_sharded(self, job: JobRecord) -> dict:
        """Campaign-family execution: checkpointable shard spans."""
        spec = job.spec
        runner = spec.build_runner()
        shards = max(1, math.ceil(spec.trials / self.shard_trials))
        bounds = shard_bounds(spec.trials, shards)
        # Store I/O happens on worker threads (asyncio.to_thread), never
        # on the event loop: a slow disk must not stall the HTTP surface
        # or the scheduling of other jobs.
        checkpoints = await asyncio.to_thread(self.store.shard_spans,
                                              job.key)
        job.shards_total = len(bounds)
        results = {}
        loop = asyncio.get_running_loop()

        async def run_span(lo: int, hi: int) -> None:
            cached = checkpoints.get((lo, hi))
            if cached is not None:
                results[(lo, hi)] = cached
                job.shards_cached += 1
                job.shards_done += 1
                return
            tallies = await loop.run_in_executor(
                self._pool, self.shard_runner, runner.shard_task(lo, hi))
            await asyncio.to_thread(self.store.put_shard, job.key, lo, hi,
                                    tallies)
            results[(lo, hi)] = tallies
            job.shards_done += 1

        outcomes = await asyncio.gather(
            *(run_span(lo, hi) for lo, hi in bounds),
            return_exceptions=True)
        errors = [o for o in outcomes if isinstance(o, BaseException)]
        if errors:
            # Completed spans stay checkpointed in the store — the
            # resume payoff — only the failure is surfaced.
            raise errors[0]
        merged = merge_results([results[span] for span in bounds])
        return result_to_dict(merged)
