"""Async campaign scheduler: jobs -> shard work units -> process pool.

:class:`CampaignService` is the execution core behind ``repro serve``:
an :mod:`asyncio` front-end that accepts :class:`JobSpec` submissions,
orders them through a pluggable :class:`repro.service.queue.JobQueue`,
and executes them as :class:`repro.faults.batch.ShardTask` spans on a
``concurrent.futures`` pool — the *same* work units a sharded
in-process :class:`CampaignRunner` builds, which is what makes
service-executed results bit-identical to in-process runs (the
contract ``tests/service/`` pins).

Execution pipeline of one campaign-family job:

1. **Normalize + address.** The spec's ``seed`` is resolved to concrete
   root entropy; its canonical hash is the store key.
2. **Dedupe.** A completed record under the key is returned immediately
   (``cached``); a key currently in flight attaches the submission to
   the running job instead of executing twice.
3. **Shard.** Trials split into contiguous spans of at most
   ``shard_trials`` (:func:`repro.utils.rng.shard_bounds`); spans with
   a checkpoint in the store are reused, the rest run concurrently on
   the pool, each checkpointing on completion.
4. **Merge + persist.** Span tallies merge in ``lo`` order
   (:func:`repro.faults.batch.merge_results`); the final record is
   written atomically and the span checkpoints are dropped.

A killed service therefore loses only in-flight spans: on restart,
resubmitting the same spec (same entropy) reuses every checkpointed
span and executes just the gaps, and the merged result is bit-identical
to an uninterrupted run. Adaptive and logic-equivalence jobs execute as
single work units (their results are not span-decomposable) but get the
same normalize/dedupe/persist treatment.

Job records themselves persist in the store's ``jobs/`` namespace on
every state transition, so a restarted service still answers
``status`` for pre-restart job ids and re-enqueues submissions that
never settled (their checkpointed spans are reused, so the replay only
executes the gaps).

Two **execution modes** share this pipeline (``execution=`` knob):

``local``
    Spans run on this process's own ``concurrent.futures`` pool — the
    PR-4 behaviour, still the default.
``distributed``
    Spans are *published* to a durable lease broker
    (:class:`repro.distributed.broker.SqliteBroker`) as hash-stamped
    wire payloads (:mod:`repro.distributed.wire`) instead of running
    locally; any number of ``repro worker`` processes — same host via
    the shared store path, or other hosts via the HTTP unit endpoints
    — claim, execute, and write tallies back through the *same* atomic
    shard-checkpoint path. Completion is driven by the store: the
    dispatcher polls for checkpoints, so worker identity is invisible
    to the result and the bit-for-bit contract is unchanged. Adaptive
    and logic jobs are not span-decomposable and always run locally.
"""

from __future__ import annotations

import asyncio
import math
import re
import time
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import repro
from repro.core.registry import code_names
from repro.faults.batch import PACKINGS, merge_results, run_shard_task, \
    run_shard_task_profiled
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf
from repro.obs.logs import get_logger
from repro.obs.trace import Tracer, merge_phases
from repro.service.queue import JobQueue, available_queue_backends, \
    make_queue
from repro.service.spec import (
    JOB_KINDS,
    AdaptiveCampaignJobSpec,
    JobSpec,
    LogicEquivalenceJobSpec,
    injector_kinds,
    result_to_dict,
)
from repro.service.store import ResultStore
from repro.utils.backend import available_backends
from repro.utils.retry import RetryPolicy
from repro.utils.kernels import available_kernels, native_available
from repro.utils.rng import shard_bounds

#: Default trials per service shard (work-unit granularity: small enough
#: to checkpoint often, large enough to amortize engine rebuild).
DEFAULT_SHARD_TRIALS = 512

#: Where campaign spans execute: this process's pool, or a worker fleet.
EXECUTION_MODES = ("local", "distributed")

#: Default broker filename inside the store root (shared-store
#: topology: workers reach the same file through the store path).
BROKER_FILENAME = "broker.sqlite3"

_JOB_ID = re.compile(r"^j(\d+)-[0-9a-f]+$")

_LOG = get_logger("service.scheduler")

_UNIT_ID = re.compile(r":(\d+)-(\d+)$")

_JOBS_SUBMITTED = obs_metrics.counter(
    "repro_jobs_submitted_total",
    "Jobs accepted by the scheduler, by spec kind.", ("kind",))
_JOBS_SETTLED = obs_metrics.counter(
    "repro_jobs_settled_total",
    "Jobs reaching a terminal state, by outcome "
    "(done/failed/cached/follower).", ("outcome",))
_JOB_SECONDS = obs_metrics.histogram(
    "repro_job_seconds",
    "Wall seconds from execution start to job settlement.")
_UNIT_PUBLISHES = obs_metrics.counter(
    "repro_dispatch_unit_publishes_total",
    "Work units published to the broker by the dispatcher.")
_UNIT_REQUEUES = obs_metrics.counter(
    "repro_dispatch_unit_requeues_total",
    "Acked units re-enqueued because their checkpoint never "
    "materialized.")
_DISPATCH_POLLS = obs_metrics.counter(
    "repro_dispatch_polls_total",
    "Store polls while awaiting worker-written checkpoints.")
# Point-in-time gauges, refreshed from shared state at every
# /metrics scrape (the registry itself is process-local).
_JOBS_GAUGE = obs_metrics.gauge(
    "repro_jobs", "Known job records, by state.", ("state",))
_BROKER_GAUGE = obs_metrics.gauge(
    "repro_broker_units", "Broker work units, by state.", ("state",))
_QUARANTINE_GAUGE = obs_metrics.gauge(
    "repro_store_quarantined_files",
    "Quarantined store files, by namespace.", ("namespace",))
_UPTIME_GAUGE = obs_metrics.gauge(
    "repro_uptime_seconds", "Seconds since service construction.")


def _unit_span(unit_id: str) -> Optional[tuple]:
    """The ``(lo, hi)`` a dispatcher-minted unit id encodes, or None."""
    match = _UNIT_ID.search(unit_id)
    return None if match is None else (int(match.group(1)),
                                       int(match.group(2)))


class UnitFailedError(RuntimeError):
    """A published work unit failed terminally on the worker fleet.

    Carries the structured ``failure`` dict that lands on the job
    record verbatim, so operators (and the chaos matrix) can
    machine-read *which* unit poisoned the job and why, instead of
    parsing a prose message.
    """

    def __init__(self, unit_id: str, error: Optional[str]) -> None:
        super().__init__(
            f"work unit {unit_id} failed terminally on the worker "
            f"fleet: {error}")
        self.failure = {"kind": "unit_failed", "unit_id": unit_id,
                        "error": error}


def service_info() -> dict:
    """Static introspection: what a deployed service can execute.

    The payload behind ``repro info`` and the server's ``/info``
    endpoint — operators use it to see which array backends, tensor
    layouts, block codes, kernel tiers, job kinds, and queue backends
    this build serves. ``native_kernels_available`` reports whether the
    compiled extension actually imported here (registration alone does
    not imply it built), so fleet operators can tell at a glance which
    hosts run the compiled hot loops.
    """
    return {
        "version": repro.__version__,
        "backends": list(available_backends()),
        "packings": list(PACKINGS),
        "codes": list(code_names()),
        "kernel_tiers": list(available_kernels()),
        "native_kernels_available": native_available(),
        "job_kinds": sorted(JOB_KINDS),
        "injector_kinds": list(injector_kinds()),
        "queue_backends": list(available_queue_backends()),
        "execution_modes": list(EXECUTION_MODES),
    }


def _run_adaptive_job(spec_dict: dict) -> dict:
    """Worker entry: one adaptive campaign as a single work unit."""
    spec = JobSpec.from_dict(spec_dict)
    result = spec.build_runner().run_adaptive(
        tolerance=spec.tolerance, confidence=spec.confidence,
        max_trials=spec.max_trials, initial_trials=spec.initial_trials,
        growth=spec.growth)
    return result_to_dict(result)


def _run_logic_job(spec_dict: dict) -> dict:
    """Worker entry: one logic-equivalence check as a single work unit."""
    from repro.circuits.registry import get_spec
    from repro.logic.verify import exhaustive_check, random_check

    spec = JobSpec.from_dict(spec_dict)
    bench = get_spec(spec.circuit)
    net = bench.build()
    inputs = len(net.input_names)
    if inputs <= spec.exhaustive_threshold:
        mode, trials = "exhaustive", 1 << inputs
        message = exhaustive_check(net, bench.golden, packing=spec.packing)
    else:
        mode, trials = "random", spec.trials
        message = random_check(net, bench.golden, trials=spec.trials,
                               seed=spec.entropy, packing=spec.packing)
    return {
        "type": "logic_equivalence_result",
        "circuit": spec.circuit,
        "equivalent": message is None,
        "mismatch": message,
        "mode": mode,
        "trials": trials,
        "packing": spec.packing,
    }


@dataclass
class JobRecord:
    """Live state of one submission (what ``repro status`` shows)."""

    id: str
    spec: JobSpec
    key: str
    state: str = "queued"  # queued | running | done | failed
    cached: bool = False
    error: Optional[str] = None
    #: Structured terminal-failure reason (``kind`` plus kind-specific
    #: detail), set alongside the prose ``error`` when a job fails.
    failure: Optional[dict] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    shards_total: int = 0
    shards_done: int = 0
    shards_cached: int = 0
    result: Optional[dict] = None
    #: Aggregated ``{phase: ns}`` execution profile summed over the
    #: job's shard checkpoints (observability metadata; kept outside
    #: ``result`` so the result schema is untouched).
    phases: Optional[dict] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event,
                                      repr=False)

    def to_dict(self) -> dict:
        """JSON view (the server's job-status payload; also the
        persisted ``jobs/`` form — :meth:`from_dict` is the inverse)."""
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "error": self.error,
            "failure": self.failure,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "shards": {"total": self.shards_total,
                       "done": self.shards_done,
                       "cached": self.shards_cached},
            "result": self.result,
            "phases": self.phases,
            "spec": self.spec.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "JobRecord":
        """Rebuild a record from :meth:`to_dict` output (restart path).

        The ``done_event`` is reconstructed — set for terminal states —
        so waiters behave exactly as for a live record.
        """
        shards = data.get("shards", {})
        job = JobRecord(
            id=data["id"], spec=JobSpec.from_dict(data["spec"]),
            key=data["key"], state=data.get("state", "queued"),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
            failure=data.get("failure"),
            submitted_at=data.get("submitted_at", 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            shards_total=shards.get("total", 0),
            shards_done=shards.get("done", 0),
            shards_cached=shards.get("cached", 0),
            result=data.get("result"),
            phases=data.get("phases"))
        if job.state in ("done", "failed"):
            job.done_event.set()
        return job


class CampaignService:
    """Submit-and-poll campaign execution (see the module docstring).

    Parameters
    ----------
    store:
        A :class:`ResultStore` or a path to create one at. The store is
        the durable half of the service: results, dedupe index, and
        crash checkpoints all live there.
    workers:
        Pool size for work units (processes by default).
    shard_trials:
        Maximum trials per shard span — the checkpoint granularity.
    queue:
        Registered queue-backend name (default ``"memory"``), or an
        already-built :class:`JobQueue` instance — the injection point
        for wrapped/instrumented queues (the chaos harness hands in a
        fault-wrapped queue this way). An instance is owned by the
        service once handed over: ``close()`` closes it.
    max_concurrent_jobs:
        Scheduler tasks pulling from the queue; shards of concurrent
        jobs interleave on the shared pool.
    executor:
        ``"process"`` (default) or ``"thread"``. The thread pool exists
        for embedding and tests (closures and mocks don't cross process
        boundaries); numpy kernels release the GIL enough to keep it
        useful for small jobs.
    shard_runner:
        The work-unit function (default
        :func:`repro.faults.batch.run_shard_task`). Injection point for
        tests and for remote-execution adapters; must be picklable
        under ``executor="process"``. Local execution only.
    max_job_records:
        Cap on in-memory :class:`JobRecord` objects; beyond it the
        oldest *terminal* records are evicted (their results remain in
        the store — only the job id is forgotten, in memory and in the
        persisted ``jobs/`` namespace alike).
    execution:
        ``"local"`` (default; spans on this process's pool) or
        ``"distributed"`` (spans published to the lease broker for
        ``repro worker`` processes — see the module docstring).
    broker_path:
        SQLite file of the work-unit broker (distributed mode).
        Defaults to ``<store root>/broker.sqlite3``, which is what
        shared-store workers expect.
    broker_options:
        Extra keyword options for the
        :class:`~repro.distributed.broker.SqliteBroker` constructor
        (``max_attempts``, ``breaker_threshold``,
        ``breaker_cooldown_s``, ...) — how deployments and tests tune
        retry budgets and circuit-breaker pacing.
    queue_options:
        Extra keyword options for the queue backend (``path=...`` for
        ``"sqlite"``; defaults to the broker path).
    dispatch_poll_s:
        Distributed mode: seconds between store polls while waiting
        for worker-written checkpoints.
    """

    def __init__(self, store: Union[ResultStore, str], workers: int = 2,
                 shard_trials: int = DEFAULT_SHARD_TRIALS,
                 queue: Union[str, JobQueue] = "memory",
                 max_concurrent_jobs: int = 2,
                 executor: str = "process",
                 shard_runner: Optional[Callable] = None,
                 max_job_records: int = 10_000,
                 execution: str = "local",
                 broker_path: Optional[str] = None,
                 broker_options: Optional[dict] = None,
                 queue_options: Optional[dict] = None,
                 dispatch_poll_s: float = 0.1) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if shard_trials <= 0:
            raise ValueError(f"shard_trials must be positive, "
                             f"got {shard_trials}")
        if max_concurrent_jobs <= 0:
            raise ValueError(f"max_concurrent_jobs must be positive, "
                             f"got {max_concurrent_jobs}")
        if max_job_records <= 0:
            raise ValueError(f"max_job_records must be positive, "
                             f"got {max_job_records}")
        if executor not in ("process", "thread"):
            raise ValueError(f"executor must be 'process' or 'thread', "
                             f"got {executor!r}")
        if execution not in EXECUTION_MODES:
            raise ValueError(f"execution must be one of {EXECUTION_MODES},"
                             f" got {execution!r}")
        if dispatch_poll_s <= 0:
            raise ValueError(f"dispatch_poll_s must be positive, "
                             f"got {dispatch_poll_s}")
        self.store = store if isinstance(store, ResultStore) \
            else ResultStore(store)
        self.workers = workers
        self.shard_trials = shard_trials
        if isinstance(queue, JobQueue):
            self._queue_instance: Optional[JobQueue] = queue
            self.queue_name = type(queue).__name__
        else:
            self._queue_instance = None
            self.queue_name = queue
        self.queue_options = dict(queue_options or {})
        self.max_concurrent_jobs = max_concurrent_jobs
        self.executor_kind = executor
        self.shard_runner = shard_runner or run_shard_task
        self.max_job_records = max_job_records
        self.execution = execution
        self.broker_path = str(broker_path) if broker_path is not None \
            else str(self.store.root / BROKER_FILENAME)
        self.broker_options = dict(broker_options or {})
        self.dispatch_poll_s = dispatch_poll_s
        self.broker = None  # SqliteBroker, created in start()
        self._started_at = time.time()
        # Scheduler-side trace events append straight to the store's
        # events/ namespace; worker events arrive through the work
        # sources and land in the same per-trace JSONL file.
        self.tracer = Tracer(self.store.append_events, proc="service")
        self._jobs: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, str] = {}       # key -> leader job id
        self._followers: Dict[str, List[str]] = {}  # key -> follower ids
        self._seq = 0
        self._queue: Optional[JobQueue] = None
        self._pool: Optional[Executor] = None
        self._scheduler_tasks: List[asyncio.Task] = []
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "CampaignService":
        if self._started:
            return self
        if self._queue_instance is not None:
            self._queue = self._queue_instance
        else:
            options = dict(self.queue_options)
            if self.queue_name == "sqlite":
                # The durable queue shares the broker file by default
                # so a distributed deployment is one path, not two.
                options.setdefault("path", self.broker_path)
            self._queue = make_queue(self.queue_name, **options)
        if self.execution == "distributed":
            from repro.distributed.broker import SqliteBroker
            self.broker = await asyncio.to_thread(
                lambda: SqliteBroker(self.broker_path,
                                     **self.broker_options))
        pool_cls = ProcessPoolExecutor if self.executor_kind == "process" \
            else ThreadPoolExecutor
        self._pool = pool_cls(max_workers=self.workers)
        self._scheduler_tasks = [
            asyncio.create_task(self._scheduler_loop())
            for _ in range(self.max_concurrent_jobs)]
        self._started = True
        await self._recover_persisted_jobs()
        return self

    async def close(self) -> None:
        for task in self._scheduler_tasks:
            task.cancel()
        for task in self._scheduler_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._scheduler_tasks = []
        if self._queue is not None:
            await self._queue.close()
            self._queue = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._started = False

    async def __aenter__(self) -> "CampaignService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Submission and queries
    # ------------------------------------------------------------------ #

    async def submit(self, spec: Union[JobSpec, dict]) -> JobRecord:
        """Validate, normalize, dedupe, and enqueue one job.

        Returns the live :class:`JobRecord`; a spec whose key is
        already in the store completes immediately from cache, and one
        whose key is currently executing attaches to that run.
        """
        if not self._started:
            raise RuntimeError("service is not started; use 'async with "
                               "CampaignService(...)' or await start()")
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        spec.validate()
        spec = spec.normalized()
        key = spec.cache_key()
        self._seq += 1
        job = JobRecord(id=f"j{self._seq:06d}-{key[:8]}", spec=spec, key=key)
        self._jobs[job.id] = job
        self._evict_settled_records()
        _JOBS_SUBMITTED.inc(kind=spec.kind)
        # The trace id IS the job id; this submit event is the root of
        # the timeline `repro trace <job-id>` reconstructs.
        self.tracer.event(job.id, "job.submit",
                          attrs={"kind": spec.kind, "key": key})

        cached = await asyncio.to_thread(self.store.get, key)
        if cached is not None:
            job.state = "done"
            job.cached = True
            job.result = cached["result"]
            job.phases = cached.get("phases")
            job.shards_total = job.shards_cached = \
                cached.get("shards", {}).get("total", 0)
            job.shards_done = job.shards_total
            job.finished_at = time.time()
            job.done_event.set()
            _JOBS_SETTLED.inc(outcome="cached")
            self.tracer.event(job.id, "job.cache_hit",
                              attrs={"key": key})
            await asyncio.to_thread(self._persist_job, job)
            return job
        if key in self._inflight:
            self.tracer.event(job.id, "job.follow",
                              attrs={"leader": self._inflight[key]})
            self._followers.setdefault(key, []).append(job.id)
            await asyncio.to_thread(self._persist_job, job)
            return job
        self._inflight[key] = job.id
        await asyncio.to_thread(self._persist_job, job)
        await self._queue.put(job.id)
        return job

    def _persist_job(self, job: JobRecord) -> None:
        """Write ``job`` to the store's ``jobs/`` namespace.

        Called (off the event loop) on every state transition, so a
        restarted service still knows every accepted id — the durable
        half of :meth:`_recover_persisted_jobs`.
        """
        self.store.put_job(job.id, job.to_dict())

    async def _recover_persisted_jobs(self) -> None:
        """Reload persisted job records after a restart.

        Terminal records come back queryable under their original ids;
        records the previous process never settled (``queued`` or
        ``running`` at kill time) are reset to ``queued`` and
        re-enqueued — their checkpointed spans make the replay cheap,
        and a completed record under the same key short-circuits in
        :meth:`_execute`. Duplicate keys re-attach as followers, same
        as live submissions.
        """
        records = await asyncio.to_thread(
            lambda: list(self.store.iter_jobs()))
        for data in records:
            try:
                job = JobRecord.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue  # torn/foreign file: ignore, never crash boot
            if job.id in self._jobs:
                continue
            match = _JOB_ID.match(job.id)
            if match:
                self._seq = max(self._seq, int(match.group(1)))
            self._jobs[job.id] = job
            if job.state in ("done", "failed"):
                continue
            job.state = "queued"
            job.started_at = None
            job.shards_done = job.shards_cached = 0
            if job.key in self._inflight:
                self._followers.setdefault(job.key, []).append(job.id)
                continue
            self._inflight[job.key] = job.id
            await self._queue.put(job.id)
        self._evict_settled_records()

    def _evict_settled_records(self) -> None:
        """Cap job records; results stay in the store.

        Long-lived services accumulate one :class:`JobRecord` per
        submission (cache hits included). Once the count exceeds
        ``max_job_records``, the oldest *terminal* records are dropped
        from memory and from the persisted ``jobs/`` namespace — their
        durable state is the content-addressed store record, so only
        the job id becomes unknown to ``status``.
        """
        excess = len(self._jobs) - self.max_job_records
        if excess <= 0:
            return
        for job_id in [j.id for j in self._jobs.values()
                       if j.state in ("done", "failed")][:excess]:
            del self._jobs[job_id]
            self.store.delete_job(job_id)

    def status(self, job_id: str) -> JobRecord:
        """The live record of ``job_id`` (KeyError if unknown)."""
        return self._jobs[job_id]

    def jobs(self) -> List[JobRecord]:
        """Every record this service instance has accepted."""
        return [self._jobs[k] for k in sorted(self._jobs)]

    async def wait(self, job_id: str,
                   timeout: Optional[float] = None) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state."""
        job = self._jobs[job_id]
        await asyncio.wait_for(job.done_event.wait(), timeout)
        return job

    def info(self) -> dict:
        """Live service introspection (static info + instance state)."""
        out = service_info()
        out.update({
            "workers": self.workers,
            "shard_trials": self.shard_trials,
            "executor": self.executor_kind,
            "queue": self.queue_name,
            "execution": self.execution,
            "jobs": {
                state: sum(1 for j in self._jobs.values()
                           if j.state == state)
                for state in ("queued", "running", "done", "failed")},
            "store": str(self.store.root),
            "stored_results": len(self.store.keys()),
            "persisted_jobs": len(self.store.job_ids()),
        })
        if self.execution == "distributed":
            out["broker"] = self.broker_path
            if self.broker is not None:
                out["work_units"] = self.broker.counts()
        return out

    def health(self) -> dict:
        """Operational health: the ``/health`` payload.

        Where :meth:`info` answers *what can this service run*, this
        answers *how is it doing right now*: per-state job counts,
        broker queue depth and in-flight leases, per-worker circuit
        breakers, and how much the store has quarantined. Cheap enough
        to poll from a dashboard.
        """
        jobs = {state: sum(1 for j in self._jobs.values()
                           if j.state == state)
                for state in ("queued", "running", "done", "failed")}
        out = {
            "ok": True,
            "execution": self.execution,
            "uptime_s": time.time() - self._started_at,
            "jobs": jobs,
            "store": {"quarantine": self.store.quarantine_counts()},
            # Counters only, summed across labels: the compact pulse a
            # dashboard can diff between polls without scraping the
            # full Prometheus text.
            "metrics_snapshot": obs_metrics.REGISTRY.counter_totals(),
        }
        if self.execution == "distributed" and self.broker is not None:
            counts = self.broker.counts()
            health = self.broker.worker_health()
            out["broker"] = {
                "depth": counts.get("queued", 0),
                "inflight": counts.get("leased", 0),
                "done": counts.get("done", 0),
                "failed": counts.get("failed", 0),
                "workers": health,
                "open_breakers": [entry["owner"] for entry in health
                                  if entry["open"]],
            }
        return out

    def metrics_text(self) -> str:
        """Prometheus text exposition: the ``GET /metrics`` payload.

        The registry is process-local, so cumulative counters cover
        only this process; point-in-time gauges (job states, broker
        unit states, store quarantine) are refreshed from shared state
        at every scrape so the exposition reflects the fleet's durable
        reality, not just this process's activity.
        """
        _UPTIME_GAUGE.set(time.time() - self._started_at)
        for state in ("queued", "running", "done", "failed"):
            _JOBS_GAUGE.set(
                sum(1 for j in self._jobs.values() if j.state == state),
                state=state)
        for namespace, count in self.store.quarantine_counts().items():
            _QUARANTINE_GAUGE.set(count, namespace=namespace)
        if self.broker is not None:
            counts = self.broker.counts()
            for state in ("queued", "leased", "done", "failed"):
                _BROKER_GAUGE.set(counts.get(state, 0), state=state)
        return obs_metrics.render_prometheus()

    def perf_report(self, threshold: float = 0.5) -> dict:
        """Per-phase drift over the store's perf ledger: the
        ``GET /perf`` payload (see :func:`repro.obs.perf.jobs_report`).
        Settled non-cached jobs append their normalised phase profile;
        this compares each job shape's newest run against its history.
        """
        return obs_perf.jobs_report(self.store.read_perf(),
                                    threshold=threshold)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    async def _scheduler_loop(self) -> None:
        backoff = RetryPolicy(initial_s=0.05, cap_s=1.0)
        queue_errors = 0
        while True:
            try:
                job_id = await self._queue.get()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - queue fault isolation
                # A flaky queue backend (transient sqlite error, chaos
                # injection) must not kill a scheduler task — that
                # would silently shrink concurrency until nothing
                # drains the queue at all. Closure is the one
                # legitimate end: get() raises after close(), which is
                # how shutdown reads here.
                queue = self._queue
                if queue is None or queue.closed:
                    return
                queue_errors += 1
                await backoff.sleep_async(queue_errors - 1)
                continue
            queue_errors = 0
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                # Unknown (evicted) or already picked up — a durable
                # queue can replay ids across restarts; the state guard
                # makes such duplicates harmless.
                continue
            try:
                await self._execute(job)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the loop must survive
                # _execute marks the job failed itself; this guard only
                # keeps a scheduler task alive if something escapes it.
                pass

    async def _execute(self, job: JobRecord) -> None:
        job.state = "running"
        job.started_at = time.time()
        await asyncio.to_thread(self._persist_job, job)
        try:
            # The execute span is the parent of everything downstream:
            # published units carry (job.id, span id) on the wire, so
            # worker spans in other processes attach underneath it.
            with self.tracer.span(job.id, "job.execute",
                                  attrs={"kind": job.spec.kind,
                                         "key": job.key,
                                         "execution": self.execution}
                                  ) as span:
                cached = await asyncio.to_thread(self.store.get, job.key)
                if cached is not None:
                    # Replayed after a restart (or raced by another
                    # service on the shared store) and the work already
                    # completed: serve the record, execute nothing.
                    job.cached = True
                    job.shards_total = \
                        cached.get("shards", {}).get("total", 0)
                    job.shards_cached = job.shards_total
                    job.shards_done = job.shards_total
                    job.phases = cached.get("phases")
                    result = cached["result"]
                    span.set("cached", True)
                else:
                    if isinstance(job.spec, AdaptiveCampaignJobSpec):
                        result = await self._run_single_unit(
                            job, _run_adaptive_job)
                    elif isinstance(job.spec, LogicEquivalenceJobSpec):
                        result = await self._run_single_unit(
                            job, _run_logic_job)
                    elif self.execution == "distributed":
                        result = await self._run_sharded_distributed(
                            job, parent_span=span.span_id)
                    else:
                        result = await self._run_sharded(job)
                    # Aggregate the per-phase execution profile the
                    # shard checkpoints carry (local and distributed
                    # runs alike) before the checkpoints are cleared.
                    phase_map = await asyncio.to_thread(
                        self.store.shard_phases, job.key)
                    job.phases = merge_phases(phase_map.values()) or None
                    if job.phases:
                        span.set("phases", job.phases)
                    record = {
                        "key": job.key,
                        "kind": job.spec.kind,
                        "entropy": job.spec.entropy,
                        "spec": job.spec.to_dict(),
                        "result": result,
                        "phases": job.phases,
                        "shards": {"total": job.shards_total,
                                   "cached": job.shards_cached},
                        "elapsed_s": time.time() - job.started_at,
                    }
                    # Persisting is part of the job: a store failure
                    # (disk full, permissions) must fail the job, not
                    # the scheduler.
                    await asyncio.to_thread(self.store.put, job.key,
                                            record)
                    await asyncio.to_thread(self.store.clear_shards,
                                            job.key)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.failure = getattr(exc, "failure", None) or {
                "kind": "exception", "type": type(exc).__name__,
                "message": str(exc)}
        else:
            job.result = result
            job.state = "done"
        finally:
            job.finished_at = time.time()
            _JOBS_SETTLED.inc(outcome=job.state)
            if job.started_at is not None:
                _JOB_SECONDS.observe(job.finished_at - job.started_at)
            settle_attrs = {"state": job.state,
                            "shards_done": job.shards_done,
                            "shards_cached": job.shards_cached}
            if job.error:
                settle_attrs["error"] = job.error
            self.tracer.event(
                job.id, "job.settle",
                status="ok" if job.state == "done" else "error",
                attrs=settle_attrs)
            if job.state == "failed":
                _LOG.error("job failed", extra={
                    "event": "job.settle", "job_id": job.id,
                    "key": job.key, "error": job.error})
            else:
                _LOG.info("job settled", extra={
                    "event": "job.settle", "job_id": job.id,
                    "state": job.state, "cached": job.cached})
            # Feed the settled phase profile into the perf ledger so
            # `repro perf jobs` can flag drift across campaigns.
            # Telemetry: a ledger failure never touches the job.
            if job.state == "done" and not job.cached and job.phases:
                try:
                    self.store.append_perf(obs_perf.job_phases_record(
                        kind=job.spec.kind, key=job.key,
                        phases=job.phases,
                        trials=getattr(job.spec, "trials", None),
                        params=job.spec.to_dict(),
                        kernel_tier=getattr(job.spec, "kernels", None)
                        or "auto",
                        backend=getattr(job.spec, "backend", None),
                        git_rev=obs_perf.cached_git_revision()))
                except Exception:  # noqa: BLE001 - telemetry only
                    pass
            self._inflight.pop(job.key, None)
            followers = self._resolve_followers(job)
            if followers:
                _JOBS_SETTLED.inc(len(followers), outcome="follower")
            # Persist the terminal state synchronously (a tiny JSON
            # write) and *before* waking waiters: an awaited persist
            # here could be cancelled by a service closing right after
            # wait() returns, leaving "running" as the last durable
            # state — which a restart would wrongly re-enqueue.
            for settled in [job] + followers:
                try:
                    self._persist_job(settled)
                except OSError:
                    pass  # the in-memory record still settles waiters
            job.done_event.set()
            for follower in followers:
                follower.done_event.set()

    def _resolve_followers(self, leader: JobRecord) -> List[JobRecord]:
        """Copy ``leader``'s outcome onto every attached submission.

        Returns the settled followers; the caller persists them and
        sets their ``done_event`` (after persistence, so a durable
        "running" can never outlive a settled run)."""
        settled = []
        for follower_id in self._followers.pop(leader.key, []):
            follower = self._jobs[follower_id]
            settled.append(follower)
            follower.state = leader.state
            follower.error = leader.error
            follower.failure = leader.failure
            follower.result = leader.result
            follower.phases = leader.phases
            follower.cached = leader.state == "done"
            follower.shards_total = leader.shards_total
            if leader.state == "done":
                # The follower got the whole span set without executing.
                follower.shards_done = leader.shards_total
                follower.shards_cached = leader.shards_total
            else:
                follower.shards_done = leader.shards_done
                follower.shards_cached = leader.shards_cached
            follower.finished_at = time.time()
        return settled

    async def _run_single_unit(self, job: JobRecord,
                               fn: Callable[[dict], dict]) -> dict:
        job.shards_total = 1
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(self._pool, fn,
                                            job.spec.to_dict())
        job.shards_done = 1
        return result

    async def _run_sharded(self, job: JobRecord) -> dict:
        """Campaign-family execution: checkpointable shard spans."""
        spec = job.spec
        runner = spec.build_runner()
        shards = max(1, math.ceil(spec.trials / self.shard_trials))
        bounds = shard_bounds(spec.trials, shards)
        # Store I/O happens on worker threads (asyncio.to_thread), never
        # on the event loop: a slow disk must not stall the HTTP surface
        # or the scheduling of other jobs.
        checkpoints = await asyncio.to_thread(self.store.shard_spans,
                                              job.key)
        job.shards_total = len(bounds)
        results = {}
        loop = asyncio.get_running_loop()
        # Only the stock runner is swapped for its profiled twin: an
        # injected shard_runner (tests, remote adapters) keeps its
        # exact contract — a bare CampaignResult, no phase profile.
        profiled = self.shard_runner is run_shard_task
        pool_fn = run_shard_task_profiled if profiled else self.shard_runner

        async def run_span(lo: int, hi: int) -> None:
            cached = checkpoints.get((lo, hi))
            if cached is not None:
                results[(lo, hi)] = cached
                job.shards_cached += 1
                job.shards_done += 1
                return
            out = await loop.run_in_executor(
                self._pool, pool_fn, runner.shard_task(lo, hi))
            tallies, phases = out if profiled else (out, None)
            await asyncio.to_thread(self.store.put_shard, job.key, lo, hi,
                                    tallies, phases=phases or None)
            results[(lo, hi)] = tallies
            job.shards_done += 1

        outcomes = await asyncio.gather(
            *(run_span(lo, hi) for lo, hi in bounds),
            return_exceptions=True)
        errors = [o for o in outcomes if isinstance(o, BaseException)]
        if errors:
            # Completed spans stay checkpointed in the store — the
            # resume payoff — only the failure is surfaced.
            raise errors[0]
        merged = merge_results([results[span] for span in bounds])
        return result_to_dict(merged)

    async def _run_sharded_distributed(self, job: JobRecord,
                                       parent_span: Optional[str] = None
                                       ) -> dict:
        """Distributed campaign execution: publish spans, await the store.

        The local path's twin with the pool swapped for the worker
        fleet: spans without a checkpoint become broker work units
        (hash-stamped wire payloads, idempotent unit ids), and
        completion is read back *from the store* — a worker's ack is
        bookkeeping, the checkpoint file is the truth, so dispatcher
        and workers never need a direct channel. A terminally failed
        unit (poison payload, repeated worker crashes reported as
        terminal) fails the job with the worker's error; abandoned
        leases are invisible here because the broker re-enqueues them
        on claim.
        """
        # Function-scope import: repro.distributed depends on the
        # service layer's store/client, so the dependency must point
        # this way only at call time, not at module import time.
        from repro.distributed.wire import unit_envelope

        spec = job.spec
        runner = spec.build_runner()
        shards = max(1, math.ceil(spec.trials / self.shard_trials))
        bounds = shard_bounds(spec.trials, shards)
        checkpoints = await asyncio.to_thread(self.store.shard_spans,
                                              job.key)
        job.shards_total = len(bounds)
        results = {}
        missing = []
        for lo, hi in bounds:
            cached = checkpoints.get((lo, hi))
            if cached is not None:
                results[(lo, hi)] = cached
                job.shards_cached += 1
                job.shards_done += 1
            else:
                missing.append((lo, hi))

        # The trace block rides the wire so worker spans in other
        # processes attach under this job's execute span; it is absent
        # entirely when tracing is off, keeping payloads byte-stable.
        trace = {"id": job.id, "span": parent_span} \
            if parent_span and self.tracer.active else None

        def publish_all() -> None:
            records = []
            for lo, hi in missing:
                unit_id = f"{job.key}:{lo}-{hi}"
                payload = unit_envelope(job.key, lo, hi,
                                        runner.shard_task(lo, hi),
                                        trace=trace)
                self.broker.publish(unit_id, payload, group_key=job.key)
                _UNIT_PUBLISHES.inc()
                records.append(self.tracer.event_record(
                    job.id, "unit.publish", parent=parent_span,
                    attrs={"unit": unit_id, "lo": lo, "hi": hi}))
            self.tracer.emit_records(job.id, records)

        await asyncio.to_thread(publish_all)
        pending = set(missing)
        # Escalating jittered poll: tight while checkpoints are landing,
        # backing off (capped at 10x) through idle stretches so a big
        # fleet of dispatchers doesn't hammer the store in lockstep.
        poll = RetryPolicy(initial_s=self.dispatch_poll_s,
                           cap_s=self.dispatch_poll_s * 10)
        idle = 0
        while pending:
            _DISPATCH_POLLS.inc()
            progressed = False
            for lo, hi in sorted(pending):
                tallies = await asyncio.to_thread(self.store.get_shard,
                                                  job.key, lo, hi)
                if tallies is not None:
                    results[(lo, hi)] = tallies
                    pending.discard((lo, hi))
                    job.shards_done += 1
                    progressed = True
            if not pending:
                break
            failed = await asyncio.to_thread(self.broker.failed_units,
                                             job.key)
            # A failed unit only fails the job while its span is still
            # missing: a worker that wrote the checkpoint but died
            # before ack leaves a unit that expires into 'failed' even
            # though its work is durably done — the checkpoint is the
            # truth, the unit state is bookkeeping.
            failed = [(unit_id, error) for unit_id, error in failed
                      if _unit_span(unit_id) is None  # foreign id: keep
                      or _unit_span(unit_id) in pending]
            if failed:
                unit_id, error = failed[0]
                # Withdraw the job's remaining units: the job is about
                # to fail, so letting workers keep computing spans for
                # it would only waste the fleet. Checkpoints already
                # written stay — they are the resume currency.
                await asyncio.to_thread(self.broker.clear_group, job.key)
                raise UnitFailedError(unit_id, error)
            if not progressed:
                # The inverse hazard of the ack/expiry race above: a
                # unit acked 'done' whose checkpoint is *gone* (torn
                # write quarantined by the store's integrity check).
                # Without this sweep the dispatcher would poll forever
                # for a file nobody will ever write again.
                requeued = await asyncio.to_thread(
                    self._requeue_lost_units, job, pending, parent_span)
                if requeued:
                    progressed = True
            if progressed:
                idle = 0
            else:
                idle += 1
                await poll.sleep_async(idle - 1)
        await asyncio.to_thread(self.broker.clear_group, job.key)
        merged = merge_results([results[span] for span in bounds])
        return result_to_dict(merged)

    def _requeue_lost_units(self, job: JobRecord, pending: set,
                            parent_span: Optional[str] = None) -> int:
        """Re-enqueue ``done`` units whose checkpoint never materialized.

        A unit can be acked while its span is still in ``pending`` only
        when the checkpoint the ack vouched for is unreadable — torn by
        a crash mid-write and quarantined by the store's integrity
        check. :meth:`SqliteBroker.requeue_unit` sends such a unit
        around again against its remaining attempts budget, and turns
        it terminally ``failed`` once the budget is spent — so silent
        corruption degrades into a structured job failure, never a
        dispatcher hang. Returns the number of units re-enqueued.
        """
        requeued = 0
        reason = "acked checkpoint missing or quarantined in the store"
        for unit in self.broker.units(job.key):
            if unit.state != "done":
                continue
            span = _unit_span(unit.unit_id)
            if span is None or span not in pending:
                continue
            self.broker.requeue_unit(unit.unit_id, reason)
            requeued += 1
            _UNIT_REQUEUES.inc()
            _LOG.warning("requeueing lost unit", extra={
                "event": "unit.requeue", "job_id": job.id,
                "unit": unit.unit_id, "reason": reason})
            self.tracer.event(job.id, "unit.requeue",
                              parent=parent_span, status="error",
                              attrs={"unit": unit.unit_id,
                                     "reason": reason})
        return requeued
