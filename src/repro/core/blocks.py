"""Block-grid geometry for the diagonal ECC.

The ``n x n`` MEM is divided into an imaginary grid of ``(n/m) x (n/m)``
blocks of ``m x m`` cells each. This module is pure geometry: translating
between global crossbar coordinates, block coordinates, and block-local
coordinates, plus enumeration helpers used by the checker and the
architecture model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.validation import (
    check_index,
    check_odd,
    check_power_compatible,
)


@dataclass(frozen=True)
class BlockGrid:
    """Geometry of the ``m x m`` block partition of an ``n x n`` crossbar.

    Parameters
    ----------
    n:
        Crossbar dimension (paper: 1020).
    m:
        Block dimension; must be odd and divide ``n`` (paper: 15).
    """

    n: int
    m: int

    def __post_init__(self):
        check_power_compatible(self.n, self.m)
        check_odd("m", self.m)

    @property
    def blocks_per_side(self) -> int:
        """Number of blocks along one side of the crossbar (n/m)."""
        return self.n // self.m

    @property
    def block_count(self) -> int:
        """Total number of blocks in the grid."""
        return self.blocks_per_side ** 2

    @property
    def cells_per_block(self) -> int:
        """Data cells in one block (m^2)."""
        return self.m * self.m

    @property
    def check_bits_per_block(self) -> int:
        """Check-bits per block: one per leading + counter diagonal (2m)."""
        return 2 * self.m

    # ------------------------------------------------------------------ #
    # Coordinate translation
    # ------------------------------------------------------------------ #

    def block_of(self, row: int, col: int) -> Tuple[int, int]:
        """Block coordinates ``(block_row, block_col)`` containing a cell."""
        check_index("row", row, self.n)
        check_index("col", col, self.n)
        return row // self.m, col // self.m

    def local_of(self, row: int, col: int) -> Tuple[int, int]:
        """Block-local coordinates of a global cell."""
        check_index("row", row, self.n)
        check_index("col", col, self.n)
        return row % self.m, col % self.m

    def global_of(self, block_row: int, block_col: int,
                  local_row: int, local_col: int) -> Tuple[int, int]:
        """Global coordinates from block + block-local coordinates."""
        check_index("block_row", block_row, self.blocks_per_side)
        check_index("block_col", block_col, self.blocks_per_side)
        check_index("local_row", local_row, self.m)
        check_index("local_col", local_col, self.m)
        return (block_row * self.m + local_row,
                block_col * self.m + local_col)

    def block_bounds(self, block_row: int, block_col: int) -> Tuple[int, int, int, int]:
        """``(row0, col0, row1, col1)`` half-open bounds of a block."""
        check_index("block_row", block_row, self.blocks_per_side)
        check_index("block_col", block_col, self.blocks_per_side)
        r0 = block_row * self.m
        c0 = block_col * self.m
        return r0, c0, r0 + self.m, c0 + self.m

    def block_slice(self, block_row: int, block_col: int) -> Tuple[slice, slice]:
        """Numpy slices selecting a block from an ``n x n`` array."""
        r0, c0, r1, c1 = self.block_bounds(block_row, block_col)
        return slice(r0, r1), slice(c0, c1)

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #

    def iter_blocks(self) -> Iterator[Tuple[int, int]]:
        """All block coordinates in row-major order."""
        for br in range(self.blocks_per_side):
            for bc in range(self.blocks_per_side):
                yield br, bc

    def blocks_covering_cols(self, cols: range | list[int]) -> list[int]:
        """Sorted block-column indices covering the given global columns.

        Used by the input-checking model: SIMPLER places function inputs in
        consecutive columns of a single row, and the ECC check must verify
        every block(-column) containing at least one input bit.
        """
        return sorted({c // self.m for c in cols})

    def blocks_covering_rows(self, rows: range | list[int]) -> list[int]:
        """Sorted block-row indices covering the given global rows."""
        return sorted({r // self.m for r in rows})

    def block_row_of(self, row: int) -> int:
        """Block-row index containing a global row."""
        check_index("row", row, self.n)
        return row // self.m

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockGrid(n={self.n}, m={self.m}, "
                f"{self.blocks_per_side}x{self.blocks_per_side} blocks)")
