"""Pluggable per-block ECC code registry.

The paper's central claim is *comparative*: the diagonal placement beats
rival single-error-correcting codes on MAGIC update cost while paying a
modest storage overhead. Measuring that claim needs the rivals in-tree
and drivable through the same batched campaign machinery. This module
defines the :class:`BlockCode` interface the campaign engine consumes
(:mod:`repro.faults.batch`), lifts the existing codes onto it, adds two
algebraic SEC-DED codes (Hsiao and extended Hamming, the families the
PIM-ECC literature evaluates), and registers everything under string
names — mirroring the injector registry of
:mod:`repro.faults.serialize`, so a code crosses process and host
boundaries as a plain string in a :class:`repro.faults.batch.ShardTask`.

Code geometry
=============

Every code protects the same ``m x m`` data blocks of an ``n x n``
crossbar and stores its check bits in one or more *planes*, each a
``(rk, b, b)`` tensor (``rk`` check bits per block per plane, ``b =
n/m`` blocks per side) — the :class:`repro.core.checkstore.CheckStore`
layout generalized to code-defined plane counts and depths:

* ``diagonal`` — two ``(m, b, b)`` planes (leading, counter);
* ``rowcol`` — two ``(m, b, b)`` planes (row, column parities);
* ``hsiao`` / ``hamming_ext`` — one ``(r, b, b)`` plane of algebraic
  check bits (``r ~ log2(m^2)``, far below ``2m``).

All codes are exactly single-error-correcting / double-error-detecting
per block codeword, so campaign outcomes are comparable one-to-one; the
differences the selector (:mod:`repro.analysis.selector`) trades off are
storage overhead, MAGIC update cost, and kernel throughput.

Matrix codes as difference equations
====================================

The algebraic codes are defined by an ``r x k`` binary generator matrix
``G`` (``k = m^2``): stored check bit ``j`` is the parity of the data
cells whose column pattern has bit ``j`` set. After a write, the
*syndrome difference* ``diff = fresh_checks XOR stored_checks`` is the
zero vector for a clean block, equals ``G``'s column for a single data
error, and equals the unit vector ``e_j`` for a single check-bit error.
Because every data column has odd weight >= 3 and every check column
(unit vector) weight 1, any double error produces an even-weight
``diff`` matching no column — the classic Hsiao odd-weight-column
argument, which makes ``diff``-matching an exact SEC-DED decode. (For
extended Hamming the standard parity-check matrix ``H`` has a
non-trivial check submatrix ``Hc``; ``diff = Hc^-1 . syndrome`` is a
bijection, so matching ``diff`` against ``Hc^-1 . H``'s columns is
equivalent to syndrome decoding — and those transformed columns are
again odd-weight, see :func:`_extended_hamming_patterns`.)

Update-cost model
=================

Per-code MAGIC maintenance costs use the *sequential XOR3 gate issue*
metric of :func:`repro.core.altcodes.update_cost` (see the corrected
definition there): one gate issue covers all check bits that each
absorb a single delta, and a parity absorbing ``w`` deltas needs a
``ceil(w/2)``-gate serialized fold. For the matrix codes no geometric
alignment exists between a MAGIC-written vector and the check
equations, so each check bit's fold serializes after the others —
the per-block cost is the *sum* of ``ceil(w_j/2)`` over affected check
bits ``j``, maximized over the written block-local vector. That lands
the gradient the paper argues: ``diagonal (1) << rowcol (ceil(m/2)) <<
hsiao/hamming_ext``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.altcodes import RowColParityCode, UpdateCost, update_cost
from repro.core.blocks import BlockGrid
from repro.core.checker import (
    BatchSweepReport,
    PackedSweepReport,
    check_all_batched,
    check_all_batched_packed,
)
from repro.core.code import (
    BATCH_CTR_CHECK_ERROR,
    BATCH_DATA_ERROR,
    BATCH_LEAD_CHECK_ERROR,
    BATCH_NO_ERROR,
    BATCH_UNCORRECTABLE,
    CheckBitError,
    DataError,
    DecodeOutcome,
    DiagonalParityCode,
    NoError,
    PackedBatchDecode,
    Uncorrectable,
)
from repro.utils.backend import BackendLike, get_backend
from repro.utils.bitpack import (
    _native_applies,
    decode_status_masks,
    or_reduce_words,
)
from repro.utils.kernels import KernelsLike, get_kernels

__all__ = [
    "BlockCode",
    "DiagonalBlockCode",
    "RowColBlockCode",
    "MatrixBlockCode",
    "hsiao_patterns",
    "extended_hamming_patterns",
    "register_code",
    "build_code",
    "code_names",
    "CODE_KINDS",
]


class BlockCode:
    """Interface every registered per-block code implements.

    The campaign engine only touches this surface: plane geometry,
    batched encode (u8 and u64-packed), batched check-and-correct
    returning a sweep report with per-trial ``uncorrectable_any``, and
    the scalar per-block encode/decode the differential reference
    replays. Storage and update-cost accessors feed the selector and
    the area model.
    """

    #: Registered name (set by subclasses).
    name: str = ""

    def __init__(self, grid: BlockGrid):
        self.grid = grid

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @property
    def plane_names(self) -> Tuple[str, ...]:
        """Code-ordered check-plane labels (scalar flip-event names)."""
        raise NotImplementedError

    @property
    def plane_depths(self) -> Tuple[int, ...]:
        """Per-plane check bits per block (``rk`` of each plane)."""
        raise NotImplementedError

    @property
    def plane_shapes(self) -> Tuple[Tuple[int, int, int], ...]:
        """Per-trial plane shapes ``(rk, b, b)``, in code order."""
        b = self.grid.blocks_per_side
        return tuple((rk, b, b) for rk in self.plane_depths)

    @property
    def data_bits_per_block(self) -> int:
        return self.grid.cells_per_block

    @property
    def check_bits_per_block(self) -> int:
        return sum(self.plane_depths)

    @property
    def overhead_fraction(self) -> float:
        """Storage overhead: check bits per protected data bit."""
        return self.check_bits_per_block / self.data_bits_per_block

    def check_overhead_cells(self) -> int:
        """Total check memristors across the grid (area accounting)."""
        return self.check_bits_per_block * self.grid.block_count

    # ------------------------------------------------------------------ #
    # Scalar path (differential reference)
    # ------------------------------------------------------------------ #

    def encode_block(self, block: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Per-plane check-bit vectors of one ``m x m`` block."""
        raise NotImplementedError

    def decode_block(self, block: np.ndarray,
                     *plane_bits: np.ndarray) -> DecodeOutcome:
        """Syndrome + classify one block against its stored check bits."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #

    def encode_batch(self, data, backend: BackendLike = None) -> Tuple:
        """Check planes of a ``(B, n, n)`` uint8 stack, in code order."""
        raise NotImplementedError

    def encode_batch_packed(self, words,
                            backend: BackendLike = None) -> Tuple:
        """Check planes of a packed ``(W, n, n)`` uint64 word stack."""
        raise NotImplementedError

    def check_batched(self, data, planes: Sequence, correct: bool = True,
                      backend: BackendLike = None) -> BatchSweepReport:
        """Check-and-correct every block of a u8 stack, in place."""
        raise NotImplementedError

    def check_batched_packed(self, words, planes: Sequence, batch: int,
                             correct: bool = True,
                             backend: BackendLike = None,
                             kernels: KernelsLike = None
                             ) -> PackedSweepReport:
        """Check-and-correct every block of a packed word stack."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Cost models
    # ------------------------------------------------------------------ #

    def update_cost(self) -> UpdateCost:
        """Per-block MAGIC check-update cost (see module docstring)."""
        raise NotImplementedError


class DiagonalBlockCode(BlockCode):
    """The paper's diagonal parity code on the registry interface.

    A thin adapter over :class:`repro.core.code.DiagonalParityCode` and
    the batched checkers of :mod:`repro.core.checker` — every kernel is
    the existing one, so registry-driven campaigns with
    ``code="diagonal"`` are bit-identical to the historical path.
    """

    name = "diagonal"

    def __init__(self, grid: BlockGrid):
        super().__init__(grid)
        self.inner = DiagonalParityCode(grid)

    @property
    def plane_names(self) -> Tuple[str, ...]:
        return ("leading", "counter")

    @property
    def plane_depths(self) -> Tuple[int, ...]:
        return (self.grid.m, self.grid.m)

    def encode_block(self, block: np.ndarray) -> Tuple[np.ndarray, ...]:
        return self.inner.encode_block(block)

    def decode_block(self, block: np.ndarray,
                     *plane_bits: np.ndarray) -> DecodeOutcome:
        lead_bits, ctr_bits = plane_bits
        return self.inner.decode_block(block, lead_bits, ctr_bits)

    def encode_batch(self, data, backend: BackendLike = None) -> Tuple:
        return self.inner.encode_batch(data, backend=backend)

    def encode_batch_packed(self, words,
                            backend: BackendLike = None) -> Tuple:
        return self.inner.encode_batch_packed(words, backend=backend)

    def check_batched(self, data, planes: Sequence, correct: bool = True,
                      backend: BackendLike = None) -> BatchSweepReport:
        lead, ctr = planes
        return check_all_batched(self.grid, self.inner, data, lead, ctr,
                                 correct=correct, backend=backend)

    def check_batched_packed(self, words, planes: Sequence, batch: int,
                             correct: bool = True,
                             backend: BackendLike = None,
                             kernels: KernelsLike = None
                             ) -> PackedSweepReport:
        lead, ctr = planes
        return check_all_batched_packed(self.grid, self.inner, words, lead,
                                        ctr, batch, correct=correct,
                                        backend=backend, kernels=kernels)

    def update_cost(self) -> UpdateCost:
        return update_cost("diagonal", self.grid.n, self.grid.m)


class RowColBlockCode(BlockCode):
    """Row+column product parity lifted onto the batched path.

    Scalar semantics are exactly :class:`repro.core.altcodes
    .RowColParityCode`; the batched kernels mirror the diagonal code's
    (syndrome one-counts classify, argmax locates) with the trivial
    position solve — row syndrome index IS the row, column index IS the
    column.
    """

    name = "rowcol"

    def __init__(self, grid: BlockGrid):
        super().__init__(grid)
        self.inner = RowColParityCode(grid)

    @property
    def plane_names(self) -> Tuple[str, ...]:
        return ("row", "col")

    @property
    def plane_depths(self) -> Tuple[int, ...]:
        return (self.grid.m, self.grid.m)

    def encode_block(self, block: np.ndarray) -> Tuple[np.ndarray, ...]:
        return self.inner.encode_block(block)

    def decode_block(self, block: np.ndarray,
                     *plane_bits: np.ndarray) -> DecodeOutcome:
        row_bits, col_bits = plane_bits
        return self.inner.decode_block(block, row_bits, col_bits)

    def _encode_impl(self, data, be, dtype) -> Tuple:
        n, m = self.grid.n, self.grid.m
        xp = be.xp
        data = xp.asarray(data, dtype=dtype)
        if data.ndim != 3 or data.shape[1:] != (n, n):
            raise ValueError(f"expected (B, {n}, {n}) data, got {data.shape}")
        b = self.grid.blocks_per_side
        batch = data.shape[0]
        tiles = data.reshape(batch, b, m, b, m)
        rows = xp.empty((batch, m, b, b), dtype=dtype)
        cols = xp.empty((batch, m, b, b), dtype=dtype)
        for d in range(m):
            # Row parity d of every block: reduce over that row's m cells.
            rows[:, d] = be.xor_reduce(tiles[:, :, d, :, :], axis=3)
            cols[:, d] = be.xor_reduce(tiles[:, :, :, :, d], axis=2)
        return rows, cols

    def encode_batch(self, data, backend: BackendLike = None) -> Tuple:
        be = get_backend(backend)
        return self._encode_impl(data, be, be.xp.uint8)

    def encode_batch_packed(self, words,
                            backend: BackendLike = None) -> Tuple:
        be = get_backend(backend)
        return self._encode_impl(words, be, be.xp.uint64)

    def check_batched(self, data, planes: Sequence, correct: bool = True,
                      backend: BackendLike = None) -> BatchSweepReport:
        be = get_backend(backend)
        xp = be.xp
        m = self.grid.m
        row_bits, col_bits = planes
        fresh_r, fresh_c = self.encode_batch(data, backend=be)
        syn_r = fresh_r ^ xp.asarray(row_bits, dtype=xp.uint8)
        syn_c = fresh_c ^ xp.asarray(col_bits, dtype=xp.uint8)
        r_ones = syn_r.sum(axis=1, dtype=xp.int64)
        c_ones = syn_c.sum(axis=1, dtype=xp.int64)
        status = xp.full(r_ones.shape, BATCH_UNCORRECTABLE, dtype=xp.uint8)
        status[(r_ones == 0) & (c_ones == 0)] = BATCH_NO_ERROR
        status[(r_ones == 1) & (c_ones == 1)] = BATCH_DATA_ERROR
        status[(r_ones == 1) & (c_ones == 0)] = BATCH_LEAD_CHECK_ERROR
        status[(r_ones == 0) & (c_ones == 1)] = BATCH_CTR_CHECK_ERROR
        row_idx = xp.argmax(syn_r, axis=1)
        col_idx = xp.argmax(syn_c, axis=1)
        if correct:
            t, br, bc = xp.nonzero(status == BATCH_DATA_ERROR)
            if t.size:
                data[t, br * m + row_idx[t, br, bc],
                     bc * m + col_idx[t, br, bc]] ^= 1
            t, br, bc = xp.nonzero(status == BATCH_LEAD_CHECK_ERROR)
            if t.size:
                row_bits[t, row_idx[t, br, bc], br, bc] ^= 1
            t, br, bc = xp.nonzero(status == BATCH_CTR_CHECK_ERROR)
            if t.size:
                col_bits[t, col_idx[t, br, bc], br, bc] ^= 1
        return BatchSweepReport(status=status, corrected=correct)

    def check_batched_packed(self, words, planes: Sequence, batch: int,
                             correct: bool = True,
                             backend: BackendLike = None,
                             kernels: KernelsLike = None
                             ) -> PackedSweepReport:
        be = get_backend(backend)
        xp = be.xp
        m = self.grid.m
        row_bits, col_bits = planes
        fresh_r, fresh_c = self.encode_batch_packed(words, backend=be)
        syn_r = fresh_r ^ xp.asarray(row_bits, dtype=xp.uint64)
        syn_c = fresh_c ^ xp.asarray(col_bits, dtype=xp.uint64)
        no_error, data_error, row_check, col_check, uncorrectable = \
            decode_status_masks(syn_r, syn_c, backend=be, kernels=kernels)
        decoded = PackedBatchDecode(
            m=m,
            lead_syndrome=syn_r,
            ctr_syndrome=syn_c,
            no_error=no_error,
            data_error=data_error,
            lead_check=row_check,
            ctr_check=col_check,
            uncorrectable=uncorrectable,
        )
        if correct:
            for dr in range(m):
                for dc in range(m):
                    mask = decoded.data_error & syn_r[:, dr] & syn_c[:, dc]
                    words[:, dr::m, dc::m] ^= mask
            for d in range(m):
                row_bits[:, d] ^= decoded.lead_check & syn_r[:, d]
                col_bits[:, d] ^= decoded.ctr_check & syn_c[:, d]
        return PackedSweepReport(batch=batch, decode=decoded, backend=be,
                                 corrected=correct)

    def update_cost(self) -> UpdateCost:
        return update_cost("rowcol", self.grid.n, self.grid.m)


def _popcount(v: int) -> int:
    return bin(v).count("1")


def hsiao_patterns(k: int) -> Tuple[int, np.ndarray]:
    """Hsiao SEC-DED column patterns for ``k`` data bits.

    ``r`` is the smallest check-bit count with enough odd-weight->=3
    ``r``-bit values (``2^(r-1) - r >= k``); data columns take the
    minimum-weight such values in ``(weight, value)`` order — Hsiao's
    minimum-total-weight choice, which also minimizes encoder fan-in.
    Returns ``(r, patterns)`` with ``patterns`` the ``k`` column values.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    r = 3
    while (1 << (r - 1)) - r < k:
        r += 1
    cands = sorted((v for v in range(1 << r)
                    if _popcount(v) % 2 == 1 and _popcount(v) >= 3),
                   key=lambda v: (_popcount(v), v))
    return r, np.asarray(cands[:k], dtype=np.int64)


def extended_hamming_patterns(k: int) -> Tuple[int, np.ndarray]:
    """Extended Hamming (SEC-DED) column patterns for ``k`` data bits.

    The textbook construction: ``p`` Hamming check bits with
    ``2^p - p - 1 >= k`` plus one overall parity bit (``r = p + 1``).
    Data position columns are the non-power-of-two values ``v >= 3`` in
    increasing order with the overall-parity row set. Returned patterns
    are pre-transformed into *syndrome-difference* space (``Hc^-1 . H``
    columns, see the module docstring): bits ``0..p-1`` carry ``v`` and
    bit ``p`` complements ``v``'s parity, so every pattern has odd
    weight >= 3 — the same decoding invariant as :func:`hsiao_patterns`,
    but with the heavier average column weight (~``p/2``) that makes the
    code's MAGIC update cost worse than Hsiao's.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    p = 2
    while (1 << p) - p - 1 < k:
        p += 1
    r = p + 1
    pats: List[int] = []
    for v in range(3, 1 << p):
        if v & (v - 1) == 0:
            continue
        pats.append(v | ((1 ^ (_popcount(v) & 1)) << p))
        if len(pats) == k:
            break
    return r, np.asarray(pats, dtype=np.int64)


class MatrixBlockCode(BlockCode):
    """Generic algebraic SEC-DED block code from odd-weight columns.

    ``patterns`` are the ``k = m^2`` data-column values (row-major block
    positions) of the syndrome-difference matrix; stored check bit ``j``
    is the parity of the data cells whose pattern has bit ``j`` set, and
    a check-bit error matches the unit pattern ``1 << j``. The odd-
    weight->=3 invariant (validated here) makes ``diff``-matching an
    exact SEC-DED decode — see the module docstring.

    The u8 decode classifies through a ``2^r`` lookup table on the
    syndrome integer; the packed decode tests each pattern with an AND
    of (possibly complemented) syndrome planes. Every pattern has at
    least one *non-complemented* term, so packed match masks keep zero
    tail bits and corrections never write padding lanes.
    """

    def __init__(self, grid: BlockGrid, name: str, r: int,
                 patterns: np.ndarray):
        super().__init__(grid)
        self.name = name
        k = grid.cells_per_block
        patterns = np.asarray(patterns, dtype=np.int64)
        if patterns.shape != (k,):
            raise ValueError(f"need {k} data patterns, got {patterns.shape}")
        ints = [int(v) for v in patterns]
        if len(set(ints)) != k:
            raise ValueError(f"{name}: data patterns must be distinct")
        for v in ints:
            if not 0 < v < (1 << r):
                raise ValueError(f"{name}: pattern {v} outside {r} bits")
            if _popcount(v) % 2 == 0 or _popcount(v) < 3:
                raise ValueError(
                    f"{name}: pattern {v:#x} violates the odd-weight->=3 "
                    f"SEC-DED invariant")
        self.r = r
        self.patterns = patterns
        # Encoder gather lists: flat data positions feeding check bit j.
        self._positions_by_check = tuple(
            np.flatnonzero((patterns >> j) & 1).astype(np.int64)
            for j in range(r))
        # Decode LUT on the syndrome-difference integer: status plus the
        # located data position / check index (dual-use, keyed by status).
        size = 1 << r
        lut_status = np.full(size, BATCH_UNCORRECTABLE, dtype=np.uint8)
        lut_pos = np.zeros(size, dtype=np.int64)
        lut_status[0] = BATCH_NO_ERROR
        for j in range(r):
            lut_status[1 << j] = BATCH_LEAD_CHECK_ERROR
            lut_pos[1 << j] = j
        for pos, pat in enumerate(ints):
            lut_status[pat] = BATCH_DATA_ERROR
            lut_pos[pat] = pos
        self._lut_status = lut_status
        self._lut_pos = lut_pos

    @property
    def plane_names(self) -> Tuple[str, ...]:
        return ("check",)

    @property
    def plane_depths(self) -> Tuple[int, ...]:
        return (self.r,)

    # ------------------------------------------------------------------ #
    # Scalar path
    # ------------------------------------------------------------------ #

    def encode_block(self, block: np.ndarray) -> Tuple[np.ndarray, ...]:
        m = self.grid.m
        block = np.asarray(block, dtype=np.uint8)
        if block.shape != (m, m):
            raise ValueError(f"expected {m}x{m} block, got {block.shape}")
        flat = block.reshape(-1)
        vec = np.empty(self.r, dtype=np.uint8)
        for j, ps in enumerate(self._positions_by_check):
            vec[j] = np.bitwise_xor.reduce(flat[ps]) if ps.size else 0
        return (vec,)

    def decode_block(self, block: np.ndarray,
                     *plane_bits: np.ndarray) -> DecodeOutcome:
        (stored,) = plane_bits
        (fresh,) = self.encode_block(block)
        diff = fresh ^ np.asarray(stored, dtype=np.uint8)
        synint = int(sum(int(diff[j]) << j for j in range(self.r)))
        status = int(self._lut_status[synint])
        if status == BATCH_NO_ERROR:
            return NoError()
        if status == BATCH_DATA_ERROR:
            pos = int(self._lut_pos[synint])
            return DataError(pos // self.grid.m, pos % self.grid.m)
        if status == BATCH_LEAD_CHECK_ERROR:
            return CheckBitError("check", int(self._lut_pos[synint]))
        return Uncorrectable(tuple(int(x) for x in diff), ())

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #

    def _encode_impl(self, data, be, dtype) -> Tuple:
        n, m = self.grid.n, self.grid.m
        xp = be.xp
        data = xp.asarray(data, dtype=dtype)
        if data.ndim != 3 or data.shape[1:] != (n, n):
            raise ValueError(f"expected (B, {n}, {n}) data, got {data.shape}")
        b = self.grid.blocks_per_side
        batch = data.shape[0]
        tiles = data.reshape(batch, b, m, b, m)
        plane = xp.zeros((batch, self.r, b, b), dtype=dtype)
        for j, ps in enumerate(self._positions_by_check):
            if not ps.size:
                continue
            rs, cs = ps // m, ps % m
            # tiles[:, :, rs, :, cs] gathers check bit j's data cells from
            # every block of every trial: (w_j, B, b, b), advanced axis
            # first — the same gather the diagonal encoder uses.
            plane[:, j] = be.xor_reduce(tiles[:, :, rs, :, cs], axis=0)
        return (plane,)

    def encode_batch(self, data, backend: BackendLike = None) -> Tuple:
        be = get_backend(backend)
        return self._encode_impl(data, be, be.xp.uint8)

    def encode_batch_packed(self, words,
                            backend: BackendLike = None) -> Tuple:
        be = get_backend(backend)
        return self._encode_impl(words, be, be.xp.uint64)

    def check_batched(self, data, planes: Sequence, correct: bool = True,
                      backend: BackendLike = None) -> BatchSweepReport:
        be = get_backend(backend)
        xp = be.xp
        m = self.grid.m
        (stored,) = planes
        (fresh,) = self.encode_batch(data, backend=be)
        diff = fresh ^ xp.asarray(stored, dtype=xp.uint8)
        synint = xp.zeros((diff.shape[0],) + tuple(diff.shape[2:]),
                          dtype=xp.int64)
        for j in range(self.r):
            synint = synint + diff[:, j].astype(xp.int64) * (1 << j)
        lut_status = be.from_numpy(self._lut_status)
        lut_pos = be.from_numpy(self._lut_pos)
        status = lut_status[synint]
        if correct:
            t, br, bc = xp.nonzero(status == BATCH_DATA_ERROR)
            if t.size:
                pos = lut_pos[synint[t, br, bc]]
                data[t, br * m + pos // m, bc * m + pos % m] ^= 1
            t, br, bc = xp.nonzero(status == BATCH_LEAD_CHECK_ERROR)
            if t.size:
                stored[t, lut_pos[synint[t, br, bc]], br, bc] ^= 1
        return BatchSweepReport(status=status, corrected=correct)

    def check_batched_packed(self, words, planes: Sequence, batch: int,
                             correct: bool = True,
                             backend: BackendLike = None,
                             kernels: KernelsLike = None
                             ) -> PackedSweepReport:
        be = get_backend(backend)
        xp = be.xp
        m = self.grid.m
        (stored,) = planes
        (fresh,) = self.encode_batch_packed(words, backend=be)
        diff = fresh ^ xp.asarray(stored, dtype=xp.uint64)
        nonzero = or_reduce_words(diff, axis=1, backend=be)
        kern = get_kernels(kernels)
        fused = _native_applies(kern, be, diff)

        def match(pattern: int):
            # AND of syndrome planes (complemented where the pattern bit
            # is clear). At least one non-complemented term exists for
            # every pattern, so tail bits stay zero. The compiled tier
            # runs the whole chain as one C pass.
            if fused:
                return kern.match_pattern(diff, pattern)
            mask = None
            for j in range(self.r):
                term = diff[:, j] if (pattern >> j) & 1 else ~diff[:, j]
                mask = term if mask is None else mask & term
            return mask

        data_error = xp.zeros_like(nonzero)
        for pos, pat in enumerate(int(v) for v in self.patterns):
            mask = match(pat)
            data_error = data_error | mask
            if correct:
                words[:, (pos // m)::m, (pos % m)::m] ^= mask
        check_error = xp.zeros_like(nonzero)
        for j in range(self.r):
            mask = match(1 << j)
            check_error = check_error | mask
            if correct:
                stored[:, j] ^= mask
        decoded = PackedBatchDecode(
            m=m,
            lead_syndrome=diff,
            ctr_syndrome=diff[:, :0],
            no_error=~nonzero,
            data_error=data_error,
            lead_check=check_error,
            ctr_check=xp.zeros_like(nonzero),
            uncorrectable=nonzero & ~(data_error | check_error),
        )
        return PackedSweepReport(batch=batch, decode=decoded, backend=be,
                                 corrected=correct)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #

    def update_cost(self) -> UpdateCost:
        """MAGIC update cost from the generator matrix itself.

        A row-parallel op writes one block-local *column* (``m`` cells),
        a column-parallel op one block-local *row*. Check bit ``j``
        absorbs ``w_j`` deltas with a ``ceil(w_j/2)``-gate serialized
        fold (:func:`repro.core.altcodes.update_cost` definition); with
        no geometric alignment between written vectors and check
        equations the folds serialize, so the block cost is the sum over
        affected check bits, maximized over written vectors.
        """
        m = self.grid.m

        def issues(positions: np.ndarray) -> int:
            total = 0
            for ps in self._positions_by_check:
                w = int(np.isin(ps, positions).sum())
                if w:
                    total += math.ceil(w / 2)
            return total

        row_cost = max(
            issues(np.arange(m, dtype=np.int64) * m + c) for c in range(m))
        col_cost = max(
            issues(r * m + np.arange(m, dtype=np.int64)) for r in range(m))
        return UpdateCost(self.name, row_cost, col_cost)


def _build_hsiao(grid: BlockGrid) -> MatrixBlockCode:
    r, pats = hsiao_patterns(grid.cells_per_block)
    return MatrixBlockCode(grid, "hsiao", r, pats)


def _build_hamming_ext(grid: BlockGrid) -> MatrixBlockCode:
    r, pats = extended_hamming_patterns(grid.cells_per_block)
    return MatrixBlockCode(grid, "hamming_ext", r, pats)


#: Registered code kinds: name -> builder(grid). Mirrors the injector
#: registry (:data:`repro.faults.serialize.INJECTOR_KINDS`) so campaign
#: specs and shard tasks can carry a code by name across hosts.
CODE_KINDS: Dict[str, Callable[[BlockGrid], BlockCode]] = {
    "diagonal": DiagonalBlockCode,
    "rowcol": RowColBlockCode,
    "hsiao": _build_hsiao,
    "hamming_ext": _build_hamming_ext,
}


def register_code(name: str, builder: Callable[[BlockGrid], BlockCode],
                  overwrite: bool = False) -> None:
    """Register a code builder under ``name`` (extension hook)."""
    if not overwrite and name in CODE_KINDS:
        raise ValueError(f"code kind {name!r} already registered")
    CODE_KINDS[name] = builder


def code_names() -> Tuple[str, ...]:
    """Sorted names of every registered code."""
    return tuple(sorted(CODE_KINDS))


def build_code(name: str, grid: BlockGrid) -> BlockCode:
    """Instantiate a registered code for ``grid``."""
    try:
        builder = CODE_KINDS[name]
    except KeyError:
        raise ValueError(
            f"unknown code {name!r}; registered kinds: "
            f"{', '.join(code_names())}") from None
    return builder(grid)
