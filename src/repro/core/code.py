"""The diagonal parity code: encode, syndrome, decode.

Per block, the code stores ``2m`` parity bits (one per leading and counter
wrap-around diagonal). A single bit error anywhere in the *codeword*
(``m^2`` data cells + ``2m`` check cells) is correctable:

* a data error at block-local ``(r, c)`` flips exactly one leading
  syndrome bit (``(r+c) mod m``) and one counter syndrome bit
  (``(r-c) mod m``) — the pair inverts uniquely because ``m`` is odd;
* a check-bit error flips exactly one syndrome bit in one plane and none
  in the other, identifying the faulty check-bit itself.

Any other non-zero signature indicates at least two errors and is reported
as :class:`Uncorrectable` (detected-uncorrectable). Like every
single-error-correcting code, three-or-more errors can alias to a
correctable signature; the reliability model (Sec. V-A) accounts for this
by counting any block with two or more errors as failed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.blocks import BlockGrid
from repro.core.checkstore import CheckStore
from repro.core.diagonals import solve_position
from repro.core.parity import parity_along_counter, parity_along_leading


class DecodeStatus(enum.Enum):
    """Classification of a block syndrome."""

    NO_ERROR = "no_error"
    DATA_ERROR = "data_error"
    CHECK_BIT_ERROR = "check_bit_error"
    UNCORRECTABLE = "uncorrectable"


@dataclass(frozen=True)
class NoError:
    """Zero syndrome: the block is consistent."""

    status: DecodeStatus = DecodeStatus.NO_ERROR


@dataclass(frozen=True)
class DataError:
    """Single data-cell error at block-local ``(row, col)``."""

    row: int
    col: int
    status: DecodeStatus = DecodeStatus.DATA_ERROR


@dataclass(frozen=True)
class CheckBitError:
    """Single check-bit error: ``plane`` is 'leading' or 'counter'."""

    plane: str
    index: int
    status: DecodeStatus = DecodeStatus.CHECK_BIT_ERROR


@dataclass(frozen=True)
class Uncorrectable:
    """Two or more errors detected; the syndrome pair is attached."""

    lead_syndrome: Tuple[int, ...]
    ctr_syndrome: Tuple[int, ...]
    status: DecodeStatus = DecodeStatus.UNCORRECTABLE


DecodeOutcome = Union[NoError, DataError, CheckBitError, Uncorrectable]


class DiagonalParityCode:
    """Encoder/decoder for the per-block diagonal parity code."""

    def __init__(self, grid: BlockGrid):
        self.grid = grid

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def encode_block(self, block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(leading[m], counter[m])`` parity vectors of an ``m x m`` block."""
        m = self.grid.m
        block = np.asarray(block, dtype=np.uint8)
        if block.shape != (m, m):
            raise ValueError(f"expected {m}x{m} block, got {block.shape}")
        return parity_along_leading(block), parity_along_counter(block)

    def encode(self, data: np.ndarray) -> CheckStore:
        """Compute a full :class:`CheckStore` for ``n x n`` data.

        This is the from-scratch encoding used on bulk writes; steady-state
        operation maintains the store incrementally via
        :class:`repro.core.updater.ContinuousUpdater`.
        """
        n, m = self.grid.n, self.grid.m
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (n, n):
            raise ValueError(f"expected {n}x{n} data, got {data.shape}")
        store = CheckStore(self.grid)
        b = self.grid.blocks_per_side
        # Vectorized over all blocks: reshape to (b, m, b, m) and reduce
        # each diagonal with an index-add per block.
        tiles = data.reshape(b, m, b, m)
        r = np.arange(m)[:, None]
        c = np.arange(m)[None, :]
        lead_idx = (r + c) % m
        ctr_idx = (r - c) % m
        for d in range(m):
            # Gather the m cells of diagonal d from every block at once:
            # tiles[:, rs, :, cs] has shape (m, b, b) — one gathered cell
            # per (local position, block_row, block_col) — then XOR-reduce
            # over the gathered axis.
            rs, cs = np.nonzero(lead_idx == d)
            store.lead[d] = np.bitwise_xor.reduce(tiles[:, rs, :, cs], axis=0)
            rs, cs = np.nonzero(ctr_idx == d)
            store.ctr[d] = np.bitwise_xor.reduce(tiles[:, rs, :, cs], axis=0)
        return store

    # ------------------------------------------------------------------ #
    # Syndromes and decoding
    # ------------------------------------------------------------------ #

    def syndrome_block(self, block: np.ndarray, lead_bits: np.ndarray,
                       ctr_bits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Syndrome = stored check-bits XOR freshly computed parity."""
        lead, ctr = self.encode_block(block)
        return (lead ^ np.asarray(lead_bits, dtype=np.uint8),
                ctr ^ np.asarray(ctr_bits, dtype=np.uint8))

    def decode(self, lead_syndrome: np.ndarray,
               ctr_syndrome: np.ndarray) -> DecodeOutcome:
        """Classify a syndrome pair (see module docstring)."""
        lead_syndrome = np.asarray(lead_syndrome, dtype=np.uint8)
        ctr_syndrome = np.asarray(ctr_syndrome, dtype=np.uint8)
        lead_ones = np.flatnonzero(lead_syndrome)
        ctr_ones = np.flatnonzero(ctr_syndrome)
        if lead_ones.size == 0 and ctr_ones.size == 0:
            return NoError()
        if lead_ones.size == 1 and ctr_ones.size == 1:
            r, c = solve_position(int(lead_ones[0]), int(ctr_ones[0]),
                                  self.grid.m)
            return DataError(r, c)
        if lead_ones.size == 1 and ctr_ones.size == 0:
            return CheckBitError("leading", int(lead_ones[0]))
        if ctr_ones.size == 1 and lead_ones.size == 0:
            return CheckBitError("counter", int(ctr_ones[0]))
        return Uncorrectable(tuple(int(x) for x in lead_syndrome),
                             tuple(int(x) for x in ctr_syndrome))

    def decode_block(self, block: np.ndarray, lead_bits: np.ndarray,
                     ctr_bits: np.ndarray) -> DecodeOutcome:
        """Syndrome + decode in one call."""
        lead_s, ctr_s = self.syndrome_block(block, lead_bits, ctr_bits)
        return self.decode(lead_s, ctr_s)

    # ------------------------------------------------------------------ #
    # Code parameters
    # ------------------------------------------------------------------ #

    @property
    def data_bits_per_block(self) -> int:
        """m^2 protected data bits per block."""
        return self.grid.cells_per_block

    @property
    def check_bits_per_block(self) -> int:
        """2m check-bits per block."""
        return self.grid.check_bits_per_block

    @property
    def overhead_fraction(self) -> float:
        """Storage overhead 2m / m^2 = 2/m (paper Sec. III trade-off)."""
        return self.check_bits_per_block / self.data_bits_per_block
