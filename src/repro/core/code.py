"""The diagonal parity code: encode, syndrome, decode.

Per block, the code stores ``2m`` parity bits (one per leading and counter
wrap-around diagonal). A single bit error anywhere in the *codeword*
(``m^2`` data cells + ``2m`` check cells) is correctable:

* a data error at block-local ``(r, c)`` flips exactly one leading
  syndrome bit (``(r+c) mod m``) and one counter syndrome bit
  (``(r-c) mod m``) — the pair inverts uniquely because ``m`` is odd;
* a check-bit error flips exactly one syndrome bit in one plane and none
  in the other, identifying the faulty check-bit itself.

Any other non-zero signature indicates at least two errors and is reported
as :class:`Uncorrectable` (detected-uncorrectable). Like every
single-error-correcting code, three-or-more errors can alias to a
correctable signature; the reliability model (Sec. V-A) accounts for this
by counting any block with two or more errors as failed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.blocks import BlockGrid
from repro.core.checkstore import CheckStore
from repro.core.diagonals import solve_position
from repro.core.parity import parity_along_counter, parity_along_leading
from repro.utils.backend import BackendLike, get_backend
from repro.utils.bitpack import decode_status_masks, unpack_batch
from repro.utils.kernels import KernelsLike


class DecodeStatus(enum.Enum):
    """Classification of a block syndrome."""

    NO_ERROR = "no_error"
    DATA_ERROR = "data_error"
    CHECK_BIT_ERROR = "check_bit_error"
    UNCORRECTABLE = "uncorrectable"


@dataclass(frozen=True)
class NoError:
    """Zero syndrome: the block is consistent."""

    status: DecodeStatus = DecodeStatus.NO_ERROR


@dataclass(frozen=True)
class DataError:
    """Single data-cell error at block-local ``(row, col)``."""

    row: int
    col: int
    status: DecodeStatus = DecodeStatus.DATA_ERROR


@dataclass(frozen=True)
class CheckBitError:
    """Single check-bit error: ``plane`` is 'leading' or 'counter'."""

    plane: str
    index: int
    status: DecodeStatus = DecodeStatus.CHECK_BIT_ERROR


@dataclass(frozen=True)
class Uncorrectable:
    """Two or more errors detected; the syndrome pair is attached."""

    lead_syndrome: Tuple[int, ...]
    ctr_syndrome: Tuple[int, ...]
    status: DecodeStatus = DecodeStatus.UNCORRECTABLE


DecodeOutcome = Union[NoError, DataError, CheckBitError, Uncorrectable]


#: Per-block status codes used by the vectorized batch decoder. The two
#: check-bit planes get distinct codes (the scalar decoder distinguishes
#: them via ``CheckBitError.plane``).
BATCH_NO_ERROR = 0
BATCH_DATA_ERROR = 1
BATCH_LEAD_CHECK_ERROR = 2
BATCH_CTR_CHECK_ERROR = 3
BATCH_UNCORRECTABLE = 4


@dataclass(frozen=True)
class BatchDecode:
    """Vectorized decode of every block of a ``(B, n, n)`` stack.

    ``status`` is ``(B, b, b)`` of ``BATCH_*`` codes; ``lead_index`` and
    ``ctr_index`` are the argmax positions of each syndrome plane — only
    meaningful where the corresponding status consumes them (the data
    position for ``BATCH_DATA_ERROR``, the faulty check-bit diagonal for
    the two check-error codes).
    """

    m: int
    status: np.ndarray
    lead_index: np.ndarray
    ctr_index: np.ndarray

    def data_error_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Block-local ``(rows, cols)`` planes solving the diagonal pair.

        Valid only where ``status == BATCH_DATA_ERROR``; elsewhere the
        values are meaningless (computed from zero syndromes). Uses the
        same modular inverse of 2 as :func:`repro.core.diagonals
        .solve_position`.
        """
        inv2 = (self.m + 1) // 2
        rows = ((self.lead_index + self.ctr_index) * inv2) % self.m
        cols = ((self.lead_index - self.ctr_index) * inv2) % self.m
        return rows, cols


@dataclass(frozen=True)
class PackedBatchDecode:
    """Bit-parallel decode of packed ``uint64`` syndrome planes.

    Every field is a word tensor in the bit-slice layout of
    :mod:`repro.utils.bitpack` (trial ``i`` -> word ``i // 64``, bit
    ``i % 64``). ``lead_syndrome``/``ctr_syndrome`` are ``(W, m, b, b)``;
    the five status masks are ``(W, b, b)`` with a bit set iff that
    trial's block carries the status — one mask per ``BATCH_*`` code,
    with the two check planes separated like :class:`BatchDecode`.

    Tail rule: ``no_error`` is computed with complements, so its padding
    bits (trials beyond the true batch size) are *set*; the other four
    masks derive from AND/OR of zero-padded syndromes and keep zero
    tails. Consumers unpacking any mask must trim to the true batch
    (:meth:`status_codes` does).
    """

    m: int
    lead_syndrome: np.ndarray
    ctr_syndrome: np.ndarray
    no_error: np.ndarray
    data_error: np.ndarray
    lead_check: np.ndarray
    ctr_check: np.ndarray
    uncorrectable: np.ndarray

    def status_codes(self, batch: int,
                     backend: BackendLike = None) -> np.ndarray:
        """Unpack to the ``(B, b, b)`` uint8 ``BATCH_*`` code tensor.

        The differential bridge to :class:`BatchDecode.status`; the hot
        path never calls it.
        """
        status = np.full((batch,) + tuple(self.no_error.shape[1:]),
                         BATCH_UNCORRECTABLE, dtype=np.uint8)
        for code, mask in ((BATCH_NO_ERROR, self.no_error),
                           (BATCH_DATA_ERROR, self.data_error),
                           (BATCH_LEAD_CHECK_ERROR, self.lead_check),
                           (BATCH_CTR_CHECK_ERROR, self.ctr_check)):
            status[unpack_batch(mask, batch, backend=backend) != 0] = code
        return status


class DiagonalParityCode:
    """Encoder/decoder for the per-block diagonal parity code."""

    def __init__(self, grid: BlockGrid):
        self.grid = grid

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def encode_block(self, block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(leading[m], counter[m])`` parity vectors of an ``m x m`` block."""
        m = self.grid.m
        block = np.asarray(block, dtype=np.uint8)
        if block.shape != (m, m):
            raise ValueError(f"expected {m}x{m} block, got {block.shape}")
        return parity_along_leading(block), parity_along_counter(block)

    def encode(self, data: np.ndarray) -> CheckStore:
        """Compute a full :class:`CheckStore` for ``n x n`` data.

        This is the from-scratch encoding used on bulk writes; steady-state
        operation maintains the store incrementally via
        :class:`repro.core.updater.ContinuousUpdater`.
        """
        n, m = self.grid.n, self.grid.m
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (n, n):
            raise ValueError(f"expected {n}x{n} data, got {data.shape}")
        store = CheckStore(self.grid)
        b = self.grid.blocks_per_side
        # Vectorized over all blocks: reshape to (b, m, b, m) and reduce
        # each diagonal with an index-add per block.
        tiles = data.reshape(b, m, b, m)
        r = np.arange(m)[:, None]
        c = np.arange(m)[None, :]
        lead_idx = (r + c) % m
        ctr_idx = (r - c) % m
        for d in range(m):
            # Gather the m cells of diagonal d from every block at once:
            # tiles[:, rs, :, cs] has shape (m, b, b) — one gathered cell
            # per (local position, block_row, block_col) — then XOR-reduce
            # over the gathered axis.
            rs, cs = np.nonzero(lead_idx == d)
            store.lead[d] = np.bitwise_xor.reduce(tiles[:, rs, :, cs], axis=0)
            rs, cs = np.nonzero(ctr_idx == d)
            store.ctr[d] = np.bitwise_xor.reduce(tiles[:, rs, :, cs], axis=0)
        return store

    def encode_batch(self, data, backend: BackendLike = None) -> Tuple:
        """Parity planes for a stack of ``B`` crossbars at once.

        ``data`` is ``(B, n, n)``; returns ``(lead, ctr)`` planes of shape
        ``(B, m, n/m, n/m)`` — the per-trial analogue of the
        :class:`CheckStore` layout. This is the batched-campaign hot path:
        one gather + XOR-reduce per diagonal covers every block of every
        trial simultaneously. All tensor arithmetic runs on ``backend``
        (see :mod:`repro.utils.backend`); only the tiny per-diagonal
        ``m x m`` index tables are computed host-side.
        """
        be = get_backend(backend)
        return self._encode_batch_impl(data, be, be.xp.uint8)

    def encode_batch_packed(self, words, backend: BackendLike = None) -> Tuple:
        """Parity planes of a packed ``(W, n, n)`` ``uint64`` word stack.

        The bit-sliced analogue of :meth:`encode_batch`: ``words`` packs
        the batch dimension 64 trials per word (:mod:`repro.utils
        .bitpack` layout), and the returned ``(lead, ctr)`` planes are
        ``(W, m, n/m, n/m)`` words. XOR is bitwise, so the exact same
        gather + XOR-reduce per diagonal computes 64 trials per machine
        word — this is the packed campaign hot path.
        """
        be = get_backend(backend)
        return self._encode_batch_impl(words, be, be.xp.uint64)

    def _encode_batch_impl(self, data, be, dtype) -> Tuple:
        n, m = self.grid.n, self.grid.m
        xp = be.xp
        data = xp.asarray(data, dtype=dtype)
        if data.ndim != 3 or data.shape[1:] != (n, n):
            raise ValueError(f"expected (B, {n}, {n}) data, got {data.shape}")
        b = self.grid.blocks_per_side
        batch = data.shape[0]
        tiles = data.reshape(batch, b, m, b, m)
        r = np.arange(m)[:, None]
        c = np.arange(m)[None, :]
        lead_idx = (r + c) % m
        ctr_idx = (r - c) % m
        lead = xp.empty((batch, m, b, b), dtype=dtype)
        ctr = xp.empty((batch, m, b, b), dtype=dtype)
        for d in range(m):
            # tiles[:, :, rs, :, cs] gathers the m cells of diagonal d from
            # every block of every trial: shape (m, B, b, b) with the
            # advanced axis first; XOR-reduce over the gathered cells.
            rs, cs = np.nonzero(lead_idx == d)
            lead[:, d] = be.xor_reduce(tiles[:, :, rs, :, cs], axis=0)
            rs, cs = np.nonzero(ctr_idx == d)
            ctr[:, d] = be.xor_reduce(tiles[:, :, rs, :, cs], axis=0)
        return lead, ctr

    # ------------------------------------------------------------------ #
    # Syndromes and decoding
    # ------------------------------------------------------------------ #

    def syndrome_block(self, block: np.ndarray, lead_bits: np.ndarray,
                       ctr_bits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Syndrome = stored check-bits XOR freshly computed parity."""
        lead, ctr = self.encode_block(block)
        return (lead ^ np.asarray(lead_bits, dtype=np.uint8),
                ctr ^ np.asarray(ctr_bits, dtype=np.uint8))

    def decode(self, lead_syndrome: np.ndarray,
               ctr_syndrome: np.ndarray) -> DecodeOutcome:
        """Classify a syndrome pair (see module docstring)."""
        lead_syndrome = np.asarray(lead_syndrome, dtype=np.uint8)
        ctr_syndrome = np.asarray(ctr_syndrome, dtype=np.uint8)
        lead_ones = np.flatnonzero(lead_syndrome)
        ctr_ones = np.flatnonzero(ctr_syndrome)
        if lead_ones.size == 0 and ctr_ones.size == 0:
            return NoError()
        if lead_ones.size == 1 and ctr_ones.size == 1:
            r, c = solve_position(int(lead_ones[0]), int(ctr_ones[0]),
                                  self.grid.m)
            return DataError(r, c)
        if lead_ones.size == 1 and ctr_ones.size == 0:
            return CheckBitError("leading", int(lead_ones[0]))
        if ctr_ones.size == 1 and lead_ones.size == 0:
            return CheckBitError("counter", int(ctr_ones[0]))
        return Uncorrectable(tuple(int(x) for x in lead_syndrome),
                             tuple(int(x) for x in ctr_syndrome))

    def decode_block(self, block: np.ndarray, lead_bits: np.ndarray,
                     ctr_bits: np.ndarray) -> DecodeOutcome:
        """Syndrome + decode in one call."""
        lead_s, ctr_s = self.syndrome_block(block, lead_bits, ctr_bits)
        return self.decode(lead_s, ctr_s)

    def syndrome_batch(self, data, lead_bits, ctr_bits,
                       backend: BackendLike = None) -> Tuple:
        """Syndrome planes for a ``(B, n, n)`` stack of crossbars.

        ``lead_bits``/``ctr_bits`` are ``(B, m, n/m, n/m)`` stored
        check-bit planes (e.g. from :meth:`encode_batch` on golden data);
        the result has the same shape.
        """
        xp = get_backend(backend).xp
        lead, ctr = self.encode_batch(data, backend=backend)
        return (lead ^ xp.asarray(lead_bits, dtype=xp.uint8),
                ctr ^ xp.asarray(ctr_bits, dtype=xp.uint8))

    def decode_batch(self, lead_syndrome, ctr_syndrome,
                     backend: BackendLike = None) -> "BatchDecode":
        """Classify every block of every trial in one vectorized pass.

        Input planes are ``(B, m, b, b)``; the result holds one status
        code per ``(trial, block_row, block_col)`` plus the syndrome
        positions needed to apply corrections (see :class:`BatchDecode`).
        """
        xp = get_backend(backend).xp
        lead_syndrome = xp.asarray(lead_syndrome, dtype=xp.uint8)
        ctr_syndrome = xp.asarray(ctr_syndrome, dtype=xp.uint8)
        lead_ones = lead_syndrome.sum(axis=1, dtype=xp.int64)
        ctr_ones = ctr_syndrome.sum(axis=1, dtype=xp.int64)
        status = xp.full(lead_ones.shape, BATCH_UNCORRECTABLE, dtype=xp.uint8)
        status[(lead_ones == 0) & (ctr_ones == 0)] = BATCH_NO_ERROR
        status[(lead_ones == 1) & (ctr_ones == 1)] = BATCH_DATA_ERROR
        status[(lead_ones == 1) & (ctr_ones == 0)] = BATCH_LEAD_CHECK_ERROR
        status[(lead_ones == 0) & (ctr_ones == 1)] = BATCH_CTR_CHECK_ERROR
        return BatchDecode(
            m=self.grid.m,
            status=status,
            lead_index=xp.argmax(lead_syndrome, axis=1),
            ctr_index=xp.argmax(ctr_syndrome, axis=1),
        )

    def syndrome_batch_packed(self, words, lead_words, ctr_words,
                              backend: BackendLike = None) -> Tuple:
        """Packed syndrome planes: stored words XOR fresh packed parity.

        ``words`` is the ``(W, n, n)`` packed data stack; ``lead_words``
        / ``ctr_words`` are ``(W, m, b, b)`` stored check-bit words. The
        result has the check-plane shape, 64 trials per word.
        """
        xp = get_backend(backend).xp
        lead, ctr = self.encode_batch_packed(words, backend=backend)
        return (lead ^ xp.asarray(lead_words, dtype=xp.uint64),
                ctr ^ xp.asarray(ctr_words, dtype=xp.uint64))

    def decode_batch_packed(self, lead_syndrome, ctr_syndrome,
                            backend: BackendLike = None,
                            kernels: KernelsLike = None
                            ) -> "PackedBatchDecode":
        """Bit-parallel classification of packed syndrome planes.

        Where :meth:`decode_batch` counts syndrome ones with an integer
        ``sum`` per trial, the packed decoder runs a carry-save sideways
        counter over the ``m`` diagonal planes
        (:func:`repro.utils.bitpack.decode_status_masks`, fused on the
        compiled kernel tier), classifying 64 trials per word:

        * count 0 in both planes          -> ``no_error``
        * exactly 1 in both               -> ``data_error``
        * exactly 1 leading / 0 counter   -> ``lead_check``
        * 0 leading / exactly 1 counter   -> ``ctr_check``
        * 2+ anywhere                     -> ``uncorrectable``

        See :class:`PackedBatchDecode` for the tail-padding rule.
        """
        be = get_backend(backend)
        xp = be.xp
        lead_syndrome = xp.asarray(lead_syndrome, dtype=xp.uint64)
        ctr_syndrome = xp.asarray(ctr_syndrome, dtype=xp.uint64)
        no_error, data_error, lead_check, ctr_check, uncorrectable = \
            decode_status_masks(lead_syndrome, ctr_syndrome, backend=be,
                                kernels=kernels)
        return PackedBatchDecode(
            m=self.grid.m,
            lead_syndrome=lead_syndrome,
            ctr_syndrome=ctr_syndrome,
            no_error=no_error,
            data_error=data_error,
            lead_check=lead_check,
            ctr_check=ctr_check,
            uncorrectable=uncorrectable,
        )

    # ------------------------------------------------------------------ #
    # Code parameters
    # ------------------------------------------------------------------ #

    @property
    def data_bits_per_block(self) -> int:
        """m^2 protected data bits per block."""
        return self.grid.cells_per_block

    @property
    def check_bits_per_block(self) -> int:
        """2m check-bits per block."""
        return self.grid.check_bits_per_block

    @property
    def overhead_fraction(self) -> float:
        """Storage overhead 2m / m^2 = 2/m (paper Sec. III trade-off)."""
        return self.check_bits_per_block / self.data_bits_per_block
