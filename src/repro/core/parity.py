"""Parity primitives and the 8-NOR XOR3 microprogram.

The CMEM's only arithmetic is XOR3 (paper Sec. IV: "XOR3 is performed with
8 MAGIC NOR operations"). Building XOR from NOR the standard way::

    XOR2(a, b):  t1 = NOR(a, b); t2 = NOR(a, t1); t3 = NOR(b, t1)
                 x  = NOR(t2, t3)                       # 4 NOR ops

    XOR3(a, b, c) = XOR2(XOR2(a, b), c)                 # 8 NOR ops

uses 8 gates and 8 intermediate/output cells on top of the 3 input cells —
11 cells per bit-slice, which is exactly the ``11`` in Table II's
processing-crossbar expression ``2 x 11 x k x n``.

This module provides both the direct boolean/vectorized XOR3 (used by the
behavioral ECC model) and the symbolic microprogram (executed on real
simulated crossbars by the processing-crossbar model and verified
exhaustively in the tests).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

#: Cell layout of the XOR3 bit-slice: indices into an 11-cell column.
XOR3_INPUT_CELLS = (0, 1, 2)
#: (output_cell, (input_cells...)) steps; each step is one MAGIC NOR.
XOR3_MICROPROGRAM: Tuple[Tuple[int, Tuple[int, ...]], ...] = (
    (3, (0, 1)),   # t1 = NOR(a, b)
    (4, (0, 3)),   # t2 = NOR(a, t1)
    (5, (1, 3)),   # t3 = NOR(b, t1)
    (6, (4, 5)),   # x  = a XOR b
    (7, (6, 2)),   # u1 = NOR(x, c)
    (8, (6, 7)),   # u2 = NOR(x, u1)
    (9, (2, 7)),   # u3 = NOR(c, u1)
    (10, (8, 9)),  # y  = x XOR c = a XOR b XOR c
)
XOR3_CELL_COUNT = 11
XOR3_RESULT_CELL = 10
XOR3_NOR_OPS = len(XOR3_MICROPROGRAM)


def xor3(a, b, c):
    """Vectorized XOR of three bit arrays (or scalars)."""
    return np.bitwise_xor(np.bitwise_xor(np.asarray(a, dtype=np.uint8),
                                         np.asarray(b, dtype=np.uint8)),
                          np.asarray(c, dtype=np.uint8))


def xor3_by_nor(a: int, b: int, c: int) -> int:
    """Evaluate XOR3 by literally running the NOR microprogram.

    This is the reference implementation the processing-crossbar hardware
    model is tested against; it exists to prove the microprogram computes
    what the behavioral model assumes.
    """
    cells = [0] * XOR3_CELL_COUNT
    cells[0], cells[1], cells[2] = int(a), int(b), int(c)
    for out, ins in XOR3_MICROPROGRAM:
        cells[out] = 0 if any(cells[i] for i in ins) else 1
    return cells[XOR3_RESULT_CELL]


def parity_along_leading(block: np.ndarray) -> np.ndarray:
    """Per-leading-diagonal parity vector of an ``m x m`` block.

    ``result[d] = XOR of block[r, c] for all (r + c) mod m == d``.
    """
    m = block.shape[0]
    if block.shape != (m, m):
        raise ValueError(f"block must be square, got {block.shape}")
    r = np.arange(m)[:, None]
    c = np.arange(m)[None, :]
    idx = (r + c) % m
    out = np.zeros(m, dtype=np.uint8)
    np.bitwise_xor.at(out, idx.ravel(), np.asarray(block, dtype=np.uint8).ravel())
    return out


def parity_along_counter(block: np.ndarray) -> np.ndarray:
    """Per-counter-diagonal parity vector of an ``m x m`` block.

    ``result[d] = XOR of block[r, c] for all (r - c) mod m == d``.
    """
    m = block.shape[0]
    if block.shape != (m, m):
        raise ValueError(f"block must be square, got {block.shape}")
    r = np.arange(m)[:, None]
    c = np.arange(m)[None, :]
    idx = (r - c) % m
    out = np.zeros(m, dtype=np.uint8)
    np.bitwise_xor.at(out, idx.ravel(), np.asarray(block, dtype=np.uint8).ravel())
    return out


def parity_along_horizontal(block: np.ndarray) -> np.ndarray:
    """Per-row parity of a block: the strawman scheme of paper Fig. 2(a).

    Kept for the ablation study — Theta(1) to maintain under row-parallel
    operations but Theta(n) under column-parallel ones, which is exactly
    why the paper rejects it.
    """
    return np.bitwise_xor.reduce(np.asarray(block, dtype=np.uint8), axis=1)
