"""Storage model for diagonal check-bits.

Logically the store is two parity planes, each indexed
``[diagonal_index, block_row, block_col]``:

* ``lead[d, br, bc]`` — parity of leading diagonal ``d`` of block (br, bc);
* ``ctr[d, br, bc]``  — parity of counter diagonal ``d`` of block (br, bc).

Physically (paper Sec. IV-A.1) the check-bits live in ``m`` check-bit
crossbars of ``(n/m) x (n/m)`` cells each, where crossbar ``i`` holds the
check-bits of the ``i``-th diagonal of every block, addressed as cell
``(a, b)`` = the block ``a`` blocks from the left and ``b`` from the top.
:meth:`crossbar_view` exposes that layout so the architecture model can
place the planes into real simulated crossbars; both views share storage.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.blocks import BlockGrid
from repro.utils.validation import check_index


class CheckStore:
    """In-memory model of all check-bits of one protected crossbar."""

    def __init__(self, grid: BlockGrid):
        self.grid = grid
        b = grid.blocks_per_side
        self._lead = np.zeros((grid.m, b, b), dtype=np.uint8)
        self._ctr = np.zeros((grid.m, b, b), dtype=np.uint8)
        self._lead_writes = np.zeros((grid.m, b, b), dtype=np.int64)
        self._ctr_writes = np.zeros((grid.m, b, b), dtype=np.int64)
        self.total_flips = 0

    # ------------------------------------------------------------------ #
    # Plane access (logical layout)
    # ------------------------------------------------------------------ #

    @property
    def lead(self) -> np.ndarray:
        """Leading-diagonal parity plane ``[d, block_row, block_col]``."""
        return self._lead

    @property
    def ctr(self) -> np.ndarray:
        """Counter-diagonal parity plane ``[d, block_row, block_col]``."""
        return self._ctr

    def block_bits(self, block_row: int, block_col: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(leading[m], counter[m])`` check-bit vectors of one block."""
        self._check_block(block_row, block_col)
        return (self._lead[:, block_row, block_col].copy(),
                self._ctr[:, block_row, block_col].copy())

    def set_block_bits(self, block_row: int, block_col: int,
                       lead: np.ndarray, ctr: np.ndarray) -> None:
        """Overwrite one block's check-bit vectors (e.g. on block reset)."""
        self._check_block(block_row, block_col)
        self._lead[:, block_row, block_col] = np.asarray(lead, dtype=np.uint8)
        self._ctr[:, block_row, block_col] = np.asarray(ctr, dtype=np.uint8)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def toggle(self, plane: str, d: int, block_row: int, block_col: int) -> None:
        """XOR ``1`` into a single check-bit (continuous-update primitive)."""
        self._check_block(block_row, block_col)
        check_index("d", d, self.grid.m)
        if plane == "leading":
            self._lead[d, block_row, block_col] ^= 1
            self._lead_writes[d, block_row, block_col] += 1
        else:
            self._ctr[d, block_row, block_col] ^= 1
            self._ctr_writes[d, block_row, block_col] += 1

    def toggle_many(self, lead_d: np.ndarray, ctr_d: np.ndarray,
                    block_rows: np.ndarray, block_cols: np.ndarray) -> None:
        """Vectorized toggle of (leading, counter) pairs for changed bits.

        All four index arrays must be equal length; entry ``i`` toggles
        ``lead[lead_d[i], block_rows[i], block_cols[i]]`` and the matching
        counter bit. ``bitwise_xor.at`` handles repeated indices correctly
        (an even number of toggles of the same check-bit cancels out).
        """
        np.bitwise_xor.at(self._lead, (lead_d, block_rows, block_cols),
                          np.uint8(1))
        np.bitwise_xor.at(self._ctr, (ctr_d, block_rows, block_cols),
                          np.uint8(1))
        np.add.at(self._lead_writes, (lead_d, block_rows, block_cols), 1)
        np.add.at(self._ctr_writes, (ctr_d, block_rows, block_cols), 1)

    def write_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-check-bit update counts (endurance telemetry): the
        ``(leading, counter)`` count planes."""
        return self._lead_writes.copy(), self._ctr_writes.copy()

    def flip(self, plane: str, d: int, block_row: int, block_col: int) -> None:
        """Soft error injected *into a check-bit* (check memory is also
        made of memristors and is equally vulnerable)."""
        self.toggle(plane, d, block_row, block_col)
        self.total_flips += 1

    # ------------------------------------------------------------------ #
    # Physical layout view
    # ------------------------------------------------------------------ #

    def crossbar_view(self, plane: str, d: int) -> np.ndarray:
        """Check-bit crossbar ``d`` in the paper's (a, b) layout.

        ``view[a, b]`` is the check-bit for diagonal ``d`` of the block
        ``a`` blocks from the left (block_col = a) and ``b`` blocks from
        the top (block_row = b). Returns a transposed *view* (shared
        memory) of the logical plane.
        """
        check_index("d", d, self.grid.m)
        source = self._lead if plane == "leading" else self._ctr
        return source[d].T

    @property
    def total_bits(self) -> int:
        """Total number of check-bits: ``2 * m * (n/m)^2`` (Table II)."""
        return int(self._lead.size + self._ctr.size)

    def copy(self) -> "CheckStore":
        """Deep copy (used by campaigns to snapshot golden state)."""
        clone = CheckStore(self.grid)
        clone._lead[:] = self._lead
        clone._ctr[:] = self._ctr
        return clone

    def _check_block(self, block_row: int, block_col: int) -> None:
        check_index("block_row", block_row, self.grid.blocks_per_side)
        check_index("block_col", block_col, self.grid.blocks_per_side)
