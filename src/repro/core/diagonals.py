"""Wrap-around diagonal index arithmetic (paper Fig. 2(b)/(c)).

Block-local coordinates ``(r, c)`` with ``0 <= r, c < m``:

* the **leading** diagonal (bottom-left to top-right) containing the cell
  has index ``(r + c) mod m``;
* the **counter** diagonal (bottom-right to top-left) has index
  ``(r - c) mod m``.

Because consecutive cells of a row lie on consecutive leading diagonals,
aligning a row with the per-diagonal check-bits is a *barrel shift by the
column index modulo m* — the pattern of paper Fig. 2(c) that the shifter
hardware of Sec. IV-B exploits.

``m`` must be odd: the map ``(r, c) -> (r+c mod m, r-c mod m)`` is a
bijection iff 2 is invertible modulo ``m`` (paper footnote 1). With
``inv2 = (m + 1) / 2`` the inverse map is::

    r = (lead + ctr) * inv2 mod m
    c = (lead - ctr) * inv2 mod m
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.validation import check_index, check_odd, check_positive


def leading_index(r: int, c: int, m: int) -> int:
    """Leading-diagonal index of block-local cell ``(r, c)``."""
    return (r + c) % m


def counter_index(r: int, c: int, m: int) -> int:
    """Counter-diagonal index of block-local cell ``(r, c)``."""
    return (r - c) % m


def solve_position(lead: int, ctr: int, m: int) -> Tuple[int, int]:
    """Invert the diagonal map: the unique cell on both diagonals.

    Raises if ``m`` is even (the map is then not a bijection and two
    diagonals can intersect twice — paper footnote 1).
    """
    check_odd("m", m)
    check_index("lead", lead, m)
    check_index("ctr", ctr, m)
    inv2 = (m + 1) // 2  # inverse of 2 modulo odd m
    r = ((lead + ctr) * inv2) % m
    c = ((lead - ctr) * inv2) % m
    return r, c


def diagonal_cells(index: int, m: int, kind: str = "leading") -> list[Tuple[int, int]]:
    """All block-local cells on the given wrap-around diagonal.

    ``kind`` is ``"leading"`` or ``"counter"``. The list has exactly ``m``
    cells, one per row, which is why a row-parallel operation can touch at
    most one cell of any diagonal.
    """
    check_positive("m", m)
    check_index("index", index, m)
    if kind == "leading":
        return [(r, (index - r) % m) for r in range(m)]
    if kind == "counter":
        return [(r, (r - index) % m) for r in range(m)]
    raise ValueError(f"kind must be 'leading' or 'counter', got {kind!r}")


def leading_index_matrix(m: int) -> np.ndarray:
    """``m x m`` matrix of leading-diagonal indices (vectorized form)."""
    r = np.arange(m)[:, None]
    c = np.arange(m)[None, :]
    return (r + c) % m


def counter_index_matrix(m: int) -> np.ndarray:
    """``m x m`` matrix of counter-diagonal indices (vectorized form)."""
    r = np.arange(m)[:, None]
    c = np.arange(m)[None, :]
    return (r - c) % m


def row_shift_pattern(row: int, m: int) -> int:
    """Barrel-shift amount that maps columns of ``row`` to leading indices.

    For a cell in block-local row ``r`` and column ``c``, the leading index
    is ``(r + c) mod m``; reading an entire row therefore needs a rotation
    by ``r`` to land each bit at its diagonal slot (paper Fig. 2(c)).
    """
    check_positive("m", m)
    return row % m


def iter_diagonals(m: int) -> Iterator[Tuple[str, int]]:
    """Iterate all ``2m`` diagonals of a block as ``(kind, index)`` pairs."""
    for d in range(m):
        yield ("leading", d)
    for d in range(m):
        yield ("counter", d)
