"""The paper's primary contribution: diagonal-parity ECC for MAGIC PIM.

An ``n x n`` crossbar is partitioned into an imaginary grid of ``m x m``
blocks (``m`` odd). Every block keeps ``2m`` parity check-bits: one per
*leading* wrap-around diagonal (cells with ``(r + c) mod m`` constant) and
one per *counter* wrap-around diagonal (``(r - c) mod m`` constant). Any
row- or column-parallel MAGIC operation touches at most one cell of any
diagonal in any block, so parity can be maintained *continuously* with a
single XOR3 per affected diagonal (``check <- check ^ old ^ new``), and a
single-bit error leaves a unique (leading, counter) signature that decodes
to the exact cell.
"""

from repro.core.blocks import BlockGrid
from repro.core.checkstore import CheckStore
from repro.core.code import (
    BatchDecode,
    CheckBitError,
    DataError,
    DecodeOutcome,
    DecodeStatus,
    DiagonalParityCode,
    NoError,
    PackedBatchDecode,
    Uncorrectable,
)
from repro.core.diagonals import (
    counter_index,
    diagonal_cells,
    leading_index,
    solve_position,
)
from repro.core.parity import (
    XOR3_CELL_COUNT,
    XOR3_MICROPROGRAM,
    XOR3_RESULT_CELL,
    xor3,
    xor3_by_nor,
)
from repro.core.updater import ContinuousUpdater
from repro.core.checker import (
    BatchSweepReport,
    BlockChecker,
    CheckReport,
    PackedSweepReport,
    check_all_batched,
    check_all_batched_packed,
)

__all__ = [
    "BlockGrid",
    "CheckStore",
    "DiagonalParityCode",
    "BatchDecode",
    "PackedBatchDecode",
    "DecodeOutcome",
    "DecodeStatus",
    "NoError",
    "DataError",
    "CheckBitError",
    "Uncorrectable",
    "leading_index",
    "counter_index",
    "solve_position",
    "diagonal_cells",
    "xor3",
    "xor3_by_nor",
    "XOR3_MICROPROGRAM",
    "XOR3_CELL_COUNT",
    "XOR3_RESULT_CELL",
    "ContinuousUpdater",
    "BlockChecker",
    "CheckReport",
    "BatchSweepReport",
    "PackedSweepReport",
    "check_all_batched",
    "check_all_batched_packed",
]
