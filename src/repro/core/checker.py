"""ECC checking and correction flows (paper Sec. III / IV).

Two check triggers exist in the proposed design:

* **specific checks** on the blocks holding a function's inputs, performed
  before the function executes;
* **periodic full-memory checks** (every ``T = 24 h`` in the paper's
  analysis) to cover rarely-accessed data.

The checker operates on the behavioral state (crossbar contents + check
store); :mod:`repro.arch` charges the corresponding cycles. Corrections are
written back with observers suspended — the check-bits of a block with a
single *data* error are already the parity of the corrected content, and a
faulty *check-bit* is simply rewritten in the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.blocks import BlockGrid
from repro.core.checkstore import CheckStore
from repro.core.code import (
    CheckBitError,
    DataError,
    DecodeOutcome,
    DecodeStatus,
    DiagonalParityCode,
    NoError,
    Uncorrectable,
)
from repro.errors import UncorrectableError
from repro.xbar.crossbar import CrossbarArray


@dataclass
class CheckReport:
    """Outcome of checking one block."""

    block_row: int
    block_col: int
    outcome: DecodeOutcome
    corrected: bool = False

    @property
    def status(self) -> DecodeStatus:
        """Decode status of this block's syndrome."""
        return self.outcome.status


@dataclass
class SweepReport:
    """Aggregate of a multi-block check sweep."""

    reports: List[CheckReport] = field(default_factory=list)

    @property
    def blocks_checked(self) -> int:
        return len(self.reports)

    @property
    def data_corrections(self) -> int:
        return sum(1 for r in self.reports
                   if r.status is DecodeStatus.DATA_ERROR and r.corrected)

    @property
    def check_bit_corrections(self) -> int:
        return sum(1 for r in self.reports
                   if r.status is DecodeStatus.CHECK_BIT_ERROR and r.corrected)

    @property
    def uncorrectable(self) -> List[CheckReport]:
        return [r for r in self.reports
                if r.status is DecodeStatus.UNCORRECTABLE]

    @property
    def clean(self) -> bool:
        """True when every checked block decoded to NO_ERROR."""
        return all(r.status is DecodeStatus.NO_ERROR for r in self.reports)


class BlockChecker:
    """Verifies and corrects blocks of a protected crossbar."""

    def __init__(self, grid: BlockGrid, code: DiagonalParityCode,
                 store: CheckStore, raise_on_uncorrectable: bool = False):
        self.grid = grid
        self.code = code
        self.store = store
        self.raise_on_uncorrectable = raise_on_uncorrectable

    # ------------------------------------------------------------------ #
    # Single block
    # ------------------------------------------------------------------ #

    def check_block(self, mem: CrossbarArray, block_row: int, block_col: int,
                    correct: bool = True) -> CheckReport:
        """Check (and by default correct) a single block."""
        rs, cs = self.grid.block_slice(block_row, block_col)
        block = mem.snapshot()[rs, cs]
        lead_bits, ctr_bits = self.store.block_bits(block_row, block_col)
        outcome = self.code.decode_block(block, lead_bits, ctr_bits)
        report = CheckReport(block_row, block_col, outcome)
        if isinstance(outcome, Uncorrectable) and self.raise_on_uncorrectable:
            raise UncorrectableError(
                f"block ({block_row},{block_col}) has an uncorrectable "
                f"multi-bit error", syndrome=outcome)
        if correct:
            report.corrected = self._apply_correction(mem, block_row,
                                                      block_col, outcome)
        return report

    def _apply_correction(self, mem: CrossbarArray, block_row: int,
                          block_col: int, outcome: DecodeOutcome) -> bool:
        if isinstance(outcome, DataError):
            row, col = self.grid.global_of(block_row, block_col,
                                           outcome.row, outcome.col)
            current = mem.read_bit(row, col)
            # The check-bits already encode the corrected value; suspend
            # observers so the continuous updater does not double-count.
            with mem.observers_suspended():
                mem.write_bit(row, col, 1 - current)
            return True
        if isinstance(outcome, CheckBitError):
            self.store.toggle(outcome.plane, outcome.index,
                              block_row, block_col)
            return True
        return False

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #

    def check_blocks(self, mem: CrossbarArray,
                     blocks: Sequence[tuple[int, int]],
                     correct: bool = True) -> SweepReport:
        """Check an explicit list of ``(block_row, block_col)`` pairs."""
        sweep = SweepReport()
        for br, bc in blocks:
            sweep.reports.append(self.check_block(mem, br, bc, correct))
        return sweep

    def check_block_row(self, mem: CrossbarArray, block_row: int,
                        block_cols: Optional[Sequence[int]] = None,
                        correct: bool = True) -> SweepReport:
        """Check a row of blocks (the function-input check of Sec. IV).

        ``block_cols`` restricts the sweep to the block-columns actually
        containing inputs; ``None`` checks the entire row of blocks.
        """
        if block_cols is None:
            block_cols = range(self.grid.blocks_per_side)
        return self.check_blocks(mem, [(block_row, bc) for bc in block_cols],
                                 correct)

    def check_all(self, mem: CrossbarArray, correct: bool = True) -> SweepReport:
        """Full-memory periodic check (paper: every ``T = 24`` hours)."""
        return self.check_blocks(mem, list(self.grid.iter_blocks()), correct)
