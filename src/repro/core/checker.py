"""ECC checking and correction flows (paper Sec. III / IV).

Two check triggers exist in the proposed design:

* **specific checks** on the blocks holding a function's inputs, performed
  before the function executes;
* **periodic full-memory checks** (every ``T = 24 h`` in the paper's
  analysis) to cover rarely-accessed data.

The checker operates on the behavioral state (crossbar contents + check
store); :mod:`repro.arch` charges the corresponding cycles. Corrections are
written back with observers suspended — the check-bits of a block with a
single *data* error are already the parity of the corrected content, and a
faulty *check-bit* is simply rewritten in the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.blocks import BlockGrid
from repro.core.checkstore import CheckStore
from repro.core.code import (
    BATCH_CTR_CHECK_ERROR,
    BATCH_DATA_ERROR,
    BATCH_LEAD_CHECK_ERROR,
    BATCH_NO_ERROR,
    BATCH_UNCORRECTABLE,
    CheckBitError,
    DataError,
    DecodeOutcome,
    DecodeStatus,
    DiagonalParityCode,
    NoError,
    Uncorrectable,
)
from repro.core.code import PackedBatchDecode
from repro.errors import UncorrectableError
from repro.utils.backend import ArrayBackend, BackendLike, get_backend
from repro.utils.bitpack import or_reduce_words, unpack_batch
from repro.utils.kernels import KernelsLike
from repro.xbar.crossbar import CrossbarArray


@dataclass
class CheckReport:
    """Outcome of checking one block."""

    block_row: int
    block_col: int
    outcome: DecodeOutcome
    corrected: bool = False

    @property
    def status(self) -> DecodeStatus:
        """Decode status of this block's syndrome."""
        return self.outcome.status


@dataclass
class SweepReport:
    """Aggregate of a multi-block check sweep."""

    reports: List[CheckReport] = field(default_factory=list)

    @property
    def blocks_checked(self) -> int:
        return len(self.reports)

    @property
    def data_corrections(self) -> int:
        return sum(1 for r in self.reports
                   if r.status is DecodeStatus.DATA_ERROR and r.corrected)

    @property
    def check_bit_corrections(self) -> int:
        return sum(1 for r in self.reports
                   if r.status is DecodeStatus.CHECK_BIT_ERROR and r.corrected)

    @property
    def uncorrectable(self) -> List[CheckReport]:
        return [r for r in self.reports
                if r.status is DecodeStatus.UNCORRECTABLE]

    @property
    def clean(self) -> bool:
        """True when every checked block decoded to NO_ERROR."""
        return all(r.status is DecodeStatus.NO_ERROR for r in self.reports)


class BlockChecker:
    """Verifies and corrects blocks of a protected crossbar."""

    def __init__(self, grid: BlockGrid, code: DiagonalParityCode,
                 store: CheckStore, raise_on_uncorrectable: bool = False):
        self.grid = grid
        self.code = code
        self.store = store
        self.raise_on_uncorrectable = raise_on_uncorrectable

    # ------------------------------------------------------------------ #
    # Single block
    # ------------------------------------------------------------------ #

    def check_block(self, mem: CrossbarArray, block_row: int, block_col: int,
                    correct: bool = True) -> CheckReport:
        """Check (and by default correct) a single block."""
        rs, cs = self.grid.block_slice(block_row, block_col)
        block = mem.snapshot()[rs, cs]
        lead_bits, ctr_bits = self.store.block_bits(block_row, block_col)
        outcome = self.code.decode_block(block, lead_bits, ctr_bits)
        report = CheckReport(block_row, block_col, outcome)
        if isinstance(outcome, Uncorrectable) and self.raise_on_uncorrectable:
            raise UncorrectableError(
                f"block ({block_row},{block_col}) has an uncorrectable "
                f"multi-bit error", syndrome=outcome)
        if correct:
            report.corrected = self._apply_correction(mem, block_row,
                                                      block_col, outcome)
        return report

    def _apply_correction(self, mem: CrossbarArray, block_row: int,
                          block_col: int, outcome: DecodeOutcome) -> bool:
        if isinstance(outcome, DataError):
            row, col = self.grid.global_of(block_row, block_col,
                                           outcome.row, outcome.col)
            current = mem.read_bit(row, col)
            # The check-bits already encode the corrected value; suspend
            # observers so the continuous updater does not double-count.
            with mem.observers_suspended():
                mem.write_bit(row, col, 1 - current)
            return True
        if isinstance(outcome, CheckBitError):
            self.store.toggle(outcome.plane, outcome.index,
                              block_row, block_col)
            return True
        return False

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #

    def check_blocks(self, mem: CrossbarArray,
                     blocks: Sequence[tuple[int, int]],
                     correct: bool = True) -> SweepReport:
        """Check an explicit list of ``(block_row, block_col)`` pairs."""
        sweep = SweepReport()
        for br, bc in blocks:
            sweep.reports.append(self.check_block(mem, br, bc, correct))
        return sweep

    def check_block_row(self, mem: CrossbarArray, block_row: int,
                        block_cols: Optional[Sequence[int]] = None,
                        correct: bool = True) -> SweepReport:
        """Check a row of blocks (the function-input check of Sec. IV).

        ``block_cols`` restricts the sweep to the block-columns actually
        containing inputs; ``None`` checks the entire row of blocks.
        """
        if block_cols is None:
            block_cols = range(self.grid.blocks_per_side)
        return self.check_blocks(mem, [(block_row, bc) for bc in block_cols],
                                 correct)

    def check_all(self, mem: CrossbarArray, correct: bool = True) -> SweepReport:
        """Full-memory periodic check (paper: every ``T = 24`` hours)."""
        return self.check_blocks(mem, list(self.grid.iter_blocks()), correct)


@dataclass
class BatchSweepReport:
    """Vectorized analogue of :class:`SweepReport` for ``B`` stacked trials.

    ``status`` is ``(B, b, b)`` of ``repro.core.code.BATCH_*`` codes, one
    per block of each trial; ``corrected`` records whether the sweep ran
    with corrections enabled (like ``CheckReport.corrected``, a
    read-only sweep reports zero corrections).
    """

    status: np.ndarray
    corrected: bool = True

    @property
    def trials(self) -> int:
        return int(self.status.shape[0])

    @property
    def blocks_checked(self) -> int:
        """Blocks checked across the whole batch."""
        return int(self.status.size)

    @property
    def data_corrections(self) -> np.ndarray:
        """Per-trial count of single-data-error corrections."""
        if not self.corrected:
            return np.zeros(self.trials, dtype=np.int64)
        return (self.status == BATCH_DATA_ERROR).sum(axis=(1, 2))

    @property
    def check_bit_corrections(self) -> np.ndarray:
        """Per-trial count of check-bit rewrites."""
        if not self.corrected:
            return np.zeros(self.trials, dtype=np.int64)
        return ((self.status == BATCH_LEAD_CHECK_ERROR)
                | (self.status == BATCH_CTR_CHECK_ERROR)).sum(axis=(1, 2))

    @property
    def uncorrectable_any(self) -> np.ndarray:
        """Per-trial flag: at least one block reported uncorrectable."""
        return (self.status == BATCH_UNCORRECTABLE).any(axis=(1, 2))

    @property
    def clean(self) -> np.ndarray:
        """Per-trial flag: every block decoded to NO_ERROR."""
        return (self.status == BATCH_NO_ERROR).all(axis=(1, 2))


def check_all_batched(grid: BlockGrid, code: DiagonalParityCode,
                      data, lead, ctr, correct: bool = True,
                      backend: BackendLike = None) -> BatchSweepReport:
    """Full-memory check of ``B`` stacked crossbars in one vectorized pass.

    ``data`` is ``(B, n, n)`` uint8; ``lead``/``ctr`` are the stored
    check-bit planes ``(B, m, b, b)``. With ``correct=True`` (the default)
    corrections are applied **in place**: single data errors are flipped in
    ``data``, single check-bit errors rewritten in ``lead``/``ctr`` —
    mirroring :meth:`BlockChecker.check_all` block by block. Blocks are
    independent (disjoint data cells and check-bits), so the vectorized
    all-at-once correction is equivalent to the scalar row-major sweep.

    The tensors live on ``backend`` (:mod:`repro.utils.backend`); pass
    arrays already created through the same handle.
    """
    m = grid.m
    xp = get_backend(backend).xp
    syn_lead, syn_ctr = code.syndrome_batch(data, lead, ctr, backend=backend)
    decoded = code.decode_batch(syn_lead, syn_ctr, backend=backend)
    if correct:
        # Single data errors: flip the located cell of each flagged block.
        t, br, bc = xp.nonzero(decoded.status == BATCH_DATA_ERROR)
        if t.size:
            local_r, local_c = decoded.data_error_positions()
            rows = br * m + local_r[t, br, bc]
            cols = bc * m + local_c[t, br, bc]
            data[t, rows, cols] ^= 1
        # Single check-bit errors: rewrite the faulty stored bit.
        t, br, bc = xp.nonzero(decoded.status == BATCH_LEAD_CHECK_ERROR)
        if t.size:
            lead[t, decoded.lead_index[t, br, bc], br, bc] ^= 1
        t, br, bc = xp.nonzero(decoded.status == BATCH_CTR_CHECK_ERROR)
        if t.size:
            ctr[t, decoded.ctr_index[t, br, bc], br, bc] ^= 1
    return BatchSweepReport(status=decoded.status, corrected=correct)


@dataclass
class PackedSweepReport:
    """Bit-sliced analogue of :class:`BatchSweepReport`.

    ``decode`` holds the word-level status masks
    (:class:`repro.core.code.PackedBatchDecode`); ``batch`` is the true
    trial count (the packed word tensors cover ``ceil(batch/64) * 64``
    bit lanes, the tail being padding). Per-trial views unpack on demand
    and always trim to ``batch``, so tail garbage never leaks out.
    """

    batch: int
    decode: PackedBatchDecode
    backend: ArrayBackend
    corrected: bool = True

    @property
    def trials(self) -> int:
        return int(self.batch)

    @property
    def blocks_checked(self) -> int:
        """Blocks checked across the whole batch."""
        shape = self.decode.no_error.shape
        return int(self.batch * shape[1] * shape[2])

    def _mask(self, words) -> np.ndarray:
        return unpack_batch(words, self.batch, backend=self.backend)

    @property
    def data_corrections(self) -> np.ndarray:
        """Per-trial count of single-data-error corrections."""
        if not self.corrected:
            return np.zeros(self.batch, dtype=np.int64)
        return self._mask(self.decode.data_error).sum(
            axis=(1, 2), dtype=np.int64)

    @property
    def check_bit_corrections(self) -> np.ndarray:
        """Per-trial count of check-bit rewrites."""
        if not self.corrected:
            return np.zeros(self.batch, dtype=np.int64)
        return (self._mask(self.decode.lead_check)
                + self._mask(self.decode.ctr_check)).sum(
            axis=(1, 2), dtype=np.int64)

    @property
    def uncorrectable_any(self) -> np.ndarray:
        """Per-trial flag: at least one block reported uncorrectable."""
        words = or_reduce_words(self.decode.uncorrectable, axis=(1, 2),
                                backend=self.backend)
        return self._mask(words).astype(bool)

    @property
    def clean(self) -> np.ndarray:
        """Per-trial flag: every block decoded to NO_ERROR."""
        words = or_reduce_words(~self.decode.no_error, axis=(1, 2),
                                backend=self.backend)
        return ~self._mask(words).astype(bool)

    def status_codes(self) -> np.ndarray:
        """``(B, b, b)`` uint8 ``BATCH_*`` codes (differential bridge)."""
        return self.decode.status_codes(self.batch, backend=self.backend)


def check_all_batched_packed(grid: BlockGrid, code: DiagonalParityCode,
                             words, lead, ctr, batch: int,
                             correct: bool = True,
                             backend: BackendLike = None,
                             kernels: KernelsLike = None
                             ) -> PackedSweepReport:
    """Full-memory check of a packed word stack, 64 trials per word.

    The bit-sliced analogue of :func:`check_all_batched`: ``words`` is
    the ``(W, n, n)`` uint64 data stack and ``lead``/``ctr`` the stored
    ``(W, m, b, b)`` check-bit words (:mod:`repro.utils.bitpack`
    layout); ``batch`` is the true trial count. With ``correct=True``
    corrections are applied **in place**, entirely bit-parallel:

    * a single data error at diagonal pair ``(dl, dc)`` resolves to one
      block-local cell, so for each of the ``m^2`` pairs the mask
      ``data_error & lead_syn[dl] & ctr_syn[dc]`` selects exactly the
      trials/blocks to flip at that cell — one strided XOR per pair;
    * a single check-bit error sits on the one set syndrome diagonal, so
      ``lead[:, d] ^= lead_check & lead_syn[:, d]`` rewrites it.

    Tail bits stay zero throughout (every correction mask is an AND of
    zero-padded syndromes), so padding lanes are never written.
    """
    m = grid.m
    be = get_backend(backend)
    syn_lead, syn_ctr = code.syndrome_batch_packed(words, lead, ctr,
                                                   backend=be)
    decoded = code.decode_batch_packed(syn_lead, syn_ctr, backend=be,
                                       kernels=kernels)
    if correct:
        inv2 = (m + 1) // 2
        for dl in range(m):
            for dc in range(m):
                mask = decoded.data_error \
                    & syn_lead[:, dl] & syn_ctr[:, dc]
                r = ((dl + dc) * inv2) % m
                c = ((dl - dc) * inv2) % m
                # words[:, r::m, c::m] is the (W, b, b) strided view of
                # block-local cell (r, c) across every block — a basic
                # slice, so the XOR lands in place.
                words[:, r::m, c::m] ^= mask
        for d in range(m):
            lead[:, d] ^= decoded.lead_check & syn_lead[:, d]
            ctr[:, d] ^= decoded.ctr_check & syn_ctr[:, d]
    return PackedSweepReport(batch=batch, decode=decoded, backend=be,
                             corrected=correct)
