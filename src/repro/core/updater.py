"""Continuous check-bit maintenance (paper Sec. III / IV).

The defining property of the diagonal placement: a row-parallel (or
column-parallel) MAGIC operation writes at most one cell per diagonal per
block, so every affected check-bit can be updated with one XOR3::

    check <- check XOR old_data XOR new_data

The :class:`ContinuousUpdater` is the behavioral model of that mechanism.
It attaches to a :class:`repro.xbar.CrossbarArray` as a write observer and
incrementally maintains a :class:`repro.core.CheckStore`; the
cycle/resource cost of doing this in hardware is modelled separately by
:mod:`repro.arch`.

Note the paper's "rare false positive" caveat (end of Sec. III): because
the update uses the *stored* old value, overwriting a cell that suffered an
undetected soft error bakes the error into the parity. The updater
reproduces that behaviour faithfully — see
``tests/core/test_updater.py::test_false_positive_corner_case``.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockGrid
from repro.core.checkstore import CheckStore


class ContinuousUpdater:
    """Maintains check-bits incrementally as data cells are written."""

    def __init__(self, grid: BlockGrid, store: CheckStore):
        if store.grid != grid:
            raise ValueError("CheckStore was built for a different grid")
        self.grid = grid
        self.store = store
        self.updates_applied = 0
        self.bits_changed = 0

    def on_write(self, rows: np.ndarray, cols: np.ndarray,
                 old: np.ndarray, new: np.ndarray) -> None:
        """Write-observer entry point (see ``CrossbarArray.add_write_observer``).

        Only cells whose value actually changed toggle parity — XOR of an
        unchanged bit is a no-op, mirroring how the hardware XOR3 of
        ``old == new`` leaves the check-bit untouched.
        """
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        changed = np.asarray(old, dtype=bool) ^ np.asarray(new, dtype=bool)
        if not changed.any():
            self.updates_applied += 1
            return
        r = rows[changed]
        c = cols[changed]
        m = self.grid.m
        lead_d = (r + c) % m
        ctr_d = (r - c) % m
        self.store.toggle_many(lead_d, ctr_d, r // m, c // m)
        self.updates_applied += 1
        self.bits_changed += int(r.size)

    def attach(self, crossbar) -> None:
        """Register this updater as a write observer of ``crossbar``."""
        crossbar.add_write_observer(self.on_write)

    def detach(self, crossbar) -> None:
        """Unregister from ``crossbar``."""
        crossbar.remove_write_observer(self.on_write)
