"""Alternative per-block codes, for comparison with the diagonal scheme.

The paper cites multidimensional codes (Shea & Wong) as the framework:
any two independent "dimensions" of parity give single-error correction
per block. The *natural* 2D instance is the row+column product code
(:class:`RowColParityCode`): m row parities + m column parities, error
at ``(r, c)`` signed by row ``r`` and column ``c``. It corrects exactly
the same single errors as the diagonal code — so why diagonals?

**Update cost under MAGIC parallelism.** A row-parallel MAGIC operation
writes one cell in every row — i.e. a *column* of the array. Per block:

* diagonal code: the m written cells lie on m *distinct* leading and m
  distinct counter diagonals — every affected check-bit sees exactly one
  changed data bit: one XOR3 each, Theta(1) issue.
* row+column code: the m written cells hit m distinct *row* parities
  (fine) but all belong to the *same column parity*, which must absorb
  the XOR of all m deltas — a Theta(m) reduction of ceil(m/2)
  sequential XOR3 gate issues per block per operation (the serialized
  fold of :func:`update_cost`, not the ceil(log3(m+1)) levels a
  balanced tree would need — MAGIC rewrites one accumulator bit, so
  the fold cannot be tree-shaped). Column-parallel operations mirror
  the problem onto row parities.
* horizontal word parity (paper Fig. 2(a)): Theta(n) for one of the two
  orientations.

So the gradient is Theta(n) -> Theta(m) -> Theta(1), and only the
diagonal placement achieves constant-time updates for *both* MAGIC
orientations. :func:`update_cost` quantifies this for the ablation
bench. A further difference: the product code needs no odd-m constraint
(row/column indices are directly the coordinates), which this module's
tests document.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.core.blocks import BlockGrid
from repro.core.code import (
    CheckBitError,
    DataError,
    DecodeOutcome,
    NoError,
    Uncorrectable,
)


class RowColParityCode:
    """Per-block row+column product parity (the natural 2D code)."""

    def __init__(self, grid: BlockGrid):
        self.grid = grid

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #

    def encode_block(self, block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_parities[m], col_parities[m])`` of an m x m block."""
        m = self.grid.m
        block = np.asarray(block, dtype=np.uint8)
        if block.shape != (m, m):
            raise ValueError(f"expected {m}x{m} block, got {block.shape}")
        return (np.bitwise_xor.reduce(block, axis=1),
                np.bitwise_xor.reduce(block, axis=0))

    def syndrome_block(self, block: np.ndarray, row_bits: np.ndarray,
                       col_bits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Stored check-bits XOR freshly computed parity."""
        rows, cols = self.encode_block(block)
        return (rows ^ np.asarray(row_bits, dtype=np.uint8),
                cols ^ np.asarray(col_bits, dtype=np.uint8))

    def decode(self, row_syndrome: np.ndarray,
               col_syndrome: np.ndarray) -> DecodeOutcome:
        """Classify a syndrome pair; same outcome taxonomy as the
        diagonal code (the planes are rows/columns instead)."""
        row_ones = np.flatnonzero(np.asarray(row_syndrome, dtype=np.uint8))
        col_ones = np.flatnonzero(np.asarray(col_syndrome, dtype=np.uint8))
        if row_ones.size == 0 and col_ones.size == 0:
            return NoError()
        if row_ones.size == 1 and col_ones.size == 1:
            return DataError(int(row_ones[0]), int(col_ones[0]))
        if row_ones.size == 1 and col_ones.size == 0:
            return CheckBitError("row", int(row_ones[0]))
        if col_ones.size == 1 and row_ones.size == 0:
            return CheckBitError("col", int(col_ones[0]))
        return Uncorrectable(tuple(int(x) for x in row_syndrome),
                             tuple(int(x) for x in col_syndrome))

    def decode_block(self, block: np.ndarray, row_bits: np.ndarray,
                     col_bits: np.ndarray) -> DecodeOutcome:
        """Syndrome + decode in one call."""
        return self.decode(*self.syndrome_block(block, row_bits, col_bits))


@dataclass(frozen=True)
class UpdateCost:
    """Per-block check-bit maintenance cost of one parallel MAGIC op."""

    scheme: str
    row_parallel_xor_ops: int   # op writes a column of the array
    col_parallel_xor_ops: int   # op writes a row of the array

    @property
    def worst_case(self) -> int:
        return max(self.row_parallel_xor_ops, self.col_parallel_xor_ops)


def update_cost(scheme: str, n: int, m: int) -> UpdateCost:
    """XOR3-issue count per block to absorb one parallel MAGIC op.

    ``scheme`` is ``"diagonal"``, ``"rowcol"``, or ``"horizontal"``.

    **Cost model (normative — the registry's per-code models cite
    it).** The unit is one *sequential XOR3 gate issue* per block: a
    MAGIC XOR3 cycle whose output rewrites a check-bit accumulator.
    Three rules compose every per-code number:

    * a check-bit absorbing ``w`` data deltas folds ``w + 1`` operands
      (the old parity plus the deltas) two at a time into that single
      accumulator — ``ceil(w/2)`` *serialized* issues, never a
      ``ceil(log3)``-level tree, because every step rewrites the same
      CMEM bit;
    * single-delta check-bits (``w = 1``) that are geometrically
      aligned with the written vector — one per plane row, as in the
      diagonal and row/column planes — share one plane-parallel issue,
      which is what makes the diagonal placement Theta(1); without
      such alignment (the matrix codes of
      :mod:`repro.core.registry`, the horizontal word parity across
      rows) each check-bit costs its own issue and the total is the
      *sum* of the folds;
    * distinct planes hold independent accumulators, so aligned
      planes update concurrently and the block cost is the *critical
      path* — the longest per-plane issue count (for ``rowcol`` the
      untouched-orientation plane's one shared issue hides behind the
      other plane's ``ceil(m/2)`` fold), maximized over write
      positions.
    """
    if scheme == "diagonal":
        # Every check-bit of both planes sees at most one delta.
        return UpdateCost("diagonal", 1, 1)
    if scheme == "rowcol":
        # One plane is fine; the other absorbs m deltas into one parity.
        reduction = math.ceil(m / 2)
        return UpdateCost("rowcol", reduction, reduction)
    if scheme == "horizontal":
        # Word parity: row-parallel ops touch one word-bit per word
        # (Theta(1)), column-parallel ops change one bit in each of the
        # n rows' words, each needing its own update (paper Fig. 2(a)).
        return UpdateCost("horizontal", 1, n)
    raise ValueError(f"unknown scheme {scheme!r}")
