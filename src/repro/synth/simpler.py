"""SIMPLER MAGIC synthesis (reimplementation of Ben-Hur et al., TCAD'20).

SIMPLER maps a NOR/NOT netlist into a *single crossbar row* so the same
function can execute in every row simultaneously (the throughput mode the
DAC'21 ECC paper builds on). The algorithm, as reimplemented here:

1. **Cell-usage (CU) labels.** ``CU(leaf) = 1``;
   ``CU(v) = max_i (CU(c_i) + i)`` with fanins sorted by descending CU —
   an estimate of how many cells evaluating ``v``'s cone needs when the
   highest-CU fanin is evaluated first.
2. **Ordering.** Output cones are processed in descending-CU order; within
   a cone, an iterative DFS visits fanins in descending-CU order and emits
   each gate post-order. This is the depth-first schedule that keeps the
   transient live set small.
3. **Allocation with reuse.** Every node's remaining-use count is tracked
   (gate fanouts; primary outputs are sticky and never freed). When a
   node's count reaches zero its cell is *freed* (dirty). New gates take
   clean cells; when none remain, one batched :class:`RowInit` cycle
   re-initializes all dirty cells at once (a parallel SET on the freed
   bitlines of the row) and they become clean.

Primary inputs occupy the first cells of the row. By default input cells
are reusable after their last read (``allow_input_reuse=True``) — the row
is a workspace and the authoritative input data lives elsewhere in the
memory; set it to ``False`` to model in-place, non-destructive execution.

The total cycle count — gates plus batched inits plus constant writes —
is the paper's *Baseline* column in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import MappingError
from repro.logic.norlist import NorNetlist
from repro.synth.program import MagicProgram, RowConst, RowInit, RowNor


@dataclass(frozen=True)
class SimplerConfig:
    """Tunables of the SIMPLER mapper.

    ``row_size`` defaults to the paper's crossbar width ``n = 1020``.

    ``order`` selects the gate emission order:

    * ``"cu-dfs"`` — SIMPLER's cell-usage-guided depth-first order
      (default);
    * ``"topological"`` — netlist construction order, which follows the
      generator's natural wavefront (e.g. column-by-column in a popcount
      tree) and can beat CU-DFS on extremely input-heavy circuits;
    * ``"auto"`` — try CU-DFS, fall back to topological if the row
      overflows (what the ``voter`` benchmark needs at ``n = 1020``,
      where 1001 inputs leave only 19 workspace cells).
    """

    row_size: int = 1020
    allow_input_reuse: bool = True
    order: str = "auto"
    #: For ``order="list"``: minimum emission distance kept between two
    #: output-writing (critical) gates when other ready gates exist.
    #: ``ceil(pc_occupancy / k)`` spaces criticals so each finds a free
    #: processing crossbar (see repro.synth.ecc_scheduler).
    critical_spacing: int = 8


def compute_cell_usage(netlist: NorNetlist) -> List[int]:
    """CU labels for every node (see module docstring)."""
    cu = [1] * netlist.num_nodes
    for gi, gate in enumerate(netlist.gates):
        nid = netlist.num_inputs + gi
        if not gate.fanins:
            cu[nid] = 1
            continue
        kids = sorted((cu[f] for f in gate.fanins), reverse=True)
        cu[nid] = max(c + i for i, c in enumerate(kids))
    return cu


def _execution_order(netlist: NorNetlist, cu: List[int]) -> List[int]:
    """Gate emission order: post-order DFS, high-CU fanins first."""
    emitted = [False] * netlist.num_nodes
    for i in range(netlist.num_inputs):
        emitted[i] = True
    order: List[int] = []
    roots = sorted({nid for _, nid in netlist.outputs},
                   key=lambda nid: cu[nid], reverse=True)
    for root in roots:
        if emitted[root]:
            continue
        stack: List[tuple[int, bool]] = [(root, False)]
        while stack:
            nid, expanded = stack.pop()
            if emitted[nid]:
                continue
            if expanded:
                emitted[nid] = True
                order.append(nid)
                continue
            stack.append((nid, True))
            gate = netlist.gate(nid)
            # Push lowest-CU fanin first so the highest-CU one is
            # evaluated first (LIFO stack).
            for f in sorted(gate.fanins, key=lambda x: cu[x]):
                if not emitted[f]:
                    stack.append((f, False))
    return order


class _RowAllocator:
    """Clean/dirty cell pools with batched re-initialization."""

    def __init__(self, row_size: int, reserved: int, program: MagicProgram):
        self.program = program
        self.clean: List[int] = list(range(row_size - 1, reserved - 1, -1))
        self.dirty: List[int] = []
        self.live_count = reserved
        self.peak_live = reserved

    def allocate(self) -> int:
        """Take a clean cell, batching an init cycle if required."""
        if not self.clean:
            if not self.dirty:
                raise MappingError(
                    "row exhausted: live cell set exceeds the row size "
                    f"({self.program.row_size}); increase row_size or "
                    "reduce the circuit")
            self.program.ops.append(RowInit(tuple(sorted(self.dirty))))
            self.clean = sorted(self.dirty, reverse=True)
            self.dirty = []
        cell = self.clean.pop()
        self.live_count += 1
        self.peak_live = max(self.peak_live, self.live_count)
        return cell

    def free(self, cell: int) -> None:
        """Return a cell to the dirty pool (needs init before reuse)."""
        self.dirty.append(cell)
        self.live_count -= 1


def _list_order(netlist: NorNetlist, cu: List[int],
                spacing: int) -> List[int]:
    """Ready-list scheduling that spaces out critical (output) gates.

    Kahn-style: a gate becomes *ready* once all fanins are emitted.
    Among ready gates the scheduler prefers non-output gates while the
    critical cooldown is active (fewer than ``spacing`` emissions since
    the last output gate), falling back to output gates when nothing
    else is ready. Ties break toward higher CU (the SIMPLER heuristic,
    keeping the live set compact). This is the ECC-aware emission order:
    the dense critical bursts of circuits like ``dec`` get interleaved
    with interior gates so fewer processing crossbars sustain the same
    latency.
    """
    import heapq

    is_output = [False] * netlist.num_nodes
    for _, nid in netlist.outputs:
        is_output[nid] = True

    needed = [False] * netlist.num_nodes
    stack = [nid for _, nid in netlist.outputs]
    while stack:
        nid = stack.pop()
        if needed[nid] or netlist.is_input(nid):
            continue
        needed[nid] = True
        stack.extend(netlist.gate(nid).fanins)

    pending = {}
    consumers: List[List[int]] = [[] for _ in range(netlist.num_nodes)]
    for nid in range(netlist.num_inputs, netlist.num_nodes):
        if not needed[nid]:
            continue
        gate_fanins = [f for f in netlist.gate(nid).fanins
                       if not netlist.is_input(f)]
        pending[nid] = len(set(gate_fanins))
        for f in set(gate_fanins):
            consumers[f].append(nid)

    ready_plain: list = []   # (-cu, nid) min-heap -> highest CU first
    ready_output: list = []
    for nid, count in pending.items():
        if count == 0:
            heapq.heappush(ready_output if is_output[nid] else ready_plain,
                           (-cu[nid], nid))

    order: List[int] = []
    since_critical = spacing  # no cooldown at the start
    while ready_plain or ready_output:
        take_output = False
        if not ready_plain:
            take_output = True
        elif ready_output and since_critical >= spacing:
            take_output = True
        source = ready_output if take_output else ready_plain
        _, nid = heapq.heappop(source)
        order.append(nid)
        since_critical = 0 if is_output[nid] else since_critical + 1
        for consumer in consumers[nid]:
            pending[consumer] -= 1
            if pending[consumer] == 0:
                heapq.heappush(
                    ready_output if is_output[consumer] else ready_plain,
                    (-cu[consumer], consumer))
    return order


def _topological_order(netlist: NorNetlist) -> List[int]:
    """Construction order restricted to nodes reachable from outputs."""
    needed = [False] * netlist.num_nodes
    stack = [nid for _, nid in netlist.outputs]
    while stack:
        nid = stack.pop()
        if needed[nid] or netlist.is_input(nid):
            continue
        needed[nid] = True
        stack.extend(netlist.gate(nid).fanins)
    return [nid for nid in range(netlist.num_inputs, netlist.num_nodes)
            if needed[nid]]


def synthesize(netlist: NorNetlist,
               config: Optional[SimplerConfig] = None) -> MagicProgram:
    """Map ``netlist`` to a single-row :class:`MagicProgram`.

    Raises :class:`repro.errors.MappingError` when the live set cannot fit
    in the configured row (after exhausting the configured order
    strategies — see :class:`SimplerConfig`).
    """
    config = config or SimplerConfig()
    if netlist.num_inputs >= config.row_size:
        raise MappingError(
            f"{netlist.num_inputs} inputs do not fit in a row of "
            f"{config.row_size} cells")
    if config.order == "auto":
        from dataclasses import replace
        try:
            return synthesize(netlist, replace(config, order="cu-dfs"))
        except MappingError:
            return synthesize(netlist, replace(config, order="topological"))
    if config.order not in ("cu-dfs", "topological", "list"):
        raise MappingError(f"unknown order strategy {config.order!r}")

    program = MagicProgram(
        netlist=netlist,
        row_size=config.row_size,
        input_cells={i: i for i in range(netlist.num_inputs)},
        output_cells={},
    )
    # One opening cycle SET-initializes the whole workspace (every
    # non-input cell of the row) so that first-use cells are valid MAGIC
    # outputs; subsequent RowInit ops re-initialize only freed cells.
    program.ops.append(
        RowInit(tuple(range(netlist.num_inputs, config.row_size))))

    if config.order == "cu-dfs":
        cu = compute_cell_usage(netlist)
        order = _execution_order(netlist, cu)
    elif config.order == "list":
        cu = compute_cell_usage(netlist)
        order = _list_order(netlist, cu, config.critical_spacing)
    else:
        order = _topological_order(netlist)

    # Remaining-use counts: one per gate reference; outputs are sticky.
    refcount = [0] * netlist.num_nodes
    for gate in netlist.gates:
        for f in gate.fanins:
            refcount[f] += 1
    sticky = [False] * netlist.num_nodes
    for _, nid in netlist.outputs:
        sticky[nid] = True
    if not config.allow_input_reuse:
        for i in range(netlist.num_inputs):
            sticky[i] = True

    allocator = _RowAllocator(config.row_size, netlist.num_inputs, program)
    cell_of: Dict[int, int] = dict(program.input_cells)

    def consume(node: int) -> None:
        refcount[node] -= 1
        if refcount[node] == 0 and not sticky[node]:
            cell = cell_of.pop(node)
            allocator.free(cell)

    for nid in order:
        gate = netlist.gate(nid)
        out_cell = allocator.allocate()
        if gate.kind == "nor":
            in_cells = tuple(cell_of[f] for f in gate.fanins)
            program.ops.append(RowNor(out_cell, in_cells, nid, sticky[nid]))
            cell_of[nid] = out_cell
            for f in gate.fanins:
                consume(f)
        else:  # const0 / const1
            value = 1 if gate.kind == "const1" else 0
            program.ops.append(RowConst(out_cell, value, nid, sticky[nid]))
            cell_of[nid] = out_cell
        # Dead gate (no fanout, not an output): free immediately.
        if refcount[nid] == 0 and not sticky[nid]:
            allocator.free(cell_of.pop(nid))

    for name, nid in netlist.outputs:
        program.output_cells[name] = cell_of[nid]
    program.peak_live_cells = allocator.peak_live
    return program
