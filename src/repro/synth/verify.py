"""Program verification: linting and functional checking of row programs.

SIMPLER's output must satisfy MAGIC's physical contract — every NOR
output freshly initialized, every operand live — and compute the same
function as the netlist it came from. :func:`lint_program` checks the
contract structurally (no simulation needed); :func:`verify_program`
checks functional equivalence by executing on a simulated crossbar,
exhaustively for small input counts.

These are library features (not just test helpers) so users synthesizing
their own netlists can validate custom flows, e.g. after hand-editing a
serialized program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import MappingError
from repro.logic.verify import random_vectors
from repro.synth.executor import execute_program
from repro.synth.program import MagicProgram, RowConst, RowInit, RowNor
from repro.xbar.crossbar import CrossbarArray


@dataclass
class LintReport:
    """Structural findings of :func:`lint_program`."""

    violations: List[str] = field(default_factory=list)
    gate_ops: int = 0
    init_ops: int = 0
    cells_used: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations


def lint_program(program: MagicProgram) -> LintReport:
    """Check the MAGIC physical contract over a row program.

    Violations reported:

    * a NOR writing a cell that is not initialized (LRS) at that point;
    * a NOR reading a cell that holds no defined value;
    * an op referencing cells outside the row;
    * an output cell that is re-initialized after its final write.
    """
    report = LintReport()
    initialized: set = set()
    defined = set(program.input_cells.values())
    output_cells = set(program.output_cells.values())
    final_output_written: set = set()
    used: set = set(defined)

    for index, op in enumerate(program.ops):
        if isinstance(op, RowInit):
            report.init_ops += 1
            for cell in op.cells:
                if not 0 <= cell < program.row_size:
                    report.violations.append(
                        f"op {index}: init of out-of-row cell {cell}")
                if cell in final_output_written:
                    report.violations.append(
                        f"op {index}: re-initialization of output cell "
                        f"{cell} after its final write")
                initialized.add(cell)
                defined.discard(cell)
                used.add(cell)
        elif isinstance(op, RowNor):
            report.gate_ops += 1
            if op.out_cell not in initialized:
                report.violations.append(
                    f"op {index}: NOR writes uninitialized cell "
                    f"{op.out_cell}")
            for cell in op.in_cells:
                if cell not in defined:
                    report.violations.append(
                        f"op {index}: NOR reads undefined cell {cell}")
            initialized.discard(op.out_cell)
            defined.add(op.out_cell)
            used.add(op.out_cell)
            if op.is_output and op.out_cell in output_cells:
                final_output_written.add(op.out_cell)
        elif isinstance(op, RowConst):
            report.gate_ops += 1
            if not 0 <= op.cell < program.row_size:
                report.violations.append(
                    f"op {index}: const write outside row ({op.cell})")
            initialized.discard(op.cell)
            defined.add(op.cell)
            used.add(op.cell)
            if op.is_output and op.cell in output_cells:
                final_output_written.add(op.cell)

    for name, cell in program.output_cells.items():
        if cell not in defined:
            report.violations.append(
                f"output {name!r} cell {cell} holds no defined value "
                "at program end")
    report.cells_used = len(used)
    return report


def verify_program(program: MagicProgram,
                   trials: int = 32, seed: int = 0,
                   exhaustive_threshold: int = 10) -> Optional[str]:
    """Functional equivalence: program execution vs netlist evaluation.

    Exhaustive when the netlist has at most ``exhaustive_threshold``
    inputs, randomized otherwise. Returns ``None`` on success or a
    mismatch description.
    """
    netlist = program.netlist
    names = netlist.input_names
    k = len(names)
    if k <= exhaustive_threshold:
        total = 1 << k
        vectors = {name: np.zeros(total, dtype=bool) for name in names}
        for v in range(total):
            for i, name in enumerate(names):
                vectors[name][v] = bool((v >> i) & 1)
        lanes = total
    else:
        vectors = random_vectors(names, trials, seed)
        lanes = trials

    xbar = CrossbarArray(max(lanes, 1), program.row_size)
    outs = execute_program(program, xbar, rows=list(range(lanes)),
                           inputs=vectors)
    expected = netlist.evaluate(vectors)
    for name in expected:
        got = outs[name].astype(bool)
        exp = np.asarray(expected[name], dtype=bool)
        if not (got == exp).all():
            lane = int(np.nonzero(got != exp)[0][0])
            assignment = {nm: int(vectors[nm][lane]) for nm in names}
            return (f"output {name!r} mismatch at lane {lane}: got "
                    f"{int(got[lane])}, expected {int(exp[lane])} "
                    f"(inputs {assignment})")
    return None


def assert_program_valid(program: MagicProgram, trials: int = 32,
                         seed: int = 0) -> None:
    """Lint + verify, raising :class:`MappingError` on any failure."""
    lint = lint_program(program)
    if not lint.clean:
        raise MappingError("program lint failed: "
                           + "; ".join(lint.violations[:5]))
    message = verify_program(program, trials, seed)
    if message is not None:
        raise MappingError(f"program verification failed: {message}")
