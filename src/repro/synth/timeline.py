"""Schedule timelines: cycle-level visibility into the ECC schedule.

The aggregate numbers of :class:`EccScheduleResult` answer "how many
cycles"; this module answers "where did they go": a per-resource event
timeline (MEM, each processing crossbar, the CMEM port) for a scheduled
program, plus an ASCII Gantt rendering for small programs — the
debugging/teaching view of the Table I machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.synth.ecc_scheduler import EccTimingModel
from repro.synth.program import MagicProgram, RowConst, RowInit, RowNor


@dataclass(frozen=True)
class TimelineEvent:
    """One resource occupation interval."""

    resource: str        # "mem", "pc0".., "cmem-port", "checking"
    start: int
    end: int             # half-open
    kind: str            # "copy", "gate", "transfer", "xor3", ...
    note: str = ""


@dataclass
class ScheduleTimeline:
    """All events of one scheduled program."""

    events: List[TimelineEvent] = field(default_factory=list)
    total_cycles: int = 0

    def for_resource(self, resource: str) -> List[TimelineEvent]:
        """Events of one resource, in time order."""
        return sorted((e for e in self.events if e.resource == resource),
                      key=lambda e: e.start)

    def utilization(self, resource: str) -> float:
        """Busy fraction of a resource over the schedule length."""
        busy = sum(e.end - e.start for e in self.for_resource(resource))
        return busy / self.total_cycles if self.total_cycles else 0.0

    def render(self, width: int = 72, resources: Optional[List[str]] = None
               ) -> str:
        """ASCII Gantt chart (one row per resource, time left to right)."""
        if resources is None:
            resources = sorted({e.resource for e in self.events})
        scale = self.total_cycles / width if self.total_cycles else 1
        lines = [f"0{' ' * (width - len(str(self.total_cycles)) - 1)}"
                 f"{self.total_cycles}"]
        for resource in resources:
            row = [" "] * width
            for event in self.for_resource(resource):
                a = min(int(event.start / scale), width - 1)
                b = max(a + 1, min(math.ceil(event.end / scale), width))
                mark = event.kind[0].upper()
                for i in range(a, b):
                    row[i] = mark if row[i] == " " else "#"
            lines.append(f"{resource:10s}|{''.join(row)}|")
        return "\n".join(lines)


def build_timeline(program: MagicProgram,
                   timing: Optional[EccTimingModel] = None
                   ) -> ScheduleTimeline:
    """Re-run the greedy schedule, recording every resource interval.

    Mirrors :func:`repro.synth.ecc_scheduler.schedule_with_ecc` exactly
    (same greedy decisions, no forwarding) — asserted against it in the
    tests — while materializing the event list.
    """
    timing = timing or EccTimingModel()
    m = timing.block_size
    timeline = ScheduleTimeline()
    pc_free = [0] * timing.pc_count
    cmem_port_free = 0
    checking_free = 0

    def claim_pc(ready: int, occupancy: int, kind: str, note: str) -> int:
        idx = min(range(len(pc_free)), key=lambda i: pc_free[i])
        start = max(ready, pc_free[idx])
        pc_free[idx] = start + occupancy
        timeline.events.append(TimelineEvent(f"pc{idx}", start,
                                             start + occupancy, kind, note))
        return start

    num_inputs = len(program.input_cells)
    check_blocks = math.ceil(num_inputs / m) if num_inputs else 0
    mem_t = 0
    for blk in range(check_blocks):
        timeline.events.append(TimelineEvent(
            "mem", mem_t, mem_t + timing.copy_cycles(), "copy",
            f"input block {blk}"))
        mem_t += timing.copy_cycles()
        start = claim_pc(mem_t, timing.check_pc_occupancy(), "xor3",
                         f"check tree blk {blk}")
        done = start + timing.check_pc_occupancy()
        checking_start = max(checking_free, done)
        checking_free = checking_start + timing.syndrome_compare_cycles
        timeline.events.append(TimelineEvent(
            "checking", checking_start, checking_free, "syndrome",
            f"blk {blk}"))

    for op in program.ops:
        is_critical = isinstance(op, (RowNor, RowConst)) and op.is_output
        if not is_critical:
            timeline.events.append(TimelineEvent("mem", mem_t, mem_t + 1,
                                                 _op_kind(op)))
            mem_t += 1
            continue
        start = claim_pc(mem_t, timing.pc_occupancy, "update",
                         f"critical node {getattr(op, 'node_id', '?')}")
        timeline.events.append(TimelineEvent(
            "mem", start, start + 1 + timing.critical_extra_mem_cycles,
            "transfer", "old/gate/new"))
        port_ready = max(cmem_port_free, start + 1)
        cmem_port_free = port_ready + timing.cmem_port_cycles_per_update
        timeline.events.append(TimelineEvent(
            "cmem-port", port_ready, cmem_port_free, "port"))
        mem_t = start + 1 + timing.critical_extra_mem_cycles

    timeline.total_cycles = max([mem_t, checking_free] + pc_free)
    return timeline


def _op_kind(op) -> str:
    if isinstance(op, RowInit):
        return "init"
    if isinstance(op, RowConst):
        return "write"
    return "gate"
