"""ECC-extended scheduling of MAGIC programs (paper Sec. V-B, Table I).

The paper extends SIMPLER with "the additional operations required in the
proposed architecture (checking ECC on inputs and updating ECC for the
outputs)", scheduled greedily against MEM/CMEM availability. This module
reimplements that scheduler as an event-driven resource model.

Resources
---------
* **MEM** — the crossbar executing the function; strictly serial.
* **k processing crossbars (PCs)** — each handles the XOR3 pipeline of
  one in-flight ECC task.
* **CMEM port** — the connection-unit path into the check-bit crossbars
  (reads of stored check-bits, write-backs of updated ones).
* **checking crossbar** — syndrome-vs-zero evaluation for block checks.

Input checking (before function execution)
------------------------------------------
Function inputs sit in consecutive cells of one row, spanning
``ceil(PI / m)`` block-columns. Each containing block is verified by
copying its ``m`` rows into the CMEM through the shifters — ``m`` MEM
cycles per block, serialized on the MEM port because the per-diagonal
check-bit crossbars accept one ``n/m``-wide slice per cycle. The CMEM
side (XOR3 reduction tree of the copied rows plus the stored parity, then
the syndrome comparison in the checking crossbar) proceeds *off* the MEM
critical path in a processing crossbar. Function gates may start once
copies complete; they only stall later if a critical operation cannot
find a free PC.

This reproduces the dominant empirical structure of Table I::

    overhead ~ ceil(PI/m) * m  +  2 * PO  +  PC-contention stalls

Critical operations (output writes)
-----------------------------------
Every op that writes a primary-output value executes as the three-step
continuous update of Sec. IV: (1) one MEM cycle transferring the old
data-bits to a PC, (2) the MAGIC gate itself, (3) one MEM cycle
transferring the new data-bits — 2 extra MEM cycles versus the baseline.
The claimed PC stays busy for :attr:`EccTimingModel.pc_occupancy` cycles:

====  ==========================================================
 4    transfers in: old data, new data, old leading + counter
      check-bits through the connection unit
 2    initialization of the two XOR3 scratch groups
 16   two sequential 8-NOR XOR3 evaluations (leading plane, then
      counter plane — the shifters present one diagonal alignment
      at a time)
 2    write-backs of the two updated check-bits
====  ==========================================================

i.e. 24 cycles by default. With back-to-back critical operations the MEM
issues one every 3 cycles, so ``ceil(24 / 3) = 8`` PCs suffice for any
function — the paper's "at most eight processing crossbars" observation;
output-dense ``dec`` is exactly the benchmark that needs all 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SchedulingError
from repro.synth.program import MagicProgram, RowConst, RowInit, RowNor


@dataclass(frozen=True)
class EccTimingModel:
    """Cycle-cost parameters of the proposed architecture.

    Defaults follow the derivations in the module docstring; every value
    is exposed so ablation benches can sweep them.
    """

    block_size: int = 15           # m
    pc_count: int = 3              # k (paper's area case study uses 3)
    pc_occupancy: int = 24         # PC busy cycles per critical op
    critical_extra_mem_cycles: int = 2   # old + new data transfers
    cmem_port_cycles_per_update: int = 2  # check-bit read + write-back
    check_copy_cycles_per_block: Optional[int] = None  # default: m
    syndrome_compare_cycles: int = 2     # checking-crossbar evaluation
    xor3_cycles: int = 8                 # one XOR3 = 8 MAGIC NORs
    #: Paper footnote 3: "subsequent updates in the same block ...
    #: addressed using processing crossbar forwarding". When enabled, a
    #: critical op arriving within ``forwarding_window`` MEM cycles of
    #: the previous one may chain onto the same PC, skipping the
    #: check-bit write-back + re-read pair (``forwarding_savings``
    #: cycles shorter occupancy and earlier pipeline entry).
    enable_forwarding: bool = False
    forwarding_window: int = 6
    forwarding_savings: int = 4

    def copy_cycles(self) -> int:
        """MEM cycles to copy one block into the CMEM (default m)."""
        if self.check_copy_cycles_per_block is not None:
            return self.check_copy_cycles_per_block
        return self.block_size

    def check_tree_ops(self) -> int:
        """XOR3 count reducing m copied rows + stored parity to a syndrome.

        A ternary tree over ``m + 1`` operands needs ``ceil((m+1-1)/2)``
        XOR3 gates (each replaces three operands by one).
        """
        return math.ceil(self.block_size / 2)

    def check_pc_occupancy(self) -> int:
        """PC busy cycles for one block check's XOR3 reduction."""
        return self.check_tree_ops() * self.xor3_cycles


@dataclass
class EccScheduleResult:
    """Latency decomposition of one scheduled program."""

    baseline_cycles: int
    proposed_cycles: int
    check_blocks: int
    check_mem_cycles: int
    critical_ops: int
    critical_extra_mem_cycles: int
    pc_stall_cycles: int
    cmem_port_stall_cycles: int
    pc_count: int
    mem_finish: int
    commit_finish: int
    forwarded_ops: int = 0

    @property
    def overhead_cycles(self) -> int:
        """Proposed minus baseline cycles."""
        return self.proposed_cycles - self.baseline_cycles

    @property
    def overhead_pct(self) -> float:
        """Percentage latency overhead (the Table I metric)."""
        if self.baseline_cycles == 0:
            return 0.0
        return 100.0 * self.overhead_cycles / self.baseline_cycles

    def as_dict(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "baseline": self.baseline_cycles,
            "proposed": self.proposed_cycles,
            "overhead_pct": round(self.overhead_pct, 2),
            "check_blocks": self.check_blocks,
            "check_mem_cycles": self.check_mem_cycles,
            "critical_ops": self.critical_ops,
            "pc_stalls": self.pc_stall_cycles,
            "pc_count": self.pc_count,
        }


def schedule_with_ecc(program: MagicProgram,
                      timing: Optional[EccTimingModel] = None,
                      count_commit_tail: bool = False) -> EccScheduleResult:
    """Greedy schedule of a program under the proposed ECC architecture.

    Returns the latency decomposition; ``proposed_cycles`` is the MEM
    completion time by default (matching the paper's latency metric).
    With ``count_commit_tail=True`` it instead extends to the final
    check-bit write-back (full ECC commit).
    """
    timing = timing or EccTimingModel()
    if timing.pc_count < 1:
        raise SchedulingError("at least one processing crossbar is required")
    m = timing.block_size

    pc_free = [0] * timing.pc_count
    cmem_port_free = 0
    checking_free = 0
    pc_stalls = 0
    port_stalls = 0

    def claim_pc(ready: int, occupancy: int) -> int:
        """Earliest start >= ready on the least-loaded PC; returns start."""
        idx = min(range(len(pc_free)), key=lambda i: pc_free[i])
        start = max(ready, pc_free[idx])
        pc_free[idx] = start + occupancy
        return start

    # ---------------- input-check prologue ---------------- #
    num_inputs = len(program.input_cells)
    check_blocks = math.ceil(num_inputs / m) if num_inputs else 0
    mem_t = 0
    for _ in range(check_blocks):
        mem_t += timing.copy_cycles()          # MEM-serial block copy
        start = claim_pc(mem_t, timing.check_pc_occupancy())
        pc_stalls += 0  # checks tolerate PC queueing off the MEM path
        done = start + timing.check_pc_occupancy()
        checking_free = max(checking_free, done) + \
            timing.syndrome_compare_cycles
    check_mem_cycles = mem_t

    # ---------------- function execution ---------------- #
    critical_ops = 0
    forwarded_ops = 0
    prev_pc_idx = -1
    prev_start = -(10 ** 9)
    for op in program.ops:
        is_critical = isinstance(op, (RowNor, RowConst)) and op.is_output
        if not is_critical:
            mem_t += 1
            continue
        critical_ops += 1
        # Fresh-PC option: claimed when the old-data transfer begins.
        fresh_idx = min(range(len(pc_free)), key=lambda i: pc_free[i])
        fresh_start = max(mem_t, pc_free[fresh_idx])
        # Forwarding option (footnote 3): chain onto the previous
        # critical's PC, entering its pipeline before the write-back.
        use_forward = False
        if timing.enable_forwarding and prev_pc_idx >= 0 and \
                mem_t - prev_start <= timing.forwarding_window:
            fwd_start = max(mem_t, pc_free[prev_pc_idx]
                            - timing.forwarding_savings)
            if fwd_start < fresh_start:
                use_forward = True
        if use_forward:
            start = fwd_start
            pc_free[prev_pc_idx] = start + timing.pc_occupancy \
                - timing.forwarding_savings
            forwarded_ops += 1
            # prev_pc_idx unchanged: the chain continues on this PC.
        else:
            start = fresh_start
            pc_free[fresh_idx] = start + timing.pc_occupancy
            prev_pc_idx = fresh_idx
        prev_start = start
        pc_stalls += start - mem_t
        # CMEM port: check-bit read right after the old-data transfer,
        # write-back at the end of the PC pipeline. Model the pair as a
        # port reservation that may push the schedule when contended.
        port_ready = max(cmem_port_free, start + 1)
        port_stalls += port_ready - (start + 1)
        cmem_port_free = port_ready + timing.cmem_port_cycles_per_update
        mem_t = start + 1 + timing.critical_extra_mem_cycles  # old+gate+new

    commit_finish = max([mem_t, checking_free] + pc_free)
    proposed = commit_finish if count_commit_tail else mem_t

    return EccScheduleResult(
        baseline_cycles=program.cycles,
        proposed_cycles=proposed,
        check_blocks=check_blocks,
        check_mem_cycles=check_mem_cycles,
        critical_ops=critical_ops,
        critical_extra_mem_cycles=critical_ops
        * timing.critical_extra_mem_cycles,
        pc_stall_cycles=pc_stalls,
        cmem_port_stall_cycles=port_stalls,
        pc_count=timing.pc_count,
        mem_finish=mem_t,
        commit_finish=commit_finish,
        forwarded_ops=forwarded_ops,
    )


def find_min_pc_count(program: MagicProgram,
                      timing: Optional[EccTimingModel] = None,
                      max_pc: int = 8) -> int:
    """Minimum number of processing crossbars achieving best latency.

    The paper reports, per benchmark, "the minimal number of processing
    crossbars required to perform the benchmark" without losing latency;
    it observes at most eight are ever needed. We sweep ``k`` upward and
    return the smallest ``k`` whose latency matches ``k = max_pc``.
    """
    timing = timing or EccTimingModel()
    best = schedule_with_ecc(
        program, _with_pc(timing, max_pc)).proposed_cycles
    for k in range(1, max_pc + 1):
        if schedule_with_ecc(program,
                             _with_pc(timing, k)).proposed_cycles == best:
            return k
    return max_pc


def pc_sweep(program: MagicProgram, timing: Optional[EccTimingModel] = None,
             max_pc: int = 8) -> Dict[int, int]:
    """Proposed latency for every PC count in ``1..max_pc`` (ablation)."""
    timing = timing or EccTimingModel()
    return {k: schedule_with_ecc(program, _with_pc(timing, k)).proposed_cycles
            for k in range(1, max_pc + 1)}


def _with_pc(timing: EccTimingModel, k: int) -> EccTimingModel:
    from dataclasses import replace
    return replace(timing, pc_count=k)
