"""Execute a :class:`MagicProgram` on a simulated crossbar.

The executor is what ties the synthesis stack back to the hardware
substrate: the same op sequence SIMPLER emitted is issued to a
:class:`repro.xbar.MagicEngine`, in one row or SIMD across many rows at
once (paper Fig. 1), and the outputs are read back from the cells the
program declared. Integration tests drive random vectors through this
path and compare against the circuit golden models — validating mapper,
allocator, init batching, and MAGIC semantics together.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import CrossbarError
from repro.synth.program import MagicProgram, RowConst, RowInit, RowNor
from repro.xbar.crossbar import CrossbarArray
from repro.xbar.magic import MagicEngine
from repro.xbar.ops import Axis

InputBits = Union[int, Sequence[int], np.ndarray]


def load_inputs(program: MagicProgram, crossbar: CrossbarArray,
                rows: Sequence[int],
                inputs: Mapping[str, InputBits]) -> None:
    """Write input values into their program cells for the given rows.

    Scalars broadcast across rows; arrays supply one value per row (the
    SIMD case). Loading is a controller write and is not part of the
    program's cycle count — the PIM model assumes operands already reside
    in memory.
    """
    rows = list(rows)
    names = program.netlist.input_names
    for node_id, cell in program.input_cells.items():
        name = names[node_id]
        if name not in inputs:
            raise CrossbarError(f"missing value for input {name!r}")
        value = np.asarray(inputs[name], dtype=bool)
        if value.shape == ():
            value = np.broadcast_to(value, (len(rows),))
        elif value.shape != (len(rows),):
            raise CrossbarError(
                f"input {name!r} has shape {value.shape}, expected "
                f"({len(rows)},)")
        crossbar.write_col(cell, value, rows=rows)


def execute_program(program: MagicProgram, crossbar: CrossbarArray,
                    rows: Sequence[int],
                    inputs: Optional[Mapping[str, InputBits]] = None,
                    engine: Optional[MagicEngine] = None,
                    ) -> Dict[str, np.ndarray]:
    """Run ``program`` in the given rows; returns output name -> bits.

    When ``inputs`` is None the current row contents are used as operands
    (the data-already-in-memory flow). A shared ``engine`` may be passed
    to accumulate cycles/traces across multiple program executions.
    """
    rows = list(rows)
    if not rows:
        raise CrossbarError("execute_program needs at least one row")
    if max(program.input_cells.values(), default=0) >= crossbar.cols or \
            program.row_size > crossbar.cols:
        raise CrossbarError(
            f"program row size {program.row_size} exceeds crossbar width "
            f"{crossbar.cols}")
    engine = engine or MagicEngine(crossbar)
    if inputs is not None:
        load_inputs(program, crossbar, rows, inputs)

    for op in program.ops:
        if isinstance(op, RowInit):
            engine.init(Axis.ROW, op.cells, rows)
        elif isinstance(op, RowNor):
            # Output cells were initialized by a preceding RowInit (the
            # program opens with a workspace-wide init).
            engine.nor(Axis.ROW, op.in_cells, op.out_cell, rows)
        elif isinstance(op, RowConst):
            crossbar.write_col(op.cell,
                               np.full(len(rows), bool(op.value)),
                               rows=rows)
            engine.tick(1, note="const write")
        else:  # pragma: no cover - op set is closed
            raise CrossbarError(f"unknown op {type(op).__name__}")

    return {name: crossbar.read_col(cell, rows=rows)
            for name, cell in program.output_cells.items()}
