"""MAGIC row-program IR: the output of SIMPLER synthesis.

A :class:`MagicProgram` is an ordered list of single-cycle operations
executing one logic function inside one crossbar row:

* :class:`RowNor` — a MAGIC NOR/NOT gate between cells of the row;
* :class:`RowInit` — batched initialization of freed cells to LRS;
* :class:`RowConst` — a controller write of a constant into a cell.

Cycle accounting: ``cycles == len(ops)``, matching SIMPLER's model where
every gate execution and every batched initialization costs one cycle.
The program records where inputs were placed and where each primary
output resides at the end, so it can be executed (including SIMD across
many rows, Fig. 1) and so the ECC scheduler knows which operations write
ECC-covered output data ("critical operations", paper Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.logic.norlist import NorNetlist


@dataclass(frozen=True)
class RowNor:
    """One MAGIC NOR (or NOT, when one input) inside the row."""

    out_cell: int
    in_cells: Tuple[int, ...]
    node_id: int
    is_output: bool = False


@dataclass(frozen=True)
class RowInit:
    """Batched LRS initialization of freed cells (one cycle for the set)."""

    cells: Tuple[int, ...]


@dataclass(frozen=True)
class RowConst:
    """Controller write of a constant bit into one cell."""

    cell: int
    value: int
    node_id: int
    is_output: bool = False


RowOp = Union[RowNor, RowInit, RowConst]


@dataclass
class MagicProgram:
    """A synthesized single-row MAGIC program."""

    netlist: NorNetlist
    row_size: int
    input_cells: Dict[int, int]          # input node id -> cell index
    output_cells: Dict[str, int]         # output name -> cell index
    ops: List[RowOp] = field(default_factory=list)
    peak_live_cells: int = 0

    @property
    def cycles(self) -> int:
        """Total latency in clock cycles (one per op) — SIMPLER's metric."""
        return len(self.ops)

    @property
    def gate_ops(self) -> int:
        """Number of NOR/NOT executions."""
        return sum(1 for op in self.ops if isinstance(op, RowNor))

    @property
    def init_ops(self) -> int:
        """Number of batched initialization cycles."""
        return sum(1 for op in self.ops if isinstance(op, RowInit))

    @property
    def const_ops(self) -> int:
        """Number of controller constant writes."""
        return sum(1 for op in self.ops if isinstance(op, RowConst))

    @property
    def critical_ops(self) -> int:
        """Operations writing ECC-covered (primary output) data."""
        return sum(1 for op in self.ops
                   if isinstance(op, (RowNor, RowConst)) and op.is_output)

    def input_cell_span(self) -> Tuple[int, int]:
        """(min, max) cell index holding primary inputs."""
        cells = list(self.input_cells.values())
        return (min(cells), max(cells)) if cells else (0, 0)

    def summary(self) -> dict:
        """Aggregate statistics for reports and tests."""
        return {
            "cycles": self.cycles,
            "gates": self.gate_ops,
            "inits": self.init_ops,
            "consts": self.const_ops,
            "critical": self.critical_ops,
            "peak_live_cells": self.peak_live_cells,
            "row_size": self.row_size,
            "inputs": len(self.input_cells),
            "outputs": len(self.output_cells),
        }
