"""Synthesis and scheduling: SIMPLER MAGIC + the paper's ECC extension.

:mod:`repro.synth.simpler` reimplements the SIMPLER algorithm (Ben-Hur et
al., TCAD 2020, ref. [13] of the paper): mapping a NOR/NOT netlist onto a
*single crossbar row*, reusing cells whose fanouts are exhausted and
batching re-initialization cycles. Its output, a
:class:`repro.synth.program.MagicProgram`, is both executable on the
simulated crossbar (:mod:`repro.synth.executor`) and schedulable by the
paper's ECC-extended greedy scheduler
(:mod:`repro.synth.ecc_scheduler`), which adds input-block checking and
per-critical-operation check-bit updates under MEM/CMEM/PC resource
contention — the machinery behind Table I.
"""

from repro.synth.program import MagicProgram, RowConst, RowInit, RowNor
from repro.synth.simpler import SimplerConfig, synthesize
from repro.synth.executor import execute_program
from repro.synth.ecc_scheduler import (
    EccScheduleResult,
    EccTimingModel,
    find_min_pc_count,
    pc_sweep,
    schedule_with_ecc,
)
from repro.synth.timeline import ScheduleTimeline, build_timeline
from repro.synth.verify import (
    assert_program_valid,
    lint_program,
    verify_program,
)

__all__ = [
    "MagicProgram",
    "RowNor",
    "RowInit",
    "RowConst",
    "SimplerConfig",
    "synthesize",
    "execute_program",
    "EccTimingModel",
    "EccScheduleResult",
    "schedule_with_ecc",
    "find_min_pc_count",
    "pc_sweep",
    "build_timeline",
    "ScheduleTimeline",
    "lint_program",
    "verify_program",
    "assert_program_valid",
]
