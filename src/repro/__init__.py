"""repro — diagonal-parity ECC for memristive processing-in-memory.

Reproduction of Leitersdorf et al., "Efficient Error-Correcting-Code
Mechanism for High-Throughput Memristive Processing-in-Memory" (DAC 2021).

Public API highlights
---------------------
- :class:`repro.xbar.CrossbarArray`, :class:`repro.xbar.MagicEngine` —
  the MAGIC crossbar substrate (Fig. 1).
- :class:`repro.core.DiagonalParityCode`, :class:`repro.core.CheckStore`,
  :class:`repro.core.ContinuousUpdater`, :class:`repro.core.BlockChecker`
  — the diagonal ECC mechanism (Figs. 2-4).
- :class:`repro.arch.ProtectedPIM` — the full protected-crossbar system
  with cycle/resource accounting (Sec. IV).
- :mod:`repro.synth` — SIMPLER synthesis + the ECC-extended scheduler
  (Table I), over :mod:`repro.circuits` benchmark generators.
- :mod:`repro.reliability` — the MTTF sensitivity model (Fig. 6).
- :mod:`repro.arch.area` — device-count model (Table II).
- :mod:`repro.faults` — fault injectors + the batched/sharded
  Monte-Carlo campaign engine (:class:`repro.faults.CampaignRunner`).
- :mod:`repro.service` — the campaign service: submit-and-poll jobs
  over an async scheduler with a content-addressed result store
  (``repro serve`` / ``repro submit`` / ``repro status``).
"""

__version__ = "1.1.0"

from repro.core import (
    BlockChecker,
    CheckStore,
    ContinuousUpdater,
    DiagonalParityCode,
)
from repro.core.blocks import BlockGrid
from repro.xbar import Axis, CrossbarArray, MagicEngine

__all__ = [
    "__version__",
    "Axis",
    "BlockChecker",
    "BlockGrid",
    "CheckStore",
    "ContinuousUpdater",
    "CrossbarArray",
    "DiagonalParityCode",
    "MagicEngine",
]
