"""Versioned, hash-stamped wire encoding of shard tasks.

A :class:`repro.faults.batch.ShardTask` that leaves the dispatching
process must survive three hazards the in-process path never sees:

* **Revision skew** — a worker built from an older checkout could
  happily execute a task whose fields it misinterprets, producing
  tallies that are *not* bit-identical to the dispatcher's contract.
  The envelope carries an explicit format name and version; decoding
  refuses anything but an exact match.
* **Corruption/truncation** — brokers and object stores occasionally
  hand back torn payloads. The envelope is stamped with the canonical
  content hash (:func:`repro.utils.canonical.content_hash`) of its
  body; decoding recomputes and refuses mismatches.
* **Ambiguous serialization** — two hosts must produce byte-identical
  encodings of the same task (unit ids and dedupe depend on it), so
  the text form is canonical JSON, never ``json.dumps`` defaults.

The payload is plain data end to end: the injector crosses as its
declarative config (:mod:`repro.faults.serialize`), never as a pickle,
so a worker trusts only the spec schema — not arbitrary bytecode — and
rebuilds behaviourally identical engines under the per-trial seeding
contract.
"""

from __future__ import annotations

import json

from repro.faults.batch import ShardTask
from repro.utils.canonical import canonical_json, content_hash

#: Format discriminator of a shard-task envelope.
WIRE_FORMAT = "repro/shard-task"

#: Bump on any change to the task schema or its semantics. Workers and
#: dispatchers must agree exactly; there is no cross-version execution.
#: History: 1 = original schema; 2 = added the ``code`` field (pluggable
#: block-code registry) to :class:`ShardTask`; 3 = added the
#: ``kernels_name`` field (host-side kernel tier, resolved at dispatch);
#: 4 = the unit dispatch envelope (the broker payload wrapping a task
#: envelope, :func:`unit_envelope`) joined the versioned surface and may
#: carry an optional ``trace`` routing block (``{"id", "span"}``) for
#: cross-process tracing. The task schema is unchanged; the trace block
#: rides *outside* the digest-stamped body, so unit ids, content
#: digests, and dedupe keys are unaffected by whether tracing is on.
WIRE_VERSION = 4


class WireFormatError(ValueError):
    """The payload is not a valid shard-task envelope for this build."""


def task_wire_dict(task: ShardTask) -> dict:
    """The hash-stamped envelope of ``task`` (plain dict form)."""
    body = task.to_dict()
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "task": body,
        "digest": _digest(body),
    }


def task_from_wire_dict(envelope: dict) -> ShardTask:
    """Decode an envelope, refusing version/digest mismatches."""
    if not isinstance(envelope, dict):
        raise WireFormatError(
            f"shard-task envelope must be an object, "
            f"got {type(envelope).__name__}")
    if envelope.get("format") != WIRE_FORMAT:
        raise WireFormatError(
            f"not a shard-task envelope: format="
            f"{envelope.get('format')!r} (expected {WIRE_FORMAT!r})")
    version = envelope.get("version")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"shard-task wire version {version!r} does not match this "
            f"build's version {WIRE_VERSION}; dispatcher and worker "
            f"must run the same revision")
    body = envelope.get("task")
    if not isinstance(body, dict):
        raise WireFormatError("shard-task envelope has no task body")
    digest = envelope.get("digest")
    expected = _digest(body)
    if digest != expected:
        raise WireFormatError(
            f"shard-task digest mismatch (stamped {str(digest)[:12]}..., "
            f"computed {expected[:12]}...); payload was altered or "
            f"produced by an incompatible spec revision")
    try:
        return ShardTask.from_dict(body)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"undecodable shard task: {exc}") from exc


def encode_task(task: ShardTask) -> str:
    """Canonical JSON text of the envelope (byte-stable across hosts)."""
    return canonical_json(task_wire_dict(task))


def decode_task(text: str) -> ShardTask:
    """Inverse of :func:`encode_task` (same refusal semantics)."""
    try:
        envelope = json.loads(text)
    except (TypeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"shard-task payload is not JSON: "
                              f"{exc}") from exc
    return task_from_wire_dict(envelope)


def _digest(body: dict) -> str:
    """Content hash binding the envelope header to the task body."""
    return content_hash({"format": WIRE_FORMAT, "version": WIRE_VERSION,
                         "task": body})


# ---------------------------------------------------------------------- #
# Unit dispatch envelope (the broker payload around a task envelope)
# ---------------------------------------------------------------------- #

#: Keys every unit dispatch envelope must carry. ``trace`` is optional
#: routing metadata (``{"id": trace_id, "span": parent_span_id}``);
#: decoding tolerates unknown extra keys for forward compatibility.
UNIT_ENVELOPE_KEYS = frozenset({"job_key", "lo", "hi", "shard_task"})


def unit_envelope(job_key: str, lo: int, hi: int, task: ShardTask,
                  trace: dict = None) -> str:
    """Canonical JSON of one broker work-unit payload.

    The dispatcher publishes this under the unit id
    ``{job_key}:{lo}-{hi}``; byte-stability matters because republish
    idempotence compares payloads by unit id. The optional ``trace``
    block is deliberately outside the task envelope's digest — it is
    observability routing, not work content.
    """
    payload = {"job_key": job_key, "lo": lo, "hi": hi,
               "shard_task": task_wire_dict(task)}
    if trace:
        payload["trace"] = dict(trace)
    return canonical_json(payload)


def decode_unit_envelope(text: str) -> dict:
    """Parse a unit payload, refusing structural mismatches.

    Returns the envelope dict (``shard_task`` still in wire form —
    callers hand it to :func:`task_from_wire_dict` for the full
    version/digest refusal semantics). The optional ``trace`` block is
    normalized to a dict or ``None``.
    """
    try:
        envelope = json.loads(text)
    except (TypeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"unit payload is not JSON: {exc}") from exc
    if not isinstance(envelope, dict) or \
            not UNIT_ENVELOPE_KEYS <= set(envelope):
        raise WireFormatError(
            f"malformed unit envelope: expected keys "
            f"{sorted(UNIT_ENVELOPE_KEYS)}")
    trace = envelope.get("trace")
    envelope["trace"] = trace if isinstance(trace, dict) else None
    return envelope
