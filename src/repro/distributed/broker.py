"""Durable, stdlib-only work broker (SQLite-backed) with TTL leases.

Two cooperating surfaces live here, both on one SQLite file that any
process able to reach the path may open (the service host's local disk
for single-host fleets; for true multi-host fleets prefer the HTTP
topology — see :mod:`repro.distributed`):

* :class:`SqliteJobQueue` — the durable implementation of the
  scheduler's :class:`repro.service.queue.JobQueue` registry interface
  (FIFO of job ids). Registered as the ``"sqlite"`` backend; queued
  submissions survive a service restart.
* :class:`SqliteBroker` — the work-unit plane of distributed campaign
  execution. A dispatcher publishes serialized shard-task payloads;
  workers *claim* them under a TTL lease, *heartbeat* while running,
  and *ack* on completion. A lease that expires without heartbeat or
  ack — a killed or wedged worker — makes the unit claimable again on
  the next claim, so no span is ever stranded. Claims are exclusive:
  the claim transaction runs under SQLite's write lock, so two workers
  racing for the same unit observe a strict winner.

Everything here opens a short-lived connection per operation (safe
across threads and processes, no connection lifecycle to manage) and
uses ``BEGIN IMMEDIATE`` transactions for every read-modify-write, so
the atomicity guarantees come from SQLite's file locking rather than
any in-process state. Payloads are opaque text to the broker; the
dispatcher/worker agree on content via :mod:`repro.distributed.wire`.
"""

from __future__ import annotations

import asyncio
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger
from repro.service.queue import JobQueue, register_queue_backend

_LOG = get_logger("distributed.broker")

#: Unit lifecycle states (the only values the ``state`` column takes).
UNIT_STATES = ("queued", "leased", "done", "failed")

_PUBLISHES = obs_metrics.counter(
    "repro_broker_publish_total",
    "Work-unit publishes, by outcome.", ("outcome",))
_CLAIMS = obs_metrics.counter(
    "repro_broker_claims_total",
    "Claim attempts: granted (fresh), reclaimed (expired lease), "
    "empty, or breaker_open.", ("outcome",))
_HEARTBEATS = obs_metrics.counter(
    "repro_broker_heartbeats_total",
    "Lease heartbeats, by outcome (lost = lease no longer held).",
    ("outcome",))
_ACKS = obs_metrics.counter(
    "repro_broker_acks_total",
    "Completion acks, by outcome (lost = lease no longer held).",
    ("outcome",))
_FAILS = obs_metrics.counter(
    "repro_broker_fails_total",
    "Failure reports: requeued, terminal, or lost.", ("outcome",))
_REQUEUES = obs_metrics.counter(
    "repro_broker_requeues_total",
    "Dispatcher lost-checkpoint requeues, by outcome.", ("outcome",))
_BREAKER_OPENS = obs_metrics.counter(
    "repro_broker_breaker_open_total",
    "Circuit-breaker (re)arms after a threshold-crossing failure.")

#: Default seconds a worker may hold a lease without heartbeating.
DEFAULT_LEASE_TTL_S = 30.0

#: Default executions a unit gets before it is failed terminally. Each
#: claim counts one attempt, so this caps explicit requeue-failures AND
#: crash loops (workers that die holding the lease, over and over).
DEFAULT_MAX_ATTEMPTS = 5

#: Default consecutive failures before a worker's circuit breaker
#: opens (its claims return no work until the cooldown passes).
DEFAULT_BREAKER_THRESHOLD = 5

#: Default seconds an open breaker refuses a worker's claims.
DEFAULT_BREAKER_COOLDOWN_S = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS units (
    unit_id       TEXT PRIMARY KEY,
    group_key     TEXT,
    payload       TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'queued',
    seq           INTEGER NOT NULL,
    owner         TEXT,
    lease_expires REAL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS idx_units_state_seq ON units(state, seq);
CREATE INDEX IF NOT EXISTS idx_units_group ON units(group_key);
CREATE TABLE IF NOT EXISTS jobq (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id  TEXT NOT NULL,
    claimed INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS worker_health (
    owner      TEXT PRIMARY KEY,
    failures   INTEGER NOT NULL DEFAULT 0,
    open_until REAL
);
"""


@dataclass(frozen=True)
class WorkUnit:
    """Read-model of one broker work unit (see the module docstring)."""

    unit_id: str
    group_key: Optional[str]
    payload: str
    state: str
    owner: Optional[str]
    lease_expires: Optional[float]
    attempts: int
    error: Optional[str]


class SqliteBroker:
    """Lease-based work-unit broker over one SQLite file.

    ``path`` is created (with parents) on first use. All methods are
    synchronous and safe to call from any thread or process; async
    callers wrap them in ``asyncio.to_thread``.

    ``max_attempts`` bounds retries: a unit that keeps failing — a
    worker reporting ``fail(requeue=True)`` repeatedly, or workers
    crashing while holding its lease so expiry keeps re-enqueueing it —
    is failed terminally once it has consumed that many claims, so a
    deterministically broken span surfaces as a job failure instead of
    looping the fleet forever.

    ``breaker_threshold`` / ``breaker_cooldown_s`` are the per-worker
    circuit breaker: a worker whose *consecutive* explicit failures
    reach the threshold (a bad build, a broken local numpy, a full
    disk — the unit contents are fine, the worker is not) stops being
    handed work for the cooldown, so one sick host degrades fleet
    throughput instead of burning every unit's retry budget. Any
    successful ack closes its breaker and resets the count; after the
    cooldown the breaker half-opens (one probe claim is allowed — a
    success closes it, another failure re-opens it for a fresh
    cooldown).
    """

    def __init__(self, path, busy_timeout_s: float = 10.0,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
                 ) -> None:
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, "
                             f"got {max_attempts}")
        if breaker_threshold <= 0:
            raise ValueError(f"breaker_threshold must be positive, "
                             f"got {breaker_threshold}")
        if breaker_cooldown_s <= 0:
            raise ValueError(f"breaker_cooldown_s must be positive, "
                             f"got {breaker_cooldown_s}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.busy_timeout_s = busy_timeout_s
        self.max_attempts = max_attempts
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """One short-lived autocommit connection, closed on exit.

        (``sqlite3.Connection`` as a context manager only wraps a
        transaction — it never closes — so a dedicated manager keeps
        per-operation connections from leaking file handles.)
        """
        conn = sqlite3.connect(self.path, timeout=self.busy_timeout_s,
                               isolation_level=None)
        conn.row_factory = sqlite3.Row
        try:
            yield conn
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    # Dispatcher side
    # ------------------------------------------------------------------ #

    def publish(self, unit_id: str, payload: str,
                group_key: Optional[str] = None) -> bool:
        """Enqueue one work unit; idempotent on ``unit_id``.

        Re-publishing an existing unit is a no-op unless the unit had
        *failed terminally*, in which case it is reset to ``queued``
        with the fresh payload (the dispatcher's retry path). Returns
        ``True`` when the unit is (re-)queued by this call.
        """
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT state FROM units WHERE unit_id = ?",
                    (unit_id,)).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT INTO units (unit_id, group_key, payload, "
                        "state, seq) VALUES (?, ?, ?, 'queued', "
                        "(SELECT COALESCE(MAX(seq), 0) + 1 FROM units))",
                        (unit_id, group_key, payload))
                    published = True
                elif row["state"] == "failed":
                    # A republish is a fresh start: the attempts
                    # counter resets too, or the unit would inherit a
                    # spent retry budget and fail terminally on its
                    # first hiccup.
                    conn.execute(
                        "UPDATE units SET state = 'queued', payload = ?, "
                        "owner = NULL, lease_expires = NULL, "
                        "error = NULL, attempts = 0 "
                        "WHERE unit_id = ?", (payload, unit_id))
                    published = True
                else:
                    published = False
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        _PUBLISHES.inc(outcome="queued" if published else "duplicate")
        return published

    def clear_group(self, group_key: str) -> int:
        """Drop every unit of ``group_key`` (after its job completed)."""
        with self._connect() as conn:
            cursor = conn.execute(
                "DELETE FROM units WHERE group_key = ?", (group_key,))
            return cursor.rowcount

    # ------------------------------------------------------------------ #
    # Worker side: the lease protocol
    # ------------------------------------------------------------------ #

    def claim(self, owner: str, ttl_s: float = DEFAULT_LEASE_TTL_S,
              now: Optional[float] = None) -> Optional[WorkUnit]:
        """Atomically claim the oldest available unit for ``owner``.

        Available means ``queued`` or ``leased`` with an expired lease
        (an abandoned worker's unit) — expiry *is* the re-enqueue, no
        reaper process required. Returns ``None`` when nothing is
        available. ``now`` is injectable for tests.
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                # Circuit breaker: a worker with too many consecutive
                # failures gets no work until its cooldown passes.
                row = conn.execute(
                    "SELECT open_until FROM worker_health WHERE "
                    "owner = ?", (owner,)).fetchone()
                if row is not None and row["open_until"] is not None \
                        and row["open_until"] > now:
                    conn.execute("COMMIT")
                    _CLAIMS.inc(outcome="breaker_open")
                    return None
                # Crash-loop guard: a unit whose lease expired after
                # consuming its attempt budget is terminal, not
                # claimable (explicit fail()s are capped separately).
                conn.execute(
                    "UPDATE units SET state = 'failed', owner = NULL, "
                    "lease_expires = NULL, error = COALESCE(error, '') "
                    "|| ' [lease expired after ' || attempts || "
                    "' attempts]' WHERE state = 'leased' AND "
                    "lease_expires < ? AND attempts >= ?",
                    (now, self.max_attempts))
                row = conn.execute(
                    "SELECT unit_id, state FROM units WHERE "
                    "state = 'queued' OR "
                    "(state = 'leased' AND lease_expires < ?) "
                    "ORDER BY seq LIMIT 1", (now,)).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    _CLAIMS.inc(outcome="empty")
                    return None
                # "reclaimed" = the previous holder's lease expired —
                # the metric (and the worker's reattempt trace event)
                # is the observable form of the implicit re-enqueue.
                outcome = ("reclaimed" if row["state"] == "leased"
                           else "granted")
                conn.execute(
                    "UPDATE units SET state = 'leased', owner = ?, "
                    "lease_expires = ?, attempts = attempts + 1 "
                    "WHERE unit_id = ?",
                    (owner, now + ttl_s, row["unit_id"]))
                unit = self._fetch(conn, row["unit_id"])
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        _CLAIMS.inc(outcome=outcome)
        return unit

    def heartbeat(self, unit_id: str, owner: str,
                  ttl_s: float = DEFAULT_LEASE_TTL_S,
                  now: Optional[float] = None) -> bool:
        """Extend ``owner``'s lease on ``unit_id``.

        Returns ``False`` when the lease is no longer held — the unit
        was reclaimed by another worker after expiry, acked, or removed
        — which tells the worker its result will be ignored.
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE units SET lease_expires = ? WHERE unit_id = ? "
                "AND owner = ? AND state = 'leased'",
                (now + ttl_s, unit_id, owner))
            held = cursor.rowcount == 1
        _HEARTBEATS.inc(outcome="ok" if held else "lost")
        return held

    def ack(self, unit_id: str, owner: str) -> bool:
        """Mark ``unit_id`` done; ``False`` if the lease was lost.

        A successful ack also closes ``owner``'s circuit breaker: the
        worker demonstrably completes work, so its consecutive-failure
        count resets.
        """
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE units SET state = 'done', lease_expires = NULL "
                "WHERE unit_id = ? AND owner = ? AND state = 'leased'",
                (unit_id, owner))
            if cursor.rowcount == 1:
                conn.execute(
                    "UPDATE worker_health SET failures = 0, "
                    "open_until = NULL WHERE owner = ?", (owner,))
            acked = cursor.rowcount == 1
        _ACKS.inc(outcome="ok" if acked else "lost")
        return acked

    def fail(self, unit_id: str, owner: str, error: str,
             requeue: bool = True, now: Optional[float] = None) -> bool:
        """Report a failed execution of ``unit_id``.

        ``requeue=True`` (transient failure) returns the unit to the
        queue for another worker — until its ``max_attempts`` budget is
        spent, after which the failure is terminal anyway;
        ``requeue=False`` (poison payload — e.g. a wire-format refusal
        that no retry can fix) marks it terminally ``failed``
        immediately. Either way the dispatcher surfaces the error
        instead of looping forever.

        Each accepted failure report also advances ``owner``'s
        consecutive-failure count; reaching ``breaker_threshold``
        opens the worker's circuit breaker for ``breaker_cooldown_s``
        (see the class docstring). ``now`` is injectable for tests.
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT attempts FROM units WHERE unit_id = ? AND "
                    "owner = ? AND state = 'leased'",
                    (unit_id, owner)).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    _FAILS.inc(outcome="lost")
                    return False
                if requeue and row["attempts"] >= self.max_attempts:
                    requeue = False
                    error = (f"retries exhausted after {row['attempts']} "
                             f"attempts: {error}")
                state = "queued" if requeue else "failed"
                conn.execute(
                    "UPDATE units SET state = ?, owner = NULL, "
                    "lease_expires = NULL, error = ? "
                    "WHERE unit_id = ? AND owner = ? AND "
                    "state = 'leased'",
                    (state, error, unit_id, owner))
                conn.execute(
                    "INSERT INTO worker_health (owner, failures) "
                    "VALUES (?, 1) ON CONFLICT(owner) DO UPDATE SET "
                    "failures = failures + 1", (owner,))
                breaker = conn.execute(
                    "UPDATE worker_health SET open_until = ? WHERE "
                    "owner = ? AND failures >= ?",
                    (now + self.breaker_cooldown_s, owner,
                     self.breaker_threshold))
                tripped = breaker.rowcount == 1
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        _FAILS.inc(outcome="requeued" if state == "queued"
                   else "terminal")
        if state == "failed":
            _LOG.error("unit failed terminally", extra={
                "event": "unit.terminal", "unit": unit_id,
                "attempts": row["attempts"], "worker": owner,
                "error": error})
        if tripped:
            _BREAKER_OPENS.inc()
            _LOG.warning("circuit breaker opened for worker", extra={
                "event": "breaker.open", "worker": owner,
                "cooldown_s": self.breaker_cooldown_s})
        return True

    def requeue_unit(self, unit_id: str, reason: str,
                     now: Optional[float] = None) -> str:
        """Return an acked-but-unfinished unit to the queue.

        The dispatcher's recovery path for a *lost checkpoint*: a
        worker completed and acked a span, but its checkpoint file
        turned out torn or corrupt (the store quarantined it on read),
        so the ``done`` unit state is a lie and the span would
        otherwise never finish — a silent hang. Requeueing preserves
        the attempts budget: a span whose checkpoints keep corrupting
        exhausts ``max_attempts`` and turns terminally ``failed``
        instead of looping forever.

        Returns what happened: ``"requeued"``, ``"failed"`` (budget
        already spent — the unit was marked terminal), or
        ``"missing"`` (no such unit). ``now`` is injectable for tests.
        """
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT state, attempts FROM units WHERE "
                    "unit_id = ?", (unit_id,)).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return "missing"
                if row["attempts"] >= self.max_attempts:
                    conn.execute(
                        "UPDATE units SET state = 'failed', "
                        "owner = NULL, lease_expires = NULL, error = ? "
                        "WHERE unit_id = ?",
                        (f"checkpoint lost after {row['attempts']} "
                         f"attempts: {reason}", unit_id))
                    outcome = "failed"
                else:
                    conn.execute(
                        "UPDATE units SET state = 'queued', "
                        "owner = NULL, lease_expires = NULL, error = ? "
                        "WHERE unit_id = ?", (reason, unit_id))
                    outcome = "requeued"
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        _REQUEUES.inc(outcome=outcome)
        if outcome == "failed":
            _LOG.error("lost-checkpoint unit failed terminally", extra={
                "event": "unit.terminal", "unit": unit_id,
                "attempts": row["attempts"], "reason": reason})
        return outcome

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def unit(self, unit_id: str) -> Optional[WorkUnit]:
        """The current row of ``unit_id``, or ``None``."""
        with self._connect() as conn:
            return self._fetch(conn, unit_id)

    def units(self, group_key: Optional[str] = None) -> List[WorkUnit]:
        """Every unit (of ``group_key`` when given), in FIFO order."""
        query = "SELECT * FROM units"
        params: tuple = ()
        if group_key is not None:
            query += " WHERE group_key = ?"
            params = (group_key,)
        with self._connect() as conn:
            rows = conn.execute(query + " ORDER BY seq", params).fetchall()
        return [self._to_unit(r) for r in rows]

    def counts(self, group_key: Optional[str] = None) -> Dict[str, int]:
        """``state -> unit count`` (of ``group_key`` when given).

        Aggregated in SQL — never materializes payloads; cheap enough
        for hot paths (dispatch polls, ``/info``)."""
        query = "SELECT state, COUNT(*) AS n FROM units"
        params: tuple = ()
        if group_key is not None:
            query += " WHERE group_key = ?"
            params = (group_key,)
        out = {state: 0 for state in UNIT_STATES}
        with self._connect() as conn:
            for row in conn.execute(query + " GROUP BY state", params):
                out[row["state"]] = row["n"]
        return out

    def worker_health(self, now: Optional[float] = None) -> List[dict]:
        """Per-worker breaker state: ``{owner, failures, open_until,
        open}`` rows, failing-most first (the ``/health`` payload's
        fleet half)."""
        now = time.time() if now is None else now
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT owner, failures, open_until FROM worker_health "
                "ORDER BY failures DESC, owner").fetchall()
        return [{"owner": row["owner"], "failures": row["failures"],
                 "open_until": row["open_until"],
                 "open": row["open_until"] is not None
                 and row["open_until"] > now}
                for row in rows]

    def open_breakers(self, now: Optional[float] = None) -> List[str]:
        """Owners whose circuit breaker is currently open."""
        return [entry["owner"] for entry in self.worker_health(now)
                if entry["open"]]

    def failed_units(self, group_key: str) -> List[tuple]:
        """``(unit_id, error)`` of the terminally failed units of
        ``group_key`` — the dispatcher's per-poll failure check, so it
        selects only those two columns (no payloads)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT unit_id, error FROM units WHERE group_key = ? "
                "AND state = 'failed' ORDER BY seq",
                (group_key,)).fetchall()
        return [(row["unit_id"], row["error"]) for row in rows]

    @staticmethod
    def _fetch(conn: sqlite3.Connection,
               unit_id: str) -> Optional[WorkUnit]:
        row = conn.execute("SELECT * FROM units WHERE unit_id = ?",
                           (unit_id,)).fetchone()
        return None if row is None else SqliteBroker._to_unit(row)

    @staticmethod
    def _to_unit(row: sqlite3.Row) -> WorkUnit:
        return WorkUnit(
            unit_id=row["unit_id"], group_key=row["group_key"],
            payload=row["payload"], state=row["state"],
            owner=row["owner"], lease_expires=row["lease_expires"],
            attempts=row["attempts"], error=row["error"])


class SqliteJobQueue(JobQueue):
    """Durable FIFO of job ids on the broker's SQLite file.

    The ``"sqlite"`` entry of the queue-backend registry. ``get``
    polls (there is no cross-process wakeup in SQLite); the interval
    bounds scheduler latency for an idle service and is irrelevant
    under load.
    """

    backend_name = "sqlite"

    def __init__(self, path, poll_interval_s: float = 0.05) -> None:
        if poll_interval_s <= 0:
            raise ValueError(f"poll_interval_s must be positive, "
                             f"got {poll_interval_s}")
        self._broker = SqliteBroker(path)  # creates the jobq table
        self.poll_interval_s = poll_interval_s

    async def put(self, job_id: str) -> None:
        self._check_open()
        await asyncio.to_thread(self._insert, job_id)
        self._count_op("put")

    async def get(self) -> str:
        self._check_open()
        while True:
            job_id = await asyncio.to_thread(self._claim_next)
            if job_id is not None:
                self._count_op("get")
                return job_id
            self._check_open()
            await asyncio.sleep(self.poll_interval_s)

    def _insert(self, job_id: str) -> None:
        with self._broker._connect() as conn:
            conn.execute("INSERT INTO jobq (job_id) VALUES (?)", (job_id,))

    def _claim_next(self) -> Optional[str]:
        # Claimed rows are DELETEd, not flagged: scheduler job state is
        # the durable truth (persisted records re-enqueue on restart),
        # so keeping consumed rows would only grow the file forever.
        with self._broker._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT seq, job_id FROM jobq WHERE claimed = 0 "
                    "ORDER BY seq LIMIT 1").fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return None
                conn.execute("DELETE FROM jobq WHERE seq = ?",
                             (row["seq"],))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        return row["job_id"]


register_queue_backend("sqlite", SqliteJobQueue)
