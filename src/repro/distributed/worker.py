"""Standalone shard worker: claim, execute, checkpoint, ack, repeat.

The execution half of distributed campaign mode (`repro worker` on the
CLI). A worker is deliberately dumb: it holds no job state, knows no
spec semantics, and can be killed at any instant without corrupting a
campaign — every guarantee it participates in comes from three shared
contracts:

* the **wire format** (:mod:`repro.distributed.wire`): a payload that
  fails to decode is poisoned once, terminally, never retried;
* the **lease protocol** (:class:`repro.distributed.broker`): claims
  carry a TTL and a background thread heartbeats at ``ttl/3`` while
  the span runs, so only a *dead* worker's lease expires — and expiry
  alone re-enqueues its unit for the rest of the fleet;
* the **checkpoint path** (:meth:`ResultStore.put_shard`): tallies are
  written with the same atomic rename the in-process scheduler uses,
  making completion idempotent — two workers racing one span (possible
  after a lease expiry) write byte-identical files.

Two transports implement :class:`WorkSource`:

=====================  ================================================
:class:`BrokerWorkSource`  Shared-store topology: the worker opens the
                           service's broker file and result store
                           directly (same host or shared local disk).
:class:`HttpWorkSource`    Multi-host topology: the worker speaks to
                           the service's ``/units/*`` HTTP endpoints;
                           the service performs store writes, so only
                           the URL crosses hosts.
=====================  ================================================
"""

from __future__ import annotations

import os
import socket
import threading
import time
from time import perf_counter_ns
from typing import Dict, List, Optional, Tuple
import uuid

from repro.distributed.broker import DEFAULT_LEASE_TTL_S, SqliteBroker
from repro.distributed.wire import (
    WireFormatError,
    decode_unit_envelope,
    task_from_wire_dict,
)
from repro.faults.batch import run_shard_task_profiled
from repro.faults.campaign import CampaignResult
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger
from repro.obs.trace import Tracer
from repro.service.client import ServiceClient
from repro.service.spec import result_to_dict
from repro.service.store import ResultStore
from repro.utils.retry import RetryPolicy, poll_policy

_LOG = get_logger("distributed.worker")

_WORKER_UNITS = obs_metrics.counter(
    "repro_worker_units_total",
    "Units processed by this worker process, by outcome.", ("outcome",))
_CHECKPOINT_SECONDS = obs_metrics.histogram(
    "repro_checkpoint_write_seconds",
    "Wall seconds spent persisting a span checkpoint (complete call).")


def default_worker_id() -> str:
    """A fleet-unique worker identity: host, pid, and a random tail."""
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:6]}")


class WorkSource:
    """Transport abstraction between a worker and its dispatcher."""

    def claim(self, owner: str,
              ttl_s: float) -> Optional[Tuple[str, str, int]]:
        """``(unit_id, payload_text, attempts)`` of a claimed unit, or
        ``None``. ``attempts`` counts this claim too, so a value above
        1 means the unit was retried or reclaimed after a lease expiry
        — the worker surfaces that in the trace."""
        raise NotImplementedError

    def heartbeat(self, unit_id: str, owner: str, ttl_s: float) -> bool:
        raise NotImplementedError

    def complete(self, unit_id: str, owner: str, job_key: str, lo: int,
                 hi: int, tallies: CampaignResult,
                 phases: Optional[Dict[str, int]] = None) -> None:
        """Persist ``tallies`` as the span checkpoint, then ack.

        ``phases`` is the optional per-phase timing profile stamped
        onto the checkpoint record (observability metadata only)."""
        raise NotImplementedError

    def ack(self, unit_id: str, owner: str) -> bool:
        """Ack without a result (the checkpoint already exists)."""
        raise NotImplementedError

    def fail(self, unit_id: str, owner: str, error: str,
             requeue: bool) -> None:
        raise NotImplementedError

    def shard_done(self, job_key: str, lo: int, hi: int) -> bool:
        """True when the span's checkpoint already exists (dedupe)."""
        return False

    def record_events(self, trace_id: str, events: List[dict]) -> None:
        """Persist a batch of trace events (best-effort; default none).

        Telemetry only: implementations must never let a failure here
        propagate into the unit lifecycle."""


class BrokerWorkSource(WorkSource):
    """Direct broker + store access (shared-store topology)."""

    def __init__(self, broker: SqliteBroker, store: ResultStore) -> None:
        self.broker = broker
        self.store = store

    def claim(self, owner, ttl_s):
        unit = self.broker.claim(owner, ttl_s)
        return None if unit is None else (unit.unit_id, unit.payload,
                                          unit.attempts)

    def heartbeat(self, unit_id, owner, ttl_s):
        return self.broker.heartbeat(unit_id, owner, ttl_s)

    def complete(self, unit_id, owner, job_key, lo, hi, tallies,
                 phases=None):
        # Checkpoint first, ack second: a crash in between leaves a
        # leased unit whose span is already durable — the next claimer
        # sees the checkpoint and acks without recomputing.
        self.store.put_shard(job_key, lo, hi, tallies, phases=phases)
        self.broker.ack(unit_id, owner)

    def ack(self, unit_id, owner):
        return self.broker.ack(unit_id, owner)

    def fail(self, unit_id, owner, error, requeue):
        self.broker.fail(unit_id, owner, error, requeue=requeue)

    def shard_done(self, job_key, lo, hi):
        return self.store.get_shard(job_key, lo, hi) is not None

    def record_events(self, trace_id, events):
        self.store.append_events(trace_id, events)


class HttpWorkSource(WorkSource):
    """The service's ``/units/*`` endpoints (multi-host topology)."""

    def __init__(self, client: ServiceClient) -> None:
        self.client = client

    def claim(self, owner, ttl_s):
        unit = self.client.claim_unit(owner, ttl_s)
        if unit is None:
            return None
        return (unit["unit_id"], unit["payload"],
                int(unit.get("attempts") or 1))

    def heartbeat(self, unit_id, owner, ttl_s):
        return self.client.heartbeat_unit(unit_id, owner, ttl_s)

    def complete(self, unit_id, owner, job_key, lo, hi, tallies,
                 phases=None):
        self.client.complete_unit(unit_id, owner, job_key, lo, hi,
                                  result_to_dict(tallies), phases=phases)

    def ack(self, unit_id, owner):
        return self.client.ack_unit(unit_id, owner)

    def fail(self, unit_id, owner, error, requeue):
        self.client.fail_unit(unit_id, owner, error, requeue)

    def shard_done(self, job_key, lo, hi):
        return self.client.shard_done(job_key, lo, hi)

    def record_events(self, trace_id, events):
        self.client.record_events(trace_id, events)


class HeartbeatThread:
    """Background lease extension while a span executes.

    Beats every ``ttl/3``; a beat answered ``False`` means the lease
    was lost (the worker was presumed dead and its unit re-enqueued),
    recorded in :attr:`lost` so the worker can demote its completion
    to best-effort.

    Shutdown is prompt: the beat loop blocks on
    :meth:`threading.Event.wait` (never a bare ``time.sleep``), so
    :meth:`stop` — and ``with``-exit — returns as soon as the current
    beat RPC (if any) finishes, not up to a full ``ttl/3`` later.
    """

    def __init__(self, source: WorkSource, unit_id: str, owner: str,
                 ttl_s: float) -> None:
        self.source = source
        self.unit_id = unit_id
        self.owner = owner
        self.ttl_s = ttl_s
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "HeartbeatThread":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self.ttl_s)

    def __enter__(self) -> "HeartbeatThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        interval = self.ttl_s / 3.0
        while not self._stop.wait(interval):
            try:
                if not self.source.heartbeat(self.unit_id, self.owner,
                                             self.ttl_s):
                    self.lost = True
                    return
            except Exception:  # noqa: BLE001 - transient transport error
                # Missing one beat is survivable (TTL is 3 intervals);
                # the next beat retries.
                pass


#: Backwards-compatible alias (the class was private before it grew a
#: public start/stop surface).
_Heartbeat = HeartbeatThread


class ShardWorker:
    """Pull-execute-checkpoint loop over one :class:`WorkSource`.

    Parameters
    ----------
    source:
        Where work comes from and results go.
    worker_id:
        Fleet-unique identity (defaults to host-pid-random).
    lease_ttl_s:
        Seconds a claim survives without heartbeat. The re-enqueue
        latency after ``kill -9``, traded against heartbeat traffic.
    poll_interval_s:
        Idle sleep between empty claims.
    """

    def __init__(self, source: WorkSource,
                 worker_id: Optional[str] = None,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 poll_interval_s: float = 0.2) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive, "
                             f"got {lease_ttl_s}")
        if poll_interval_s <= 0:
            raise ValueError(f"poll_interval_s must be positive, "
                             f"got {poll_interval_s}")
        self.source = source
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl_s = lease_ttl_s
        self.poll_interval_s = poll_interval_s
        self.units_done = 0
        self.units_failed = 0
        # Trace events flow back through the work source (store append
        # on the shared-store topology, POST /units/events over HTTP);
        # emission is batched per unit and never fails the unit. The
        # getattr keeps duck-typed sources without the telemetry hook
        # (test fakes, minimal adapters) working — they just run
        # untraced.
        self.tracer = Tracer(getattr(source, "record_events", None),
                             proc=self.worker_id)

    def run_once(self) -> bool:
        """Claim and process at most one unit; ``True`` if one ran."""
        claimed = self.source.claim(self.worker_id, self.lease_ttl_s)
        if claimed is None:
            return False
        self._process(*claimed)
        return True

    def run(self, max_units: Optional[int] = None,
            stop: Optional[threading.Event] = None,
            idle_exit_s: Optional[float] = None) -> int:
        """Work until stopped; returns the number of processed units.

        Stops on ``max_units`` processed, ``stop`` set, or — when
        ``idle_exit_s`` is given — that many consecutive seconds
        without available work (the batch-fleet pattern: drain and
        exit).

        A transport error on claim (service restarting, broker file
        briefly locked) must not kill the daemon: it is treated as an
        idle poll backed off on the shared :class:`RetryPolicy`
        (capped exponential, full jitter — a restarted fleet must not
        thunder back in lockstep), so an HTTP-topology fleet rides out
        the very service restarts the store's resume semantics are
        built for. Such error time counts toward ``idle_exit_s``.
        Empty-queue idle polls are jittered too, decorrelating claim
        traffic across the fleet.

        Sleeps block on ``stop.wait`` when a ``stop`` event is given,
        so a shutdown request interrupts the wait immediately instead
        of lingering up to a full poll/backoff interval.
        """
        backoff = RetryPolicy(initial_s=self.poll_interval_s, cap_s=5.0)
        idle_poll = poll_policy(self.poll_interval_s)
        processed = 0
        idle_since: Optional[float] = None
        claim_errors = 0
        while True:
            if stop is not None and stop.is_set():
                return processed
            if max_units is not None and processed >= max_units:
                return processed
            try:
                ran = self.run_once()
            except Exception as exc:  # noqa: BLE001 - daemon must outlive claims
                claim_errors += 1
                ran = False
                _LOG.warning("claim/processing error, backing off",
                             extra={"event": "worker.claim_error",
                                    "worker": self.worker_id,
                                    "consecutive": claim_errors,
                                    "error": f"{type(exc).__name__}: "
                                             f"{exc}"})
            else:
                claim_errors = 0
            if ran:
                processed += 1
                idle_since = None
                continue
            now = time.monotonic()
            idle_since = idle_since if idle_since is not None else now
            if idle_exit_s is not None and now - idle_since >= idle_exit_s:
                return processed
            if claim_errors:
                interrupted = not backoff.sleep(claim_errors - 1,
                                                stop=stop)
            else:
                interrupted = not idle_poll.sleep(0, stop=stop)
            if interrupted:
                return processed

    # ------------------------------------------------------------------ #
    # One unit
    # ------------------------------------------------------------------ #

    def _process(self, unit_id: str, payload_text: str,
                 attempts: Optional[int] = None) -> None:
        try:
            job_key, lo, hi, task, trace = self._decode(payload_text)
        except (WireFormatError, ValueError) as exc:
            # Poison payload: no retry can fix a revision/digest
            # mismatch, so fail terminally and let the dispatcher
            # surface it instead of bouncing the unit forever.
            self.units_failed += 1
            _WORKER_UNITS.inc(outcome="poison")
            # Terminal with no exception propagating: without this
            # line the daemon drops the unit in silence.
            _LOG.error("poison payload: failing unit terminally",
                       extra={"event": "unit.poison", "unit": unit_id,
                              "attempts": attempts,
                              "worker": self.worker_id,
                              "error": f"{type(exc).__name__}: {exc}"})
            self.source.fail(unit_id, self.worker_id,
                             f"{type(exc).__name__}: {exc}",
                             requeue=False)
            return
        trace_id = (trace or {}).get("id")
        parent = (trace or {}).get("span")
        tracer = self.tracer
        if trace_id:
            # Flush the claim evidence immediately — before execution —
            # so even a worker killed mid-span leaves its claim in the
            # timeline; attempts > 1 is the lease-expiry/requeue marker.
            claim_attrs = {"unit": unit_id, "lo": lo, "hi": hi}
            if attempts is not None:
                claim_attrs["attempts"] = attempts
            records = [tracer.event_record(trace_id, "unit.claim",
                                           parent=parent,
                                           attrs=claim_attrs)]
            if attempts is not None and attempts > 1:
                # error status: a prior attempt was lost (lease expiry
                # or requeue), and the timeline should flag it.
                records.append(tracer.event_record(
                    trace_id, "unit.reattempt", parent=parent,
                    attrs=dict(claim_attrs), status="error"))
            tracer.emit_records(trace_id, records)
        try:
            if self.source.shard_done(job_key, lo, hi):
                # Another worker finished this span after a lease
                # expiry race; the checkpoint is the truth — just ack.
                self.source.ack(unit_id, self.worker_id)
                self.units_done += 1
                _WORKER_UNITS.inc(outcome="dedupe_ack")
                if trace_id:
                    tracer.event(trace_id, "unit.dedupe_ack",
                                 parent=parent, attrs={"unit": unit_id})
                return
            with tracer.span(trace_id, "unit.execute", parent=parent,
                             attrs={"unit": unit_id, "lo": lo, "hi": hi,
                                    "code": task.code,
                                    "packing": task.packing,
                                    "kernels": task.kernels_name}
                             ) as span:
                with HeartbeatThread(self.source, unit_id,
                                     self.worker_id,
                                     self.lease_ttl_s) as beat:
                    tallies, phases = run_shard_task_profiled(task)
                if phases:
                    span.set("phases", phases)
            # Even if the lease was lost mid-run, writing the
            # checkpoint is harmless: tallies are a pure function of
            # (key, span), so racing writers agree on the result —
            # only the wall-clock phase stamps can differ, and the
            # atomic replace means one complete record wins.
            t_ckpt = perf_counter_ns()
            self.source.complete(unit_id, self.worker_id, job_key, lo, hi,
                                 tallies, phases=phases or None)
            ckpt_ns = perf_counter_ns() - t_ckpt
            _CHECKPOINT_SECONDS.observe(ckpt_ns / 1e9)
            if trace_id:
                tracer.event(trace_id, "unit.complete", parent=parent,
                             attrs={"unit": unit_id,
                                    "checkpoint_write_ns": ckpt_ns,
                                    "lease_lost": beat.lost})
            if not beat.lost:
                self.units_done += 1  # a lost lease credits the reclaimer
                _WORKER_UNITS.inc(outcome="done")
            else:
                _WORKER_UNITS.inc(outcome="lease_lost")
        except Exception as exc:  # noqa: BLE001 - unit isolation boundary
            self.units_failed += 1
            _WORKER_UNITS.inc(outcome="failed")
            _LOG.error("unit execution failed, reporting to broker",
                       extra={"event": "unit.fail", "unit": unit_id,
                              "attempts": attempts,
                              "worker": self.worker_id,
                              "error": f"{type(exc).__name__}: {exc}"})
            if trace_id:
                tracer.event(trace_id, "unit.fail", parent=parent,
                             status="error",
                             attrs={"unit": unit_id,
                                    "error": f"{type(exc).__name__}: "
                                             f"{exc}"})
            try:
                self.source.fail(unit_id, self.worker_id,
                                 f"{type(exc).__name__}: {exc}",
                                 requeue=True)
            except Exception as report_exc:  # noqa: BLE001 - transport died
                # The lease will expire and re-enqueue the unit, but
                # say so — this path previously died in silence.
                _LOG.error("could not report unit failure; lease "
                           "expiry will requeue it",
                           extra={"event": "unit.fail_unreported",
                                  "unit": unit_id,
                                  "attempts": attempts,
                                  "worker": self.worker_id,
                                  "error": f"{type(report_exc).__name__}"
                                           f": {report_exc}"})

    @staticmethod
    def _decode(payload_text: str):
        """Split a dispatch envelope into routing metadata + task.

        Returns ``(job_key, lo, hi, task, trace)`` where ``trace`` is
        the optional observability routing block (or ``None`` — wire v4
        keeps it optional, so untraced dispatchers still work)."""
        envelope = decode_unit_envelope(payload_text)
        task = task_from_wire_dict(envelope["shard_task"])
        lo, hi = int(envelope["lo"]), int(envelope["hi"])
        if (lo, hi) != task.span:
            raise WireFormatError(
                f"unit routing span ({lo}, {hi}) does not match the "
                f"shard task span {task.span}")
        return str(envelope["job_key"]), lo, hi, task, envelope["trace"]
