"""Distributed worker fleet: broker, wire format, and shard workers.

Scales the campaign service (:mod:`repro.service`) past one host's
pool: a :class:`CampaignService` in ``execution="distributed"`` mode
publishes its shard spans to a durable lease broker instead of running
them locally, and any number of ``repro worker`` processes execute
them. Three modules, three contracts:

* :mod:`repro.distributed.broker` — stdlib-only SQLite broker: FIFO
  work units claimed under TTL leases with heartbeat/ack, expired
  leases re-enqueued (a killed worker never strands a span), plus the
  durable ``"sqlite"`` job-queue backend for the scheduler registry;
* :mod:`repro.distributed.wire` — versioned, hash-stamped JSON
  encoding of :class:`repro.faults.batch.ShardTask`: workers refuse
  payloads from a mismatched spec revision instead of mis-executing
  them;
* :mod:`repro.distributed.worker` — the pull-execute-checkpoint loop
  over either transport: direct broker + store access (shared store
  path) or the service's ``/units/*`` HTTP endpoints (multi-host).

The whole layer rides on the per-trial seeding contract: a span's
tallies are a pure function of ``(entropy, lo, hi)`` and the engine
configuration, so *where* it executes is unobservable — distributed
results are bit-identical to the in-process ``CampaignRunner``,
including after killing workers mid-campaign (pinned by
``tests/distributed/``).
"""

from repro.distributed.broker import (
    DEFAULT_LEASE_TTL_S,
    SqliteBroker,
    SqliteJobQueue,
    WorkUnit,
)
from repro.distributed.wire import (
    WIRE_FORMAT,
    WIRE_VERSION,
    WireFormatError,
    decode_task,
    encode_task,
    task_from_wire_dict,
    task_wire_dict,
)
from repro.distributed.worker import (
    BrokerWorkSource,
    HttpWorkSource,
    ShardWorker,
    WorkSource,
    default_worker_id,
)

__all__ = [
    "BrokerWorkSource",
    "DEFAULT_LEASE_TTL_S",
    "HttpWorkSource",
    "ShardWorker",
    "SqliteBroker",
    "SqliteJobQueue",
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "WireFormatError",
    "WorkSource",
    "WorkUnit",
    "decode_task",
    "default_worker_id",
    "encode_task",
    "task_from_wire_dict",
    "task_wire_dict",
]
