"""Gate-level logic substrate.

The paper's latency evaluation (Table I) synthesizes logic functions into
MAGIC NOR sequences with the SIMPLER tool. That flow needs: a generic
combinational netlist IR (:mod:`repro.logic.netlist`), fast functional
evaluation (:mod:`repro.logic.eval`), a library of arithmetic building
blocks (:mod:`repro.logic.library`), technology mapping to 2-input
NOR / 1-input NOT (:mod:`repro.logic.nor_mapping` producing a
:class:`repro.logic.norlist.NorNetlist`), and randomized equivalence
checking (:mod:`repro.logic.verify`). All of it is implemented here from
scratch — no ABC, no external benchmark files.
"""

from repro.logic.netlist import LogicNetwork, Node, OPS
from repro.logic.eval import (
    evaluate,
    evaluate_ints,
    evaluate_packed,
    evaluate_vectors_packed,
)
from repro.logic.norlist import NorNetlist
from repro.logic.nor_mapping import map_to_nor
from repro.logic.serialize import (
    load_norlist,
    load_program,
    save_norlist,
    save_program,
)
from repro.logic.verify import (
    equivalence_check,
    exhaustive_check,
    random_check,
)

__all__ = [
    "LogicNetwork",
    "Node",
    "OPS",
    "evaluate",
    "evaluate_ints",
    "evaluate_packed",
    "evaluate_vectors_packed",
    "NorNetlist",
    "map_to_nor",
    "equivalence_check",
    "exhaustive_check",
    "random_check",
    "save_norlist",
    "load_norlist",
    "save_program",
    "load_program",
]
