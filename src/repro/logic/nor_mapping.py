"""Technology mapping: arbitrary logic network -> 2-input NOR / NOT.

Mapping rules (NOT gates are cached so complements are shared):

=========  =============================================  =========
op          construction                                   NOR gates
=========  =============================================  =========
not         NOR(a)                                         1
or2         NOT(NOR(a, b))                                 2
nor2        NOR(a, b)                                      1
and2        NOR(NOT a, NOT b)                              1 (+NOTs)
nand2       NOT(AND)                                       2 (+NOTs)
xor2        t1=NOR(a,b); t2=NOR(a,t1); t3=NOR(b,t1);
            xn=NOR(t2,t3); x=NOT(xn)                       5
xnor2       same minus final NOT                           4
mux(s,a,b)  NOR(NOR(a, NOT s), NOR(b, s))                  3 (+NOT s)
=========  =============================================  =========

n-ary AND/OR/NAND/NOR are decomposed into balanced binary trees first.
The resulting gate counts are what SIMPLER sees, so they directly shape
the baseline cycle counts of Table I.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import SynthesisError
from repro.logic.netlist import LogicNetwork
from repro.logic.norlist import NorNetlist


class _Mapper:
    """Stateful single-pass mapper with NOT-sharing."""

    def __init__(self, net: LogicNetwork):
        self.net = net
        self.out = NorNetlist(list(net.input_names), name=f"{net.name}-nor")
        self.mapped: Dict[int, int] = {}
        self.not_cache: Dict[int, int] = {}
        self._input_pos = {net.input_id(nm): i
                           for i, nm in enumerate(net.input_names)}

    # -- primitive emitters ------------------------------------------- #

    def emit_nor(self, a: int, b: int) -> int:
        return self.out.add_gate((a, b))

    def emit_not(self, a: int) -> int:
        cached = self.not_cache.get(a)
        if cached is None:
            cached = self.out.add_gate((a,))
            self.not_cache[a] = cached
        return cached

    def emit_or(self, a: int, b: int) -> int:
        return self.emit_not(self.emit_nor(a, b))

    def emit_and(self, a: int, b: int) -> int:
        return self.emit_nor(self.emit_not(a), self.emit_not(b))

    def emit_xnor(self, a: int, b: int) -> int:
        t1 = self.emit_nor(a, b)
        t2 = self.emit_nor(a, t1)
        t3 = self.emit_nor(b, t1)
        return self.emit_nor(t2, t3)

    def emit_xor(self, a: int, b: int) -> int:
        return self.emit_not(self.emit_xnor(a, b))

    def emit_mux(self, s: int, a: int, b: int) -> int:
        # NOR(NOR(a, NOT s), NOR(b, s)) == s ? a : b
        ns = self.emit_not(s)
        return self.emit_nor(self.emit_nor(a, ns), self.emit_nor(b, s))

    # -- tree reduction for n-ary gates -------------------------------- #

    def reduce_tree(self, operands: Sequence[int], op: str) -> int:
        ops = list(operands)
        if not ops:
            raise SynthesisError(f"empty operand list for {op}")
        emit = self.emit_and if op == "and" else self.emit_or
        while len(ops) > 1:
            nxt: List[int] = []
            for i in range(0, len(ops) - 1, 2):
                nxt.append(emit(ops[i], ops[i + 1]))
            if len(ops) % 2:
                nxt.append(ops[-1])
            ops = nxt
        return ops[0]

    # -- main walk ------------------------------------------------------ #

    def map_node(self, nid: int) -> int:
        done = self.mapped.get(nid)
        if done is not None:
            return done
        node = self.net.nodes[nid]
        op = node.op
        if op == "input":
            # Input ids coincide between IRs only if inputs were declared
            # first; map by declaration position instead.
            result = self._input_pos[nid]
        elif op in ("const0", "const1"):
            result = self.out.add_const(1 if op == "const1" else 0)
        elif op == "not":
            result = self.emit_not(self.map_node(node.fanins[0]))
        elif op == "nor":
            kids = [self.map_node(f) for f in node.fanins]
            if len(kids) == 1:
                result = self.emit_not(kids[0])
            elif len(kids) == 2:
                result = self.emit_nor(kids[0], kids[1])
            else:
                # NOR(x1..xk) = NOR(OR(first half), OR(second half)).
                half = len(kids) // 2
                left = self.reduce_tree(kids[:half], "or")
                right = self.reduce_tree(kids[half:], "or")
                result = self.emit_nor(left, right)
        elif op in ("and", "or", "nand"):
            kids = [self.map_node(f) for f in node.fanins]
            if len(kids) == 1:
                inner = kids[0]
            else:
                base = "and" if op in ("and", "nand") else "or"
                inner = self.reduce_tree(kids, base)
            result = self.emit_not(inner) if op == "nand" else inner
        elif op == "xor":
            result = self.emit_xor(self.map_node(node.fanins[0]),
                                   self.map_node(node.fanins[1]))
        elif op == "xnor":
            result = self.emit_xnor(self.map_node(node.fanins[0]),
                                    self.map_node(node.fanins[1]))
        elif op == "mux":
            result = self.emit_mux(*(self.map_node(f) for f in node.fanins))
        else:  # pragma: no cover - op set is closed
            raise SynthesisError(f"cannot map op {op!r}")
        self.mapped[nid] = result
        return result


def map_to_nor(net: LogicNetwork) -> NorNetlist:
    """Map a :class:`LogicNetwork` to a :class:`NorNetlist`.

    The walk is iterative (explicit stack) because benchmark circuits such
    as the 1001-input voter produce recursion depths beyond CPython's
    default limit.
    """
    net.validate()
    mapper = _Mapper(net)
    # Iterative post-order over all output cones.
    for _, root in net.outputs:
        stack = [(root, False)]
        while stack:
            nid, expanded = stack.pop()
            if nid in mapper.mapped:
                continue
            node = net.nodes[nid]
            if node.op == "input":
                mapper.map_node(nid)
                continue
            if expanded or not node.fanins:
                mapper.map_node(nid)
            else:
                stack.append((nid, True))
                for f in node.fanins:
                    if f not in mapper.mapped:
                        stack.append((f, False))
    for name, nid in net.outputs:
        mapper.out.add_output(name, mapper.mapped[nid])
    return mapper.out
