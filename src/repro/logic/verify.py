"""Equivalence checking of logic networks against golden models.

Golden models are plain Python callables mapping an input-bit dict to an
output-bit dict (the :mod:`repro.circuits.golden` functions). Verification
is randomized (batched numpy evaluation) with an exhaustive mode for small
input counts; both are used by the circuit unit tests and by
:func:`equivalence_check` to validate NOR mapping and SIMPLER execution.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.logic.eval import evaluate
from repro.logic.netlist import LogicNetwork
from repro.logic.norlist import NorNetlist
from repro.utils.rng import SeedLike, make_rng

GoldenFn = Callable[[Dict[str, int]], Dict[str, int]]


def random_vectors(input_names, trials: int, seed: SeedLike = None) -> Dict[str, np.ndarray]:
    """Uniform random boolean assignment batch for the named inputs."""
    rng = make_rng(seed)
    return {name: rng.integers(0, 2, size=trials).astype(bool)
            for name in input_names}


def _compare_batches(result: Mapping[str, np.ndarray],
                     golden_fn: GoldenFn,
                     vectors: Mapping[str, np.ndarray],
                     trials: int) -> Optional[str]:
    input_names = list(vectors.keys())
    for t in range(trials):
        assignment = {name: int(vectors[name][t]) for name in input_names}
        expected = golden_fn(assignment)
        for out_name, exp in expected.items():
            got = int(result[out_name][t])
            if got != int(exp):
                return (f"mismatch at trial {t}: output {out_name!r} "
                        f"got {got}, expected {int(exp)} "
                        f"(inputs {assignment})")
    return None


def random_check(net: LogicNetwork | NorNetlist, golden_fn: GoldenFn,
                 trials: int = 64, seed: SeedLike = 0) -> Optional[str]:
    """Random equivalence check; returns None or a mismatch description."""
    names = net.input_names
    vectors = random_vectors(names, trials, seed)
    if isinstance(net, NorNetlist):
        result = net.evaluate(vectors)
    else:
        result = evaluate(net, vectors)
    return _compare_batches(result, golden_fn, vectors, trials)


def exhaustive_check(net: LogicNetwork | NorNetlist, golden_fn: GoldenFn,
                     max_inputs: int = 16) -> Optional[str]:
    """Exhaustive equivalence check for networks with few inputs."""
    names = net.input_names
    k = len(names)
    if k > max_inputs:
        raise ValueError(f"{k} inputs is too many for exhaustive checking")
    total = 1 << k
    vectors = {name: np.zeros(total, dtype=bool) for name in names}
    for v in range(total):
        for i, name in enumerate(names):
            vectors[name][v] = bool((v >> i) & 1)
    if isinstance(net, NorNetlist):
        result = net.evaluate(vectors)
    else:
        result = evaluate(net, vectors)
    return _compare_batches(result, golden_fn, vectors, total)


def equivalence_check(net: LogicNetwork | NorNetlist, golden_fn: GoldenFn,
                      trials: int = 64, seed: SeedLike = 0,
                      exhaustive_threshold: int = 10) -> None:
    """Assert-style check: raises AssertionError with diagnostics on failure.

    Uses exhaustive enumeration when the input count is at most
    ``exhaustive_threshold``, randomized vectors otherwise.
    """
    if len(net.input_names) <= exhaustive_threshold:
        message = exhaustive_check(net, golden_fn)
    else:
        message = random_check(net, golden_fn, trials, seed)
    if message is not None:
        raise AssertionError(f"{getattr(net, 'name', 'network')}: {message}")
