"""Equivalence checking of logic networks against golden models.

Golden models are plain Python callables mapping an input-bit dict to an
output-bit dict (the :mod:`repro.circuits.golden` functions). Verification
is randomized (batched numpy evaluation) with an exhaustive mode for small
input counts; both are used by the circuit unit tests and by
:func:`equivalence_check` to validate NOR mapping and SIMPLER execution.

``LogicNetwork`` vectors are evaluated bit-sliced by default
(``packing="u64"``): assignment batches are packed 64 per ``uint64``
word and each gate evaluates with one word op per 64 assignments
(:func:`repro.logic.eval.evaluate_packed`), with results bit-identical
to the boolean path (``packing="u8"``). ``NorNetlist`` evaluation keeps
its own boolean implementation either way.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.logic.eval import evaluate, evaluate_vectors_packed
from repro.logic.netlist import LogicNetwork
from repro.logic.norlist import NorNetlist
from repro.utils.rng import SeedLike, make_rng

GoldenFn = Callable[[Dict[str, int]], Dict[str, int]]


def _evaluate_vectors(net: LogicNetwork | NorNetlist,
                      vectors: Mapping[str, np.ndarray],
                      packing: str) -> Mapping[str, np.ndarray]:
    """Evaluate a boolean vector batch on the selected layout."""
    if packing not in ("u8", "u64"):
        raise ValueError(f"packing must be 'u8' or 'u64', got {packing!r}")
    if isinstance(net, NorNetlist):
        return net.evaluate(vectors)
    if packing == "u64":
        return evaluate_vectors_packed(net, vectors)
    return evaluate(net, vectors)


def random_vectors(input_names, trials: int, seed: SeedLike = None) -> Dict[str, np.ndarray]:
    """Uniform random boolean assignment batch for the named inputs."""
    rng = make_rng(seed)
    return {name: rng.integers(0, 2, size=trials).astype(bool)
            for name in input_names}


def _compare_batches(result: Mapping[str, np.ndarray],
                     golden_fn: GoldenFn,
                     vectors: Mapping[str, np.ndarray],
                     trials: int) -> Optional[str]:
    input_names = list(vectors.keys())
    for t in range(trials):
        assignment = {name: int(vectors[name][t]) for name in input_names}
        expected = golden_fn(assignment)
        for out_name, exp in expected.items():
            got = int(result[out_name][t])
            if got != int(exp):
                return (f"mismatch at trial {t}: output {out_name!r} "
                        f"got {got}, expected {int(exp)} "
                        f"(inputs {assignment})")
    return None


def random_check(net: LogicNetwork | NorNetlist, golden_fn: GoldenFn,
                 trials: int = 64, seed: SeedLike = 0,
                 packing: str = "u64") -> Optional[str]:
    """Random equivalence check; returns None or a mismatch description.

    ``packing`` selects the evaluation layout for ``LogicNetwork``
    targets: ``"u64"`` (default) packs the vectors 64 assignments per
    word, ``"u8"`` is the plain boolean path — results are identical.
    """
    names = net.input_names
    vectors = random_vectors(names, trials, seed)
    result = _evaluate_vectors(net, vectors, packing)
    return _compare_batches(result, golden_fn, vectors, trials)


def exhaustive_check(net: LogicNetwork | NorNetlist, golden_fn: GoldenFn,
                     max_inputs: int = 16,
                     packing: str = "u64") -> Optional[str]:
    """Exhaustive equivalence check for networks with few inputs."""
    names = net.input_names
    k = len(names)
    if k > max_inputs:
        raise ValueError(f"{k} inputs is too many for exhaustive checking")
    total = 1 << k
    vectors = {name: np.zeros(total, dtype=bool) for name in names}
    for v in range(total):
        for i, name in enumerate(names):
            vectors[name][v] = bool((v >> i) & 1)
    result = _evaluate_vectors(net, vectors, packing)
    return _compare_batches(result, golden_fn, vectors, total)


def equivalence_check(net: LogicNetwork | NorNetlist, golden_fn: GoldenFn,
                      trials: int = 64, seed: SeedLike = 0,
                      exhaustive_threshold: int = 10,
                      packing: str = "u64") -> None:
    """Assert-style check: raises AssertionError with diagnostics on failure.

    Uses exhaustive enumeration when the input count is at most
    ``exhaustive_threshold``, randomized vectors otherwise; ``packing``
    picks the evaluation layout (see :func:`random_check`).
    """
    if len(net.input_names) <= exhaustive_threshold:
        message = exhaustive_check(net, golden_fn, packing=packing)
    else:
        message = random_check(net, golden_fn, trials, seed, packing=packing)
    if message is not None:
        raise AssertionError(f"{getattr(net, 'name', 'network')}: {message}")
