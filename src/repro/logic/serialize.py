"""JSON serialization of netlists and synthesized programs.

Lets users cache expensive artifacts (the voter NOR netlist, a SIMPLER
mapping) and exchange circuits without re-running generators. Formats
are versioned, plain-JSON, and round-trip exactly; loaders validate
structure and raise :class:`repro.errors.NetlistError` on malformed
input rather than producing corrupt objects.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict

from repro.errors import NetlistError
from repro.logic.norlist import NorNetlist

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.synth.program import MagicProgram

_NORLIST_FORMAT = "repro-norlist-v1"
_PROGRAM_FORMAT = "repro-magicprogram-v1"


# ---------------------------------------------------------------------- #
# NOR netlists
# ---------------------------------------------------------------------- #

def norlist_to_dict(netlist: NorNetlist) -> Dict[str, Any]:
    """Serializable dict form of a NOR netlist."""
    return {
        "format": _NORLIST_FORMAT,
        "name": netlist.name,
        "inputs": list(netlist.input_names),
        "gates": [{"kind": g.kind, "fanins": list(g.fanins)}
                  for g in netlist.gates],
        "outputs": [{"name": name, "node": nid}
                    for name, nid in netlist.outputs],
    }


def norlist_from_dict(data: Dict[str, Any]) -> NorNetlist:
    """Rebuild a NOR netlist; validates structure on the way in."""
    if data.get("format") != _NORLIST_FORMAT:
        raise NetlistError(
            f"not a {_NORLIST_FORMAT} document: {data.get('format')!r}")
    netlist = NorNetlist(data["inputs"], name=data.get("name", "loaded"))
    for gate in data["gates"]:
        kind = gate["kind"]
        if kind == "nor":
            netlist.add_gate(tuple(gate["fanins"]))
        elif kind in ("const0", "const1"):
            netlist.add_const(1 if kind == "const1" else 0)
        else:
            raise NetlistError(f"unknown gate kind {kind!r}")
    for out in data["outputs"]:
        netlist.add_output(out["name"], out["node"])
    return netlist


def save_norlist(netlist: NorNetlist, path: str) -> None:
    """Write a NOR netlist to a JSON file."""
    with open(path, "w") as handle:
        json.dump(norlist_to_dict(netlist), handle)


def load_norlist(path: str) -> NorNetlist:
    """Read a NOR netlist from a JSON file."""
    with open(path) as handle:
        return norlist_from_dict(json.load(handle))


# ---------------------------------------------------------------------- #
# MAGIC programs
# ---------------------------------------------------------------------- #

def program_to_dict(program: "MagicProgram") -> Dict[str, Any]:
    """Serializable dict form of a synthesized row program."""
    # Imported here (not module level): repro.synth.program itself
    # depends on repro.logic, and this module is re-exported from
    # repro.logic's package init — a module-level import would cycle.
    from repro.synth.program import RowConst, RowInit, RowNor

    ops = []
    for op in program.ops:
        if isinstance(op, RowNor):
            ops.append({"op": "nor", "out": op.out_cell,
                        "in": list(op.in_cells), "node": op.node_id,
                        "output": op.is_output})
        elif isinstance(op, RowInit):
            ops.append({"op": "init", "cells": list(op.cells)})
        elif isinstance(op, RowConst):
            ops.append({"op": "const", "cell": op.cell, "value": op.value,
                        "node": op.node_id, "output": op.is_output})
        else:  # pragma: no cover - op set is closed
            raise NetlistError(f"unknown op {type(op).__name__}")
    return {
        "format": _PROGRAM_FORMAT,
        "row_size": program.row_size,
        "netlist": norlist_to_dict(program.netlist),
        "input_cells": {str(k): v for k, v in program.input_cells.items()},
        "output_cells": dict(program.output_cells),
        "peak_live_cells": program.peak_live_cells,
        "ops": ops,
    }


def program_from_dict(data: Dict[str, Any]) -> "MagicProgram":
    """Rebuild a program (including its embedded netlist)."""
    from repro.synth.program import MagicProgram, RowConst, RowInit, RowNor

    if data.get("format") != _PROGRAM_FORMAT:
        raise NetlistError(
            f"not a {_PROGRAM_FORMAT} document: {data.get('format')!r}")
    program = MagicProgram(
        netlist=norlist_from_dict(data["netlist"]),
        row_size=data["row_size"],
        input_cells={int(k): v for k, v in data["input_cells"].items()},
        output_cells=dict(data["output_cells"]),
        peak_live_cells=data.get("peak_live_cells", 0),
    )
    for op in data["ops"]:
        kind = op["op"]
        if kind == "nor":
            program.ops.append(RowNor(op["out"], tuple(op["in"]),
                                      op["node"], op["output"]))
        elif kind == "init":
            program.ops.append(RowInit(tuple(op["cells"])))
        elif kind == "const":
            program.ops.append(RowConst(op["cell"], op["value"],
                                        op["node"], op["output"]))
        else:
            raise NetlistError(f"unknown program op {kind!r}")
    return program


def save_program(program: "MagicProgram", path: str) -> None:
    """Write a program to a JSON file."""
    with open(path, "w") as handle:
        json.dump(program_to_dict(program), handle)


def load_program(path: str) -> "MagicProgram":
    """Read a program from a JSON file."""
    with open(path) as handle:
        return program_from_dict(json.load(handle))
