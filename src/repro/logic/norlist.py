"""NOR/NOT-only netlist — the output of technology mapping.

MAGIC natively provides k-input NOR (of which 1-input NOR is NOT); the
paper and SIMPLER restrict to 2-input NOR + NOT, which is what this IR
holds. Node ids: ``0 .. num_inputs-1`` are primary inputs (in declaration
order); higher ids are gates, each a :class:`NorGate` with one or two
fanins, or a constant cell (``const0`` / ``const1``) written directly by
the executor.

The structure is append-only and topologically ordered by construction,
which the SIMPLER mapper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError


@dataclass(frozen=True)
class NorGate:
    """A gate in the NOR netlist.

    ``kind`` is ``"nor"`` (1 or 2 fanins — 1 fanin means MAGIC NOT),
    ``"const0"`` or ``"const1"`` (no fanins).
    """

    kind: str
    fanins: Tuple[int, ...]


class NorNetlist:
    """2-input NOR / NOT netlist with named primary inputs and outputs."""

    def __init__(self, input_names: Sequence[str], name: str = "nor-netlist"):
        self.name = name
        self.input_names = list(input_names)
        self.gates: List[NorGate] = []  # gate i has node id num_inputs + i
        self.outputs: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self.input_names)

    @property
    def num_gates(self) -> int:
        """Number of gates (NOR + NOT + consts)."""
        return len(self.gates)

    @property
    def num_nodes(self) -> int:
        """Inputs + gates."""
        return self.num_inputs + self.num_gates

    @property
    def num_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self.outputs)

    def add_gate(self, fanins: Sequence[int]) -> int:
        """Append a NOR gate (1-2 fanins); returns its node id."""
        fin = tuple(fanins)
        if len(fin) not in (1, 2):
            raise NetlistError(f"NOR gate needs 1 or 2 fanins, got {len(fin)}")
        for f in fin:
            if not 0 <= f < self.num_nodes:
                raise NetlistError(f"NOR fanin {f} does not exist yet")
        self.gates.append(NorGate("nor", fin))
        return self.num_nodes - 1

    def add_const(self, value: int) -> int:
        """Append a constant cell; returns its node id."""
        self.gates.append(NorGate("const1" if value else "const0", ()))
        return self.num_nodes - 1

    def add_output(self, name: str, node_id: int) -> None:
        """Mark a node as primary output ``name``."""
        if not 0 <= node_id < self.num_nodes:
            raise NetlistError(f"output {name!r} references missing node {node_id}")
        self.outputs.append((name, node_id))

    def gate(self, node_id: int) -> NorGate:
        """Gate object for a gate node id."""
        if node_id < self.num_inputs:
            raise NetlistError(f"node {node_id} is a primary input, not a gate")
        return self.gates[node_id - self.num_inputs]

    def is_input(self, node_id: int) -> bool:
        """True for primary-input node ids."""
        return node_id < self.num_inputs

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #

    def fanout_counts(self) -> np.ndarray:
        """Number of gate references to each node (outputs not counted)."""
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for g in self.gates:
            for f in g.fanins:
                counts[f] += 1
        return counts

    def output_ids(self) -> List[int]:
        """Node ids of all primary outputs (duplicates preserved)."""
        return [nid for _, nid in self.outputs]

    def stats(self) -> dict:
        """Counts of NOT / NOR2 / const gates."""
        not_gates = sum(1 for g in self.gates
                        if g.kind == "nor" and len(g.fanins) == 1)
        nor2 = sum(1 for g in self.gates
                   if g.kind == "nor" and len(g.fanins) == 2)
        consts = sum(1 for g in self.gates if g.kind.startswith("const"))
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "not": not_gates,
            "nor2": nor2,
            "const": consts,
            "gates": self.num_gates,
        }

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, assignments: Dict[str, object]) -> Dict[str, np.ndarray]:
        """Batched functional evaluation (same conventions as logic.eval)."""
        batch_shape: tuple = ()
        for v in assignments.values():
            if isinstance(v, np.ndarray):
                batch_shape = v.shape
                break
        values: list = [None] * self.num_nodes
        for i, name in enumerate(self.input_names):
            if name not in assignments:
                raise NetlistError(f"missing assignment for input {name!r}")
            arr = np.asarray(assignments[name], dtype=bool)
            if arr.shape == () and batch_shape:
                arr = np.broadcast_to(arr, batch_shape)
            values[i] = arr
        for gi, g in enumerate(self.gates):
            nid = self.num_inputs + gi
            if g.kind == "const0":
                values[nid] = np.broadcast_to(np.asarray(False), batch_shape)
            elif g.kind == "const1":
                values[nid] = np.broadcast_to(np.asarray(True), batch_shape)
            elif len(g.fanins) == 1:
                values[nid] = ~values[g.fanins[0]]
            else:
                values[nid] = ~(values[g.fanins[0]] | values[g.fanins[1]])
        return {name: np.asarray(values[nid], dtype=bool)
                for name, nid in self.outputs}
