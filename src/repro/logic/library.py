"""Reusable gate-level building blocks for the benchmark generators.

Everything operates on *buses*: little-endian lists of node ids inside one
:class:`repro.logic.netlist.LogicNetwork`. These mirror the RTL idioms the
EPFL benchmarks were synthesized from — ripple adders, comparators,
multiplexers, barrel-shift stages, priority chains, population counts —
so the generated circuits have realistic structure for SIMPLER to map.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SynthesisError
from repro.logic.netlist import LogicNetwork


def not_bus(net: LogicNetwork, bus: Sequence[int]) -> List[int]:
    """Bitwise NOT of a bus."""
    return [net.not_(b) for b in bus]


def and_bus(net: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Bitwise AND of two equal-width buses."""
    _check_widths(a, b)
    return [net.and_(x, y) for x, y in zip(a, b)]


def or_bus(net: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Bitwise OR of two equal-width buses."""
    _check_widths(a, b)
    return [net.or_(x, y) for x, y in zip(a, b)]


def xor_bus(net: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Bitwise XOR of two equal-width buses."""
    _check_widths(a, b)
    return [net.xor(x, y) for x, y in zip(a, b)]


def mux_bus(net: LogicNetwork, sel: int, a: Sequence[int],
            b: Sequence[int]) -> List[int]:
    """Per-bit 2:1 mux: ``sel ? a : b``."""
    _check_widths(a, b)
    return [net.mux(sel, x, y) for x, y in zip(a, b)]


def full_adder(net: LogicNetwork, a: int, b: int, cin: int) -> Tuple[int, int]:
    """One full adder; returns ``(sum, carry_out)``.

    Built as the canonical 9-gate NOR full adder used throughout the
    MAGIC literature, with the carry sharing the XOR ladder's
    intermediates::

        t1 = NOR(a, b)            u1 = NOR(x', cin)
        t2 = NOR(a, t1)           u2 = NOR(x', u1)
        t3 = NOR(b, t1)           u3 = NOR(cin, u1)
        x' = NOR(t2, t3)  # XNOR  sum   = NOR(u2, u3)
                                  carry = NOR(t1, u1)

    Besides matching MAGIC gate counts, the sharing means a mapped
    full adder consumes its operand cells entirely on the sum path,
    which keeps SIMPLER's live set small in adder-tree circuits.
    """
    t1 = net.nor(a, b)
    t2 = net.nor(a, t1)
    t3 = net.nor(b, t1)
    xn = net.nor(t2, t3)          # XNOR(a, b)
    u1 = net.nor(xn, cin)
    u2 = net.nor(xn, u1)
    u3 = net.nor(cin, u1)
    s = net.nor(u2, u3)           # a ^ b ^ cin
    cout = net.nor(t1, u1)        # majority(a, b, cin)
    return s, cout


def half_adder(net: LogicNetwork, a: int, b: int) -> Tuple[int, int]:
    """One half adder; returns ``(sum, carry_out)``.

    Six NOR gates: the 4-gate XNOR ladder, the inverting 5th gate for the
    sum, and ``carry = NOR(t1, sum_xor)`` sharing the ladder.
    """
    t1 = net.nor(a, b)
    t2 = net.nor(a, t1)
    t3 = net.nor(b, t1)
    xn = net.nor(t2, t3)          # XNOR(a, b)
    s = net.not_(xn)              # a ^ b
    c = net.nor(t1, s)            # a & b
    return s, c


def ripple_adder(net: LogicNetwork, a: Sequence[int], b: Sequence[int],
                 cin: int | None = None) -> Tuple[List[int], int]:
    """Ripple-carry adder; returns ``(sum_bus, carry_out)``."""
    _check_widths(a, b)
    sums: List[int] = []
    if cin is None:
        s, carry = half_adder(net, a[0], b[0])
        sums.append(s)
        rest = zip(a[1:], b[1:])
    else:
        carry = cin
        rest = zip(a, b)
    for x, y in rest:
        s, carry = full_adder(net, x, y, carry)
        sums.append(s)
    return sums, carry


def increment(net: LogicNetwork, a: Sequence[int]) -> Tuple[List[int], int]:
    """``a + 1``; returns ``(sum_bus, carry_out)``."""
    sums: List[int] = []
    carry = None
    for i, bit in enumerate(a):
        if i == 0:
            sums.append(net.not_(bit))
            carry = bit
        else:
            sums.append(net.xor(bit, carry))
            carry = net.and_(bit, carry)
    return sums, carry


def equals_const(net: LogicNetwork, bus: Sequence[int], value: int) -> int:
    """1 iff the bus equals the constant ``value``."""
    literals = []
    for i, bit in enumerate(bus):
        literals.append(bit if (value >> i) & 1 else net.not_(bit))
    return net.and_(*literals) if len(literals) > 1 else literals[0]


def greater_equal(net: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> int:
    """1 iff unsigned ``a >= b`` (ripple comparator from the LSB up)."""
    _check_widths(a, b)
    ge = net.const1()
    for x, y in zip(a, b):  # LSB to MSB; MSB decision dominates
        eq = net.xnor(x, y)
        gt = net.and_(x, net.not_(y))
        ge = net.or_(gt, net.and_(eq, ge))
    return ge


def greater_than(net: LogicNetwork, a: Sequence[int], b: Sequence[int]) -> int:
    """1 iff unsigned ``a > b``."""
    _check_widths(a, b)
    gt_acc = net.const0()
    for x, y in zip(a, b):
        eq = net.xnor(x, y)
        gt = net.and_(x, net.not_(y))
        gt_acc = net.or_(gt, net.and_(eq, gt_acc))
    return gt_acc


def greater_equal_const(net: LogicNetwork, a: Sequence[int], value: int) -> int:
    """1 iff unsigned ``a >= value`` (constant-folded comparator chain).

    Processes from the LSB up: with constant bit ``k_i``, the running
    greater-or-equal becomes ``a_i OR ge`` when ``k_i == 0`` and
    ``a_i AND ge`` when ``k_i == 1``.
    """
    if value < 0 or value >= (1 << len(a)):
        raise SynthesisError(f"constant {value} does not fit in {len(a)} bits")
    ge = net.const1()
    for i, bit in enumerate(a):
        if (value >> i) & 1:
            ge = net.and_(bit, ge)
        else:
            ge = net.or_(bit, ge)
    return ge


def array_multiplier(net: LogicNetwork, a: Sequence[int],
                     b: Sequence[int]) -> List[int]:
    """Unsigned array multiplier: returns ``len(a) + len(b)`` product bits.

    Row-by-row accumulation of partial products with ripple adders — the
    standard array structure, deliberately not Wallace-optimized so the
    gate count resembles technology-mapped RTL.
    """
    wa, wb = len(a), len(b)
    if wa == 0 or wb == 0:
        raise SynthesisError("multiplier operands must be non-empty")
    # Partial product row j: (a AND b[j]) << j, accumulated into a running
    # sum that grows one bit per row.
    acc: List[int] = [net.and_(bit, b[0]) for bit in a]
    result: List[int] = [acc[0]]
    acc = acc[1:]
    carry: Optional[int] = None
    for j in range(1, wb):
        row = [net.and_(bit, b[j]) for bit in a]
        # acc currently holds sum bits of weight j .. j+wa-2 (wa-1 bits),
        # plus carry of weight j+wa-1 from the previous row (None for j=1).
        high = carry if carry is not None else net.const0()
        addend = acc + [high]
        sums, carry = ripple_adder(net, row, addend)
        result.append(sums[0])
        acc = sums[1:]
    result.extend(acc)
    result.append(carry if carry is not None else net.const0())
    return result


def rotate_left_stage(net: LogicNetwork, bus: Sequence[int], amount: int,
                      enable: int) -> List[int]:
    """One barrel-rotator stage: rotate left by ``amount`` when ``enable``."""
    width = len(bus)
    rotated = [bus[(i - amount) % width] for i in range(width)]
    return mux_bus(net, enable, rotated, list(bus))


def rotate_right_stage(net: LogicNetwork, bus: Sequence[int], amount: int,
                       enable: int) -> List[int]:
    """One barrel-rotator stage: rotate right by ``amount`` when ``enable``."""
    width = len(bus)
    rotated = [bus[(i + amount) % width] for i in range(width)]
    return mux_bus(net, enable, rotated, list(bus))


def shift_right_stage(net: LogicNetwork, bus: Sequence[int], amount: int,
                      enable: int, fill: int) -> List[int]:
    """One logical-right-shift stage with explicit fill bit."""
    width = len(bus)
    shifted = [bus[i + amount] if i + amount < width else fill
               for i in range(width)]
    return mux_bus(net, enable, shifted, list(bus))


def priority_chain(net: LogicNetwork, requests: Sequence[int]) -> List[int]:
    """Fixed-priority grant: ``grant[i] = req[i] AND none of req[0..i-1]``.

    Index 0 has the highest priority. Uses a linear none-so-far chain, the
    canonical structure of priority encoders and arbiters.
    """
    grants: List[int] = []
    none_before = None
    for i, req in enumerate(requests):
        if i == 0:
            grants.append(req)
            none_before = net.not_(req)
        else:
            grants.append(net.and_(req, none_before))
            none_before = net.and_(none_before, net.not_(req))
    return grants


def popcount(net: LogicNetwork, bits: Sequence[int]) -> List[int]:
    """Population count via a full-adder (3:2 compressor) tree.

    Returns a little-endian bus wide enough for ``len(bits)``.
    """
    if not bits:
        raise SynthesisError("popcount of empty bit list")
    # Columns of equal weight; repeatedly compress 3 bits -> (sum, carry).
    columns: List[List[int]] = [list(bits)]
    result: List[int] = []
    weight = 0
    while columns:
        col = columns[0]
        while len(col) >= 3:
            a, b, c = col.pop(), col.pop(), col.pop()
            s, cy = full_adder(net, a, b, c)
            col.append(s)
            _push(columns, 1, cy)
        if len(col) == 2:
            a, b = col.pop(), col.pop()
            s, cy = half_adder(net, a, b)
            col.append(s)
            _push(columns, 1, cy)
        result.append(col[0])
        columns.pop(0)
        weight += 1
    return result


def onehot_encode(net: LogicNetwork, bus: Sequence[int]) -> List[int]:
    """Full decoder: ``2^len(bus)`` one-hot lines via shared half-decoders.

    Splits the input in two halves, decodes each recursively, then ANDs
    pairs — the logarithmic-sharing structure of real decoder netlists.
    """
    if len(bus) == 1:
        return [net.not_(bus[0]), bus[0]]
    half = len(bus) // 2
    lo = onehot_encode(net, bus[:half])
    hi = onehot_encode(net, bus[half:])
    return [net.and_(h, l) for h in hi for l in lo]


def _push(columns: List[List[int]], index: int, bit: int) -> None:
    while len(columns) <= index:
        columns.append([])
    columns[index].append(bit)


def _check_widths(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise SynthesisError(f"bus width mismatch: {len(a)} vs {len(b)}")
