"""Combinational logic network IR.

A :class:`LogicNetwork` is a DAG of typed nodes referenced by integer ids.
Supported operations (``OPS``):

``input``            primary input (no fanins)
``const0``/``const1`` constants
``not``              1 fanin
``and``/``or``       n-ary (>= 1 fanin)
``nand``/``nor``     n-ary (>= 1 fanin)
``xor``/``xnor``     exactly 2 fanins
``mux``              3 fanins ``(sel, a, b)`` meaning ``sel ? a : b``

The builder methods perform light structural hashing (constant folding is
deliberately *not* done — benchmark circuits should keep their natural
structure so gate counts are honest). Buses are plain Python lists of node
ids, little-endian (index 0 = LSB), created with :meth:`input_bus` /
:meth:`output_bus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError

OPS = ("input", "const0", "const1", "not", "and", "or", "nand", "nor",
       "xor", "xnor", "mux")

_ARITY = {
    "input": (0, 0),
    "const0": (0, 0),
    "const1": (0, 0),
    "not": (1, 1),
    "and": (1, None),
    "or": (1, None),
    "nand": (1, None),
    "nor": (1, None),
    "xor": (2, 2),
    "xnor": (2, 2),
    "mux": (3, 3),
}


@dataclass(frozen=True)
class Node:
    """One gate: operation plus fanin node ids."""

    op: str
    fanins: Tuple[int, ...]


class LogicNetwork:
    """Mutable builder + container for a combinational DAG."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.nodes: List[Node] = []
        self.input_names: List[str] = []
        self._input_ids: Dict[str, int] = {}
        self.outputs: List[Tuple[str, int]] = []
        self._hash_cache: Dict[Tuple[str, Tuple[int, ...]], int] = {}

    # ------------------------------------------------------------------ #
    # Node creation
    # ------------------------------------------------------------------ #

    def _add(self, op: str, fanins: Tuple[int, ...]) -> int:
        lo, hi = _ARITY[op]
        if len(fanins) < lo or (hi is not None and len(fanins) > hi):
            raise NetlistError(f"{op} gate with {len(fanins)} fanins")
        for f in fanins:
            if not 0 <= f < len(self.nodes):
                raise NetlistError(f"fanin {f} of new {op} gate does not exist")
        # Structural hashing for commutative ops keeps generated circuits
        # from duplicating shared literals (NOT gates especially).
        key: Optional[Tuple[str, Tuple[int, ...]]] = None
        if op in ("not", "and", "or", "nand", "nor", "xor", "xnor"):
            canon = tuple(sorted(fanins)) if op != "not" else fanins
            key = (op, canon)
            cached = self._hash_cache.get(key)
            if cached is not None:
                return cached
        self.nodes.append(Node(op, fanins))
        node_id = len(self.nodes) - 1
        if key is not None:
            self._hash_cache[key] = node_id
        return node_id

    def input(self, name: str) -> int:
        """Declare a named primary input; returns its node id."""
        if name in self._input_ids:
            raise NetlistError(f"duplicate input name {name!r}")
        node_id = self._add("input", ())
        self.input_names.append(name)
        self._input_ids[name] = node_id
        return node_id

    def input_bus(self, name: str, width: int) -> List[int]:
        """Declare ``width`` inputs named ``name[i]``, little-endian."""
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def const0(self) -> int:
        """Constant logical 0."""
        return self._add("const0", ())

    def const1(self) -> int:
        """Constant logical 1."""
        return self._add("const1", ())

    def not_(self, a: int) -> int:
        """Logical NOT."""
        return self._add("not", (a,))

    def and_(self, *fanins: int) -> int:
        """n-ary AND (associativity handled downstream)."""
        if len(fanins) == 1:
            return fanins[0]
        return self._add("and", tuple(fanins))

    def or_(self, *fanins: int) -> int:
        """n-ary OR."""
        if len(fanins) == 1:
            return fanins[0]
        return self._add("or", tuple(fanins))

    def nand(self, *fanins: int) -> int:
        """n-ary NAND."""
        return self._add("nand", tuple(fanins))

    def nor(self, *fanins: int) -> int:
        """n-ary NOR."""
        return self._add("nor", tuple(fanins))

    def xor(self, a: int, b: int) -> int:
        """2-input XOR."""
        return self._add("xor", (a, b))

    def xnor(self, a: int, b: int) -> int:
        """2-input XNOR."""
        return self._add("xnor", (a, b))

    def mux(self, sel: int, a: int, b: int) -> int:
        """2:1 multiplexer: ``sel ? a : b``."""
        return self._add("mux", (sel, a, b))

    # ------------------------------------------------------------------ #
    # Outputs
    # ------------------------------------------------------------------ #

    def output(self, name: str, node_id: int) -> None:
        """Mark ``node_id`` as the primary output ``name``."""
        if not 0 <= node_id < len(self.nodes):
            raise NetlistError(f"output {name!r} references missing node {node_id}")
        if any(n == name for n, _ in self.outputs):
            raise NetlistError(f"duplicate output name {name!r}")
        self.outputs.append((name, node_id))

    def output_bus(self, name: str, node_ids: Sequence[int]) -> None:
        """Mark a little-endian bus of outputs named ``name[i]``."""
        for i, nid in enumerate(node_ids):
            self.output(f"{name}[{i}]", nid)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self.input_names)

    @property
    def num_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self.outputs)

    @property
    def num_gates(self) -> int:
        """Number of non-input, non-const nodes."""
        return sum(1 for n in self.nodes
                   if n.op not in ("input", "const0", "const1"))

    def input_id(self, name: str) -> int:
        """Node id of a named input."""
        try:
            return self._input_ids[name]
        except KeyError:
            raise NetlistError(f"no input named {name!r}") from None

    def stats(self) -> dict:
        """Gate-count statistics keyed by operation."""
        counts: Dict[str, int] = {}
        for n in self.nodes:
            counts[n.op] = counts.get(n.op, 0) + 1
        counts["total_nodes"] = len(self.nodes)
        counts["inputs"] = self.num_inputs
        counts["outputs"] = self.num_outputs
        counts["gates"] = self.num_gates
        return counts

    def validate(self) -> None:
        """Check DAG invariants; raises :class:`NetlistError` on violation.

        Nodes are created append-only with existing fanins, so the graph is
        acyclic by construction; this verifies output references and that
        every output is driven.
        """
        for name, nid in self.outputs:
            if not 0 <= nid < len(self.nodes):
                raise NetlistError(f"output {name!r} dangling (node {nid})")
        if not self.outputs:
            raise NetlistError(f"network {self.name!r} has no outputs")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LogicNetwork(name={self.name!r}, inputs={self.num_inputs}, "
                f"outputs={self.num_outputs}, gates={self.num_gates})")
