"""Vectorized functional evaluation of logic networks.

Evaluation is batched: every input is bound to a numpy boolean array of
shape ``(batch,)`` and all gates evaluate the whole batch at once. This is
what makes randomized equivalence checking of the multi-thousand-gate
benchmark circuits fast enough to run inside unit tests.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Union

import numpy as np

from repro.errors import NetlistError
from repro.logic.netlist import LogicNetwork
from repro.utils.bitops import bits_to_int, int_to_bits

InputValue = Union[bool, int, np.ndarray]


def evaluate(net: LogicNetwork,
             assignments: Mapping[str, InputValue]) -> Dict[str, np.ndarray]:
    """Evaluate ``net`` under the given input assignment.

    ``assignments`` maps input names to scalars (0/1) or boolean arrays of
    one common batch shape; returns output name -> boolean array of that
    shape (scalars are broadcast).
    """
    missing = [name for name in net.input_names if name not in assignments]
    if missing:
        raise NetlistError(f"missing assignments for inputs: {missing[:5]}"
                           + ("..." if len(missing) > 5 else ""))
    # Determine batch shape from the first array value.
    batch_shape: tuple = ()
    for v in assignments.values():
        if isinstance(v, np.ndarray):
            batch_shape = v.shape
            break

    values: list = [None] * len(net.nodes)
    for name in net.input_names:
        v = assignments[name]
        arr = np.asarray(v, dtype=bool)
        if arr.shape == () and batch_shape:
            arr = np.broadcast_to(arr, batch_shape)
        values[net.input_id(name)] = arr

    for nid, node in enumerate(net.nodes):
        if values[nid] is not None:
            continue
        op = node.op
        if op == "const0":
            values[nid] = np.broadcast_to(np.asarray(False), batch_shape)
        elif op == "const1":
            values[nid] = np.broadcast_to(np.asarray(True), batch_shape)
        elif op == "not":
            values[nid] = ~values[node.fanins[0]]
        elif op in ("and", "nand"):
            acc = values[node.fanins[0]]
            for f in node.fanins[1:]:
                acc = acc & values[f]
            values[nid] = ~acc if op == "nand" else acc
        elif op in ("or", "nor"):
            acc = values[node.fanins[0]]
            for f in node.fanins[1:]:
                acc = acc | values[f]
            values[nid] = ~acc if op == "nor" else acc
        elif op == "xor":
            values[nid] = values[node.fanins[0]] ^ values[node.fanins[1]]
        elif op == "xnor":
            values[nid] = ~(values[node.fanins[0]] ^ values[node.fanins[1]])
        elif op == "mux":
            s, a, b = (values[f] for f in node.fanins)
            values[nid] = np.where(s, a, b)
        else:  # pragma: no cover - op set is closed
            raise NetlistError(f"unknown op {op!r}")

    return {name: np.asarray(values[nid], dtype=bool)
            for name, nid in net.outputs}


def evaluate_ints(net: LogicNetwork, buses: Mapping[str, tuple[int, int]],
                  out_buses: Mapping[str, int]) -> Dict[str, int]:
    """Evaluate with integer bus values (convenience for golden tests).

    ``buses`` maps bus name -> ``(value, width)``; inputs must be named
    ``bus[i]``. ``out_buses`` maps output bus name -> width; outputs named
    ``bus[i]`` are reassembled little-endian into integers.
    """
    assignments: Dict[str, InputValue] = {}
    for bus, (value, width) in buses.items():
        for i, bit in enumerate(int_to_bits(value, width)):
            assignments[f"{bus}[{i}]"] = bool(bit)
    result = evaluate(net, assignments)
    out: Dict[str, int] = {}
    for bus, width in out_buses.items():
        bits = [int(result[f"{bus}[{i}]"]) for i in range(width)]
        out[bus] = bits_to_int(bits)
    return out
