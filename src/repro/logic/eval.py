"""Vectorized functional evaluation of logic networks.

Evaluation is batched: every input is bound to a numpy boolean array of
shape ``(batch,)`` and all gates evaluate the whole batch at once. This is
what makes randomized equivalence checking of the multi-thousand-gate
benchmark circuits fast enough to run inside unit tests.

:func:`evaluate_packed` goes one step further: input batches are packed
64 assignments per ``uint64`` word (:func:`repro.utils.bitops
.pack_words` layout) and every gate evaluates with a single word-wide
bitwise op per ``ceil(batch/64)`` words — 64 assignments per gate-op
instead of 64 bytes of boolean traffic. The equivalence checker
(:mod:`repro.logic.verify`) routes its vectors through this path.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Union

import numpy as np

from repro.errors import NetlistError
from repro.logic.netlist import LogicNetwork
from repro.utils.bitops import (
    bits_to_int,
    int_to_bits,
    pack_words,
    unpack_words,
    words_for,
)

InputValue = Union[bool, int, np.ndarray]


def evaluate(net: LogicNetwork,
             assignments: Mapping[str, InputValue]) -> Dict[str, np.ndarray]:
    """Evaluate ``net`` under the given input assignment.

    ``assignments`` maps input names to scalars (0/1) or boolean arrays of
    one common batch shape; returns output name -> boolean array of that
    shape (scalars are broadcast).
    """
    missing = [name for name in net.input_names if name not in assignments]
    if missing:
        raise NetlistError(f"missing assignments for inputs: {missing[:5]}"
                           + ("..." if len(missing) > 5 else ""))
    # Determine batch shape from the first array value.
    batch_shape: tuple = ()
    for v in assignments.values():
        if isinstance(v, np.ndarray):
            batch_shape = v.shape
            break

    values: list = [None] * len(net.nodes)
    for name in net.input_names:
        v = assignments[name]
        arr = np.asarray(v, dtype=bool)
        if arr.shape == () and batch_shape:
            arr = np.broadcast_to(arr, batch_shape)
        values[net.input_id(name)] = arr

    _eval_nodes(net, values,
                zeros=np.broadcast_to(np.asarray(False), batch_shape),
                ones=np.broadcast_to(np.asarray(True), batch_shape))

    return {name: np.asarray(values[nid], dtype=bool)
            for name, nid in net.outputs}


def _eval_nodes(net: LogicNetwork, values: list, zeros, ones) -> None:
    """Evaluate every unresolved node of ``net`` in place.

    The gate dispatch shared by :func:`evaluate` and
    :func:`evaluate_packed`: it only uses ``& | ^ ~``, so it works for
    any value domain closed under those operators — boolean arrays or
    packed ``uint64`` words — with the domain's all-zeros/all-ones
    constants supplied by the caller.
    """
    for nid, node in enumerate(net.nodes):
        if values[nid] is not None:
            continue
        op = node.op
        if op == "const0":
            values[nid] = zeros
        elif op == "const1":
            values[nid] = ones
        elif op == "not":
            values[nid] = ~values[node.fanins[0]]
        elif op in ("and", "nand"):
            acc = values[node.fanins[0]]
            for f in node.fanins[1:]:
                acc = acc & values[f]
            values[nid] = ~acc if op == "nand" else acc
        elif op in ("or", "nor"):
            acc = values[node.fanins[0]]
            for f in node.fanins[1:]:
                acc = acc | values[f]
            values[nid] = ~acc if op == "nor" else acc
        elif op == "xor":
            values[nid] = values[node.fanins[0]] ^ values[node.fanins[1]]
        elif op == "xnor":
            values[nid] = ~(values[node.fanins[0]] ^ values[node.fanins[1]])
        elif op == "mux":
            s, a, b = (values[f] for f in node.fanins)
            values[nid] = (s & a) | (~s & b)
        else:  # pragma: no cover - op set is closed
            raise NetlistError(f"unknown op {op!r}")


def evaluate_packed(net: LogicNetwork,
                    assignments: Mapping[str, InputValue],
                    batch: int) -> Dict[str, np.ndarray]:
    """Bit-sliced evaluation: 64 assignments per gate-op.

    ``assignments`` maps input names to scalars (0/1/bool, broadcast to
    the whole batch) or ``uint64`` word arrays of shape
    ``(ceil(batch/64),)`` in the little-endian bit-slice layout of
    :func:`repro.utils.bitops.pack_words` (assignment ``i`` -> word
    ``i // 64``, bit ``i % 64``). Returns output name -> word array of
    that shape. Tail bits beyond ``batch`` are unspecified (complement
    gates set them); trim on unpacking with
    :func:`repro.utils.bitops.unpack_words`.

    Semantically identical to :func:`evaluate` over the same unpacked
    batch — :func:`evaluate_vectors_packed` wraps the pack/unpack
    round-trip for boolean-vector callers.
    """
    missing = [name for name in net.input_names if name not in assignments]
    if missing:
        raise NetlistError(f"missing assignments for inputs: {missing[:5]}"
                           + ("..." if len(missing) > 5 else ""))
    nwords = words_for(batch)
    zeros = np.zeros(nwords, dtype=np.uint64)
    ones = ~zeros

    values: list = [None] * len(net.nodes)
    for name in net.input_names:
        v = assignments[name]
        if isinstance(v, np.ndarray) and v.ndim > 0:
            # Only genuine word arrays are accepted — coercing e.g. a
            # boolean batch through bool() would silently broadcast it.
            if v.dtype != np.uint64:
                raise NetlistError(
                    f"packed input {name!r} must be a uint64 word array "
                    f"(pack with repro.utils.bitops.pack_words) or a "
                    f"scalar; got dtype {v.dtype}")
            if v.shape != (nwords,):
                raise NetlistError(
                    f"packed input {name!r} has shape {v.shape}, expected "
                    f"({nwords},) for batch {batch}")
            values[net.input_id(name)] = v
        else:
            values[net.input_id(name)] = ones if v else zeros

    _eval_nodes(net, values, zeros=zeros, ones=ones)

    return {name: values[nid] for name, nid in net.outputs}


def evaluate_vectors_packed(net: LogicNetwork,
                            vectors: Mapping[str, np.ndarray],
                            ) -> Dict[str, np.ndarray]:
    """Boolean-vector facade over :func:`evaluate_packed`.

    Packs each ``(batch,)`` boolean input 64-wide, evaluates word-wise,
    and unpacks the outputs back to boolean arrays — a drop-in
    replacement for :func:`evaluate` on 1-D batches.
    """
    batch = None
    packed: Dict[str, InputValue] = {}
    for name, arr in vectors.items():
        arr = np.asarray(arr)
        if arr.ndim == 0:
            packed[name] = bool(arr)
            continue
        if arr.ndim != 1:
            raise NetlistError(f"packed evaluation needs 1-D batches; "
                               f"input {name!r} has shape {arr.shape}")
        if batch is None:
            batch = arr.shape[0]
        elif arr.shape[0] != batch:
            raise NetlistError(f"input {name!r} has batch {arr.shape[0]}, "
                               f"expected {batch}")
        packed[name] = pack_words(arr)
    if batch is None:
        batch = 1
    words = evaluate_packed(net, packed, batch)
    return {name: unpack_words(w, batch).astype(bool)
            for name, w in words.items()}


def evaluate_ints(net: LogicNetwork, buses: Mapping[str, tuple[int, int]],
                  out_buses: Mapping[str, int]) -> Dict[str, int]:
    """Evaluate with integer bus values (convenience for golden tests).

    ``buses`` maps bus name -> ``(value, width)``; inputs must be named
    ``bus[i]``. ``out_buses`` maps output bus name -> width; outputs named
    ``bus[i]`` are reassembled little-endian into integers.
    """
    assignments: Dict[str, InputValue] = {}
    for bus, (value, width) in buses.items():
        for i, bit in enumerate(int_to_bits(value, width)):
            assignments[f"{bus}[{i}]"] = bool(bit)
    result = evaluate(net, assignments)
    out: Dict[str, int] = {}
    for bus, width in out_buses.items():
        bits = [int(result[f"{bus}[{i}]"]) for i in range(width)]
        out[bus] = bits_to_int(bits)
    return out
