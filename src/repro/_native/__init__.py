"""Optional compiled kernels for the ``uint64`` bit-slice layout.

The C extension :mod:`repro._native._kernels` is built by ``setup.py``
(``ext_modules``, marked *optional*: a missing compiler or failed build
never breaks installation). This package never raises on import — use
:func:`load` to obtain the extension module or ``None``, and let
:mod:`repro.utils.kernels` decide what that means for tier selection.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised indirectly via repro.utils.kernels
    from repro._native import _kernels as _MODULE
except ImportError:  # extension not built — pure-python install
    _MODULE = None

__all__ = ["load", "available"]


def load():
    """Return the compiled ``_kernels`` module, or ``None`` if unbuilt."""
    return _MODULE


def available() -> bool:
    """Whether the compiled extension imported successfully."""
    return _MODULE is not None
