/* Compiled word-level kernels for the bit-slice (uint64) layout.
 *
 * Implements the hot loops of repro.utils.bitops / repro.utils.bitpack
 * bit-for-bit: the axis-0 bit transpose (pack/unpack), per-word
 * popcounts, the saturating carry-save counter of the packed syndrome
 * decoder, the fused decode sweep (dual carry-save count + status
 * combos), and the syndrome-difference pattern match of the matrix
 * codes. Every function evaluates exactly the same bitwise expressions
 * as the numpy reference, in the same order, so results are identical
 * including any tail-padding garbage a complement produces.
 *
 * Layout contract (see repro/utils/bitops.py): element i of the packed
 * axis lives in word i // 64 at bit i % 64, little-endian within the
 * word; the tail of the last word is zero-padded by the packer.
 *
 * The Python-visible wrappers in repro/utils/kernels.py normalise
 * shapes (collapsing leading/trailing axes to the canonical 2-D/3-D
 * forms expected here) and fall back to numpy for anything this module
 * does not accept, so the C side only handles C-contiguous arrays of
 * the exact dtype.
 */

#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <numpy/arrayobject.h>

#include <stdint.h>
#include <string.h>

#if defined(_MSC_VER)
#include <intrin.h>
#define REPRO_POPCOUNT64(x) ((int64_t)__popcnt64(x))
#else
#define REPRO_POPCOUNT64(x) ((int64_t)__builtin_popcountll(x))
#endif

#define WORD_BITS 64

static PyArrayObject *
as_carray(PyObject *obj, int typenum, int ndim, const char *name)
{
    PyArrayObject *arr = (PyArrayObject *)PyArray_FROM_OTF(
        obj, typenum, NPY_ARRAY_IN_ARRAY);
    if (arr == NULL)
        return NULL;
    if (PyArray_NDIM(arr) != ndim) {
        PyErr_Format(PyExc_ValueError, "%s: expected %d-d array, got %d-d",
                     name, ndim, PyArray_NDIM(arr));
        Py_DECREF(arr);
        return NULL;
    }
    return arr;
}

/* ------------------------------------------------------------------ */
/* pack_words_axis0(bits_2d) -> (W, k) uint64                          */
/* ------------------------------------------------------------------ */

static PyObject *
pack_words_axis0(PyObject *self, PyObject *args)
{
    PyObject *bits_obj;
    if (!PyArg_ParseTuple(args, "O", &bits_obj))
        return NULL;
    PyArrayObject *bits = as_carray(bits_obj, NPY_UINT8, 2, "bits");
    if (bits == NULL)
        return NULL;

    const npy_intp count = PyArray_DIM(bits, 0);
    const npy_intp k = PyArray_DIM(bits, 1);
    const npy_intp nwords = (count + WORD_BITS - 1) / WORD_BITS;
    npy_intp dims[2] = {nwords, k};
    PyArrayObject *out = (PyArrayObject *)PyArray_ZEROS(2, dims,
                                                        NPY_UINT64, 0);
    if (out == NULL) {
        Py_DECREF(bits);
        return NULL;
    }
    const uint8_t *src = (const uint8_t *)PyArray_DATA(bits);
    uint64_t *dst = (uint64_t *)PyArray_DATA(out);

    NPY_BEGIN_ALLOW_THREADS
    /* Two-level accumulation: fold each group of 8 rows into a uint8
     * stripe first (byte-wide ops vectorize 8x denser than uint64),
     * then widen the stripe into its byte lane of the word row. The
     * column axis is tiled so stripes and output stay cache-resident. */
    enum { JT = 8192 };
    uint8_t acc[JT];
    for (npy_intp w = 0; w < nwords; ++w) {
        uint64_t *orow = dst + w * k;
        const npy_intp rmax = (count - w * WORD_BITS < WORD_BITS)
            ? count - w * WORD_BITS : WORD_BITS;
        for (npy_intp j0 = 0; j0 < k; j0 += JT) {
            const npy_intp j1 = (j0 + JT < k) ? j0 + JT : k;
            const npy_intp jn = j1 - j0;
            for (npy_intp t = 0; t * 8 < rmax; ++t) {
                const npy_intp rlim = (rmax - t * 8 < 8) ? rmax - t * 8 : 8;
                memset(acc, 0, (size_t)jn);
                for (npy_intp r = 0; r < rlim; ++r) {
                    const uint8_t *srow =
                        src + (w * WORD_BITS + t * 8 + r) * k + j0;
                    /* Select-with-constant-bit instead of a variable
                     * byte shift (which SIMD lacks): compare yields an
                     * all-ones/all-zeros byte mask, AND with the bit. */
                    const uint8_t bitv = (uint8_t)(1u << r);
                    for (npy_intp j = 0; j < jn; ++j)
                        acc[j] |= (uint8_t)((srow[j] != 0) ? bitv : 0);
                }
                const unsigned wshift = (unsigned)(t * 8);
                for (npy_intp j = 0; j < jn; ++j)
                    orow[j0 + j] |= (uint64_t)acc[j] << wshift;
            }
        }
    }
    NPY_END_ALLOW_THREADS

    Py_DECREF(bits);
    return (PyObject *)out;
}

/* ------------------------------------------------------------------ */
/* unpack_words_axis0(words_2d, count) -> (count, k) uint8             */
/* ------------------------------------------------------------------ */

static PyObject *
unpack_words_axis0(PyObject *self, PyObject *args)
{
    PyObject *words_obj;
    Py_ssize_t count;
    if (!PyArg_ParseTuple(args, "On", &words_obj, &count))
        return NULL;
    PyArrayObject *words = as_carray(words_obj, NPY_UINT64, 2, "words");
    if (words == NULL)
        return NULL;

    const npy_intp nwords = PyArray_DIM(words, 0);
    const npy_intp k = PyArray_DIM(words, 1);
    if (count < 0 || (npy_intp)count > nwords * WORD_BITS) {
        PyErr_Format(PyExc_ValueError,
                     "%zd words hold at most %zd bits, need %zd",
                     (Py_ssize_t)nwords,
                     (Py_ssize_t)(nwords * WORD_BITS), count);
        Py_DECREF(words);
        return NULL;
    }
    npy_intp dims[2] = {(npy_intp)count, k};
    PyArrayObject *out = (PyArrayObject *)PyArray_EMPTY(2, dims,
                                                        NPY_UINT8, 0);
    if (out == NULL) {
        Py_DECREF(words);
        return NULL;
    }
    const uint64_t *src = (const uint64_t *)PyArray_DATA(words);
    uint8_t *dst = (uint8_t *)PyArray_DATA(out);

    NPY_BEGIN_ALLOW_THREADS
    for (npy_intp i = 0; i < (npy_intp)count; ++i) {
        const uint64_t *wrow = src + (i / WORD_BITS) * k;
        const unsigned shift = (unsigned)(i % WORD_BITS);
        uint8_t *drow = dst + i * k;
        for (npy_intp j = 0; j < k; ++j)
            drow[j] = (uint8_t)((wrow[j] >> shift) & 1u);
    }
    NPY_END_ALLOW_THREADS

    Py_DECREF(words);
    return (PyObject *)out;
}

/* ------------------------------------------------------------------ */
/* popcount_words(words_1d) -> (N,) int64                              */
/* ------------------------------------------------------------------ */

static PyObject *
popcount_words(PyObject *self, PyObject *args)
{
    PyObject *words_obj;
    if (!PyArg_ParseTuple(args, "O", &words_obj))
        return NULL;
    PyArrayObject *words = as_carray(words_obj, NPY_UINT64, 1, "words");
    if (words == NULL)
        return NULL;

    npy_intp n = PyArray_DIM(words, 0);
    PyArrayObject *out = (PyArrayObject *)PyArray_EMPTY(1, &n,
                                                        NPY_INT64, 0);
    if (out == NULL) {
        Py_DECREF(words);
        return NULL;
    }
    const uint64_t *src = (const uint64_t *)PyArray_DATA(words);
    int64_t *dst = (int64_t *)PyArray_DATA(out);

    NPY_BEGIN_ALLOW_THREADS
    for (npy_intp i = 0; i < n; ++i)
        dst[i] = REPRO_POPCOUNT64(src[i]);
    NPY_END_ALLOW_THREADS

    Py_DECREF(words);
    return (PyObject *)out;
}

/* ------------------------------------------------------------------ */
/* Carry-save sideways counter core (shared by saturating_count2 and   */
/* decode_sweep). planes is (outer, depth, inner); ones/twos are the   */
/* zero-initialised (outer, inner) accumulators. The update order      */
/* (twos before ones) matches the numpy reference exactly.             */
/* ------------------------------------------------------------------ */

static void
count2_core(const uint64_t *planes, npy_intp outer, npy_intp depth,
            npy_intp inner, uint64_t *ones, uint64_t *twos)
{
    for (npy_intp o = 0; o < outer; ++o) {
        uint64_t *orow = ones + o * inner;
        uint64_t *trow = twos + o * inner;
        for (npy_intp d = 0; d < depth; ++d) {
            const uint64_t *lane = planes + (o * depth + d) * inner;
            for (npy_intp j = 0; j < inner; ++j) {
                const uint64_t x = lane[j];
                trow[j] |= orow[j] & x;
                orow[j] ^= x;
            }
        }
    }
}

static PyObject *
saturating_count2(PyObject *self, PyObject *args)
{
    PyObject *planes_obj;
    if (!PyArg_ParseTuple(args, "O", &planes_obj))
        return NULL;
    PyArrayObject *planes = as_carray(planes_obj, NPY_UINT64, 3, "planes");
    if (planes == NULL)
        return NULL;

    const npy_intp outer = PyArray_DIM(planes, 0);
    const npy_intp depth = PyArray_DIM(planes, 1);
    const npy_intp inner = PyArray_DIM(planes, 2);
    npy_intp dims[2] = {outer, inner};
    PyArrayObject *ones = (PyArrayObject *)PyArray_ZEROS(2, dims,
                                                         NPY_UINT64, 0);
    PyArrayObject *twos = (PyArrayObject *)PyArray_ZEROS(2, dims,
                                                         NPY_UINT64, 0);
    if (ones == NULL || twos == NULL) {
        Py_XDECREF(ones);
        Py_XDECREF(twos);
        Py_DECREF(planes);
        return NULL;
    }

    NPY_BEGIN_ALLOW_THREADS
    count2_core((const uint64_t *)PyArray_DATA(planes), outer, depth,
                inner, (uint64_t *)PyArray_DATA(ones),
                (uint64_t *)PyArray_DATA(twos));
    NPY_END_ALLOW_THREADS

    Py_DECREF(planes);
    return Py_BuildValue("(NN)", ones, twos);
}

/* ------------------------------------------------------------------ */
/* decode_sweep(lead_3d, ctr_3d) -> 5 x (W, inner) uint64 status masks */
/*                                                                     */
/* The fused packed decoder: dual carry-save counts over the syndrome  */
/* diagonal planes, then the status combos                              */
/*   l0 = ~ones & ~twos, l1 = ones & ~twos (per plane pair)            */
/*   no_error = l0 & c0, data_error = l1 & c1, lead_check = l1 & c0,   */
/*   ctr_check = l0 & c1, uncorrectable = l_twos | c_twos              */
/* evaluated in one elementwise pass instead of eight numpy temporaries.*/
/* ------------------------------------------------------------------ */

static PyObject *
decode_sweep(PyObject *self, PyObject *args)
{
    PyObject *lead_obj, *ctr_obj;
    if (!PyArg_ParseTuple(args, "OO", &lead_obj, &ctr_obj))
        return NULL;
    PyArrayObject *lead = as_carray(lead_obj, NPY_UINT64, 3, "lead");
    if (lead == NULL)
        return NULL;
    PyArrayObject *ctr = as_carray(ctr_obj, NPY_UINT64, 3, "ctr");
    if (ctr == NULL) {
        Py_DECREF(lead);
        return NULL;
    }

    const npy_intp outer = PyArray_DIM(lead, 0);
    const npy_intp inner = PyArray_DIM(lead, 2);
    if (PyArray_DIM(ctr, 0) != outer || PyArray_DIM(ctr, 2) != inner) {
        PyErr_Format(PyExc_ValueError,
                     "lead/ctr outer and inner dims must match");
        Py_DECREF(lead);
        Py_DECREF(ctr);
        return NULL;
    }

    npy_intp dims[2] = {outer, inner};
    PyArrayObject *masks[5] = {NULL, NULL, NULL, NULL, NULL};
    uint64_t *l_ones = NULL, *l_twos = NULL, *c_ones = NULL, *c_twos = NULL;
    int ok = 1;
    for (int i = 0; i < 5; ++i) {
        masks[i] = (PyArrayObject *)PyArray_EMPTY(2, dims, NPY_UINT64, 0);
        if (masks[i] == NULL)
            ok = 0;
    }
    const size_t nbytes = (size_t)(outer * inner) * sizeof(uint64_t);
    if (ok) {
        l_ones = (uint64_t *)PyMem_Calloc(1, nbytes ? nbytes : 1);
        l_twos = (uint64_t *)PyMem_Calloc(1, nbytes ? nbytes : 1);
        c_ones = (uint64_t *)PyMem_Calloc(1, nbytes ? nbytes : 1);
        c_twos = (uint64_t *)PyMem_Calloc(1, nbytes ? nbytes : 1);
        if (!l_ones || !l_twos || !c_ones || !c_twos) {
            PyErr_NoMemory();
            ok = 0;
        }
    }
    if (!ok) {
        for (int i = 0; i < 5; ++i)
            Py_XDECREF(masks[i]);
        PyMem_Free(l_ones);
        PyMem_Free(l_twos);
        PyMem_Free(c_ones);
        PyMem_Free(c_twos);
        Py_DECREF(lead);
        Py_DECREF(ctr);
        return NULL;
    }

    uint64_t *no_error = (uint64_t *)PyArray_DATA(masks[0]);
    uint64_t *data_error = (uint64_t *)PyArray_DATA(masks[1]);
    uint64_t *lead_check = (uint64_t *)PyArray_DATA(masks[2]);
    uint64_t *ctr_check = (uint64_t *)PyArray_DATA(masks[3]);
    uint64_t *uncorrectable = (uint64_t *)PyArray_DATA(masks[4]);

    NPY_BEGIN_ALLOW_THREADS
    count2_core((const uint64_t *)PyArray_DATA(lead), outer,
                PyArray_DIM(lead, 1), inner, l_ones, l_twos);
    count2_core((const uint64_t *)PyArray_DATA(ctr), outer,
                PyArray_DIM(ctr, 1), inner, c_ones, c_twos);
    for (npy_intp j = 0; j < outer * inner; ++j) {
        const uint64_t lt = l_twos[j], ct = c_twos[j];
        const uint64_t l0 = ~l_ones[j] & ~lt;
        const uint64_t l1 = l_ones[j] & ~lt;
        const uint64_t c0 = ~c_ones[j] & ~ct;
        const uint64_t c1 = c_ones[j] & ~ct;
        no_error[j] = l0 & c0;
        data_error[j] = l1 & c1;
        lead_check[j] = l1 & c0;
        ctr_check[j] = l0 & c1;
        uncorrectable[j] = lt | ct;
    }
    NPY_END_ALLOW_THREADS

    PyMem_Free(l_ones);
    PyMem_Free(l_twos);
    PyMem_Free(c_ones);
    PyMem_Free(c_twos);
    Py_DECREF(lead);
    Py_DECREF(ctr);
    return Py_BuildValue("(NNNNN)", masks[0], masks[1], masks[2],
                         masks[3], masks[4]);
}

/* ------------------------------------------------------------------ */
/* match_pattern(diff_3d, pattern) -> (W, inner) uint64                */
/*                                                                     */
/* AND over the r syndrome-difference planes, complementing plane j    */
/* when bit j of the pattern is clear — the matrix codes' packed       */
/* column match, fused instead of r numpy temporaries.                 */
/* ------------------------------------------------------------------ */

static PyObject *
match_pattern(PyObject *self, PyObject *args)
{
    PyObject *diff_obj;
    unsigned long long pattern;
    if (!PyArg_ParseTuple(args, "OK", &diff_obj, &pattern))
        return NULL;
    PyArrayObject *diff = as_carray(diff_obj, NPY_UINT64, 3, "diff");
    if (diff == NULL)
        return NULL;

    const npy_intp outer = PyArray_DIM(diff, 0);
    const npy_intp depth = PyArray_DIM(diff, 1);
    const npy_intp inner = PyArray_DIM(diff, 2);
    if (depth < 1) {
        PyErr_SetString(PyExc_ValueError,
                        "diff must have at least one plane");
        Py_DECREF(diff);
        return NULL;
    }
    npy_intp dims[2] = {outer, inner};
    PyArrayObject *out = (PyArrayObject *)PyArray_EMPTY(2, dims,
                                                        NPY_UINT64, 0);
    if (out == NULL) {
        Py_DECREF(diff);
        return NULL;
    }
    const uint64_t *src = (const uint64_t *)PyArray_DATA(diff);
    uint64_t *dst = (uint64_t *)PyArray_DATA(out);

    NPY_BEGIN_ALLOW_THREADS
    for (npy_intp o = 0; o < outer; ++o) {
        uint64_t *orow = dst + o * inner;
        const uint64_t *lane = src + o * depth * inner;
        if ((pattern >> 0) & 1ULL)
            for (npy_intp j = 0; j < inner; ++j)
                orow[j] = lane[j];
        else
            for (npy_intp j = 0; j < inner; ++j)
                orow[j] = ~lane[j];
        for (npy_intp d = 1; d < depth; ++d) {
            lane = src + (o * depth + d) * inner;
            if ((pattern >> d) & 1ULL)
                for (npy_intp j = 0; j < inner; ++j)
                    orow[j] &= lane[j];
            else
                for (npy_intp j = 0; j < inner; ++j)
                    orow[j] &= ~lane[j];
        }
    }
    NPY_END_ALLOW_THREADS

    Py_DECREF(diff);
    return (PyObject *)out;
}

/* ------------------------------------------------------------------ */

static PyMethodDef kernel_methods[] = {
    {"pack_words_axis0", pack_words_axis0, METH_VARARGS,
     "pack_words_axis0(bits_2d) -> (W, k) uint64 words\n\n"
     "Bit-transpose axis 0 of a C-contiguous (B, k) uint8 array into\n"
     "ceil(B/64) little-endian uint64 word rows (tail zero-padded)."},
    {"unpack_words_axis0", unpack_words_axis0, METH_VARARGS,
     "unpack_words_axis0(words_2d, count) -> (count, k) uint8 bits"},
    {"popcount_words", popcount_words, METH_VARARGS,
     "popcount_words(words_1d) -> (N,) int64 per-word set-bit counts"},
    {"saturating_count2", saturating_count2, METH_VARARGS,
     "saturating_count2(planes_3d) -> (ones, twos) (outer, inner) words"},
    {"decode_sweep", decode_sweep, METH_VARARGS,
     "decode_sweep(lead_3d, ctr_3d) -> (no_error, data_error,\n"
     "lead_check, ctr_check, uncorrectable) (outer, inner) word masks"},
    {"match_pattern", match_pattern, METH_VARARGS,
     "match_pattern(diff_3d, pattern) -> (outer, inner) uint64 mask"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native._kernels",
    "Compiled word-level kernels for the uint64 bit-slice layout.",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernels(void)
{
    import_array();
    return PyModule_Create(&kernels_module);
}
