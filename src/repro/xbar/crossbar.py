"""Dense bit-level crossbar array model.

The array stores one bit per memristor as a numpy boolean matrix (LRS ->
``True``/1, HRS -> ``False``/0, see :mod:`repro.devices`). All accesses go
through methods rather than raw array indexing so that:

* writes are counted (endurance/telemetry),
* fault injection has a single choke point (:meth:`flip`),
* observers (e.g. the ECC architecture model) can veto or mirror updates.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CrossbarError
from repro.utils.validation import check_index, check_positive

#: Signature of a write observer: (rows, cols, old_values, new_values).
WriteObserver = Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], None]


class CrossbarArray:
    """A ``rows x cols`` crossbar of single-bit memristors.

    Parameters
    ----------
    rows, cols:
        Array dimensions. A square ``n x n`` array is typical (the paper
        uses ``n = 1020``), but the CMEM components are rectangular.
    name:
        Label used in traces and error messages.
    """

    def __init__(self, rows: int, cols: int, name: str = "xbar"):
        check_positive("rows", rows)
        check_positive("cols", cols)
        self.rows = rows
        self.cols = cols
        self.name = name
        self._cells = np.zeros((rows, cols), dtype=bool)
        self._write_counts = np.zeros((rows, cols), dtype=np.int64)
        self._observers: list[WriteObserver] = []
        self.total_writes = 0
        self.total_flips = 0

    # ------------------------------------------------------------------ #
    # Shape and representation
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) of the array."""
        return (self.rows, self.cols)

    @property
    def size(self) -> int:
        """Total number of memristors in the array."""
        return self.rows * self.cols

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CrossbarArray(name={self.name!r}, rows={self.rows}, cols={self.cols})"

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def read_bit(self, row: int, col: int) -> int:
        """Read the bit stored at ``(row, col)``."""
        check_index("row", row, self.rows)
        check_index("col", col, self.cols)
        return int(self._cells[row, col])

    def read_row(self, row: int, cols: Optional[Sequence[int]] = None) -> np.ndarray:
        """Read a full row (or the listed columns of it) as a uint8 vector."""
        check_index("row", row, self.rows)
        if cols is None:
            return self._cells[row, :].astype(np.uint8)
        return self._cells[row, list(cols)].astype(np.uint8)

    def read_col(self, col: int, rows: Optional[Sequence[int]] = None) -> np.ndarray:
        """Read a full column (or the listed rows of it) as a uint8 vector."""
        check_index("col", col, self.cols)
        if rows is None:
            return self._cells[:, col].astype(np.uint8)
        return self._cells[list(rows), col].astype(np.uint8)

    def read_region(self, row0: int, col0: int, height: int, width: int) -> np.ndarray:
        """Read a rectangular region as a uint8 matrix."""
        self._check_region(row0, col0, height, width)
        return self._cells[row0:row0 + height, col0:col0 + width].astype(np.uint8)

    def snapshot(self) -> np.ndarray:
        """Copy of the full array contents as a uint8 matrix."""
        return self._cells.astype(np.uint8)

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def write_bit(self, row: int, col: int, value: int) -> None:
        """Write one bit (a controller-mediated SET/RESET)."""
        check_index("row", row, self.rows)
        check_index("col", col, self.cols)
        self._apply_write(np.array([row]), np.array([col]),
                          np.array([bool(value)]))

    def write_row(self, row: int, values: Sequence[int] | np.ndarray,
                  cols: Optional[Sequence[int]] = None) -> None:
        """Write a vector of bits into a row (optionally only some columns)."""
        check_index("row", row, self.rows)
        col_idx = np.arange(self.cols) if cols is None else np.asarray(list(cols))
        vals = np.asarray(values, dtype=bool)
        if vals.shape != col_idx.shape:
            raise CrossbarError(
                f"write_row to {self.name}: {vals.size} values for {col_idx.size} columns")
        self._apply_write(np.full(col_idx.shape, row), col_idx, vals)

    def write_col(self, col: int, values: Sequence[int] | np.ndarray,
                  rows: Optional[Sequence[int]] = None) -> None:
        """Write a vector of bits into a column (optionally only some rows)."""
        check_index("col", col, self.cols)
        row_idx = np.arange(self.rows) if rows is None else np.asarray(list(rows))
        vals = np.asarray(values, dtype=bool)
        if vals.shape != row_idx.shape:
            raise CrossbarError(
                f"write_col to {self.name}: {vals.size} values for {row_idx.size} rows")
        self._apply_write(row_idx, np.full(row_idx.shape, col), vals)

    def write_region(self, row0: int, col0: int, values: np.ndarray) -> None:
        """Write a rectangular block of bits with top-left at (row0, col0)."""
        vals = np.asarray(values, dtype=bool)
        height, width = vals.shape
        self._check_region(row0, col0, height, width)
        rr, cc = np.meshgrid(np.arange(row0, row0 + height),
                             np.arange(col0, col0 + width), indexing="ij")
        self._apply_write(rr.ravel(), cc.ravel(), vals.ravel())

    def fill(self, value: int) -> None:
        """Set every cell to ``value`` (bulk RESET/SET)."""
        rr, cc = np.meshgrid(np.arange(self.rows), np.arange(self.cols),
                             indexing="ij")
        self._apply_write(rr.ravel(), cc.ravel(),
                          np.full(self.size, bool(value)))

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #

    def flip(self, row: int, col: int) -> None:
        """Invert a cell *without* a controlled write: a soft error.

        Bypasses write observers deliberately — the physical upset is
        invisible to the controller, which is exactly the failure mode the
        paper's ECC exists to catch.
        """
        check_index("row", row, self.rows)
        check_index("col", col, self.cols)
        self._cells[row, col] = ~self._cells[row, col]
        self.total_flips += 1

    def flip_many(self, rows: Sequence[int], cols: Sequence[int]) -> None:
        """Vectorized :meth:`flip` for fault campaigns.

        A ``(row, col)`` pair listed ``k`` times inverts the cell ``k``
        times (an even count cancels out), exactly like ``k`` calls to
        :meth:`flip` — plain fancy-index assignment would apply the
        inversion once per *unique* cell while ``total_flips`` counted
        every entry, letting state and counter disagree.
        """
        r = np.asarray(list(rows))
        c = np.asarray(list(cols))
        if r.shape != c.shape:
            raise CrossbarError("flip_many requires equal-length row/col lists")
        np.logical_xor.at(self._cells, (r, c), True)
        self.total_flips += int(r.size)

    # ------------------------------------------------------------------ #
    # Observers and internals
    # ------------------------------------------------------------------ #

    @contextmanager
    def observers_suspended(self):
        """Temporarily disable write observers.

        Used by the ECC correction path: when the CMEM controller rewrites
        a corrected bit, the check-bits already reflect the corrected value,
        so the continuous-update observer must *not* fire (it would XOR the
        erroneous/corrected difference into parity and corrupt it).
        """
        saved = self._observers
        self._observers = []
        try:
            yield self
        finally:
            self._observers = saved

    def add_write_observer(self, observer: WriteObserver) -> None:
        """Register a callback invoked on every controlled write."""
        self._observers.append(observer)

    def remove_write_observer(self, observer: WriteObserver) -> None:
        """Unregister a previously-added write observer."""
        self._observers.remove(observer)

    def write_count(self, row: int, col: int) -> int:
        """Number of controlled writes the cell has received (endurance)."""
        return int(self._write_counts[row, col])

    def _apply_write(self, rows: np.ndarray, cols: np.ndarray,
                     values: np.ndarray) -> None:
        old = self._cells[rows, cols].copy()
        self._cells[rows, cols] = values
        self._write_counts[rows, cols] += 1
        self.total_writes += int(rows.size)
        for observer in self._observers:
            observer(rows, cols, old, values)

    def _check_region(self, row0: int, col0: int, height: int, width: int) -> None:
        check_index("row0", row0, self.rows)
        check_index("col0", col0, self.cols)
        if row0 + height > self.rows or col0 + width > self.cols:
            raise CrossbarError(
                f"region ({row0},{col0})+({height}x{width}) exceeds "
                f"{self.name} bounds {self.rows}x{self.cols}")
