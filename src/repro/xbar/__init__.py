"""Memristive crossbar array and MAGIC stateful-logic engine.

This subpackage is the substrate everything else runs on: an ``n x n``
crossbar of memristors storing bits as resistance states, plus an engine
executing MAGIC NOR/NOT gates either *in-row* (gate operands share a row,
replicated in parallel across many rows — paper Fig. 1(a)) or *in-column*
(paper Fig. 1(b)). Each parallel gate issue costs one clock cycle, as does
each batched output-initialization, matching the cycle accounting used by
SIMPLER and by the paper's Table I.
"""

from repro.xbar.crossbar import CrossbarArray
from repro.xbar.magic import MagicEngine
from repro.xbar.ops import (
    Axis,
    CopyOp,
    InitOp,
    MagicNorOp,
    OpKind,
    ReadOp,
    WriteOp,
)
from repro.xbar.trace import ExecutionTrace, TraceRecord

__all__ = [
    "CrossbarArray",
    "MagicEngine",
    "Axis",
    "OpKind",
    "MagicNorOp",
    "InitOp",
    "CopyOp",
    "ReadOp",
    "WriteOp",
    "ExecutionTrace",
    "TraceRecord",
]
