"""MAGIC stateful-logic execution engine.

Faithful functional semantics of a MAGIC NOR (Kvatinsky et al., 2014):

* the output memristor must be initialized to LRS (logical 1) beforehand;
* during the gate, the output can only switch LRS -> HRS (it switches when
  any input is in LRS), never HRS -> LRS.

Therefore the device-accurate update is ``out <- out AND NOR(inputs)``.
When the output was properly initialized this reduces to
``out <- NOR(inputs)``. The engine supports two modes:

* ``strict=True`` (default): raise :class:`UninitializedOutputError` if any
  targeted output cell is not in LRS — this catches synthesis/allocation
  bugs where a cell is reused without re-initialization;
* ``strict=False``: silently apply the device-accurate AND semantics,
  which is what physical hardware would do.

Each issued operation costs one clock cycle regardless of how many lanes it
spans; this is the SIMD property the whole paper builds on.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import MagicOperationError, UninitializedOutputError
from repro.xbar.crossbar import CrossbarArray
from repro.xbar.ops import Axis, InitOp, MagicNorOp, OpKind
from repro.xbar.trace import ExecutionTrace


class MagicEngine:
    """Executes MAGIC operations on a :class:`CrossbarArray`.

    Parameters
    ----------
    crossbar:
        The array the engine drives.
    strict:
        Whether to require LRS-initialized outputs (see module docstring).
    trace:
        Optional shared :class:`ExecutionTrace`; one is created if absent.
    """

    def __init__(self, crossbar: CrossbarArray, strict: bool = True,
                 trace: Optional[ExecutionTrace] = None):
        self.crossbar = crossbar
        self.strict = strict
        self.trace = trace if trace is not None else ExecutionTrace()
        self.cycle = 0
        #: Device switching events (LRS<->HRS transitions) caused by
        #: gates and initializations — the first-order energy driver in
        #: resistive memories. NOR gates switch LRS->HRS on outputs
        #: whose result is 0; inits switch HRS->LRS on cells that were 0.
        self.switch_events = 0

    # ------------------------------------------------------------------ #
    # Public operations
    # ------------------------------------------------------------------ #

    def execute(self, op) -> None:
        """Execute a :class:`MagicNorOp` or :class:`InitOp` (one cycle)."""
        if isinstance(op, MagicNorOp):
            self._execute_nor(op)
        elif isinstance(op, InitOp):
            self._execute_init(op)
        else:
            raise MagicOperationError(f"MagicEngine cannot execute {type(op).__name__}")

    def nor(self, axis: Axis, inputs: Sequence[int], output: int,
            lanes: Sequence[int]) -> None:
        """Convenience wrapper building and executing a :class:`MagicNorOp`."""
        self.execute(MagicNorOp(axis, tuple(inputs), output, tuple(lanes)))

    def not_(self, axis: Axis, input_: int, output: int,
             lanes: Sequence[int]) -> None:
        """MAGIC NOT = one-input NOR."""
        self.nor(axis, (input_,), output, lanes)

    def init(self, axis: Axis, targets: Sequence[int],
             lanes: Sequence[int]) -> None:
        """Initialize output cells to LRS in a single cycle."""
        self.execute(InitOp(axis, tuple(targets), tuple(lanes)))

    def tick(self, count: int = 1, note: str = "") -> None:
        """Advance the clock without issuing an operation (stall cycles)."""
        if count < 0:
            raise MagicOperationError(f"cannot tick by {count}")
        self.cycle += count

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _execute_nor(self, op: MagicNorOp) -> None:
        lanes = np.asarray(op.lanes)
        in_idx = np.asarray(op.inputs)
        cells = self.crossbar._cells  # engine is a friend of the array
        if op.axis is Axis.ROW:
            self._check_bounds(lanes, self.crossbar.rows, "lane/row")
            self._check_bounds(in_idx, self.crossbar.cols, "input/col")
            self._check_bounds(np.array([op.output]), self.crossbar.cols,
                               "output/col")
            out_cells = cells[np.ix_(lanes, [op.output])][:, 0]
            in_cells = cells[np.ix_(lanes, in_idx)]
            result = ~in_cells.any(axis=1)
            self._require_initialized(out_cells, op)
            self.switch_events += int((out_cells & ~result).sum())
            cells[lanes, op.output] = out_cells & result
        else:
            self._check_bounds(lanes, self.crossbar.cols, "lane/col")
            self._check_bounds(in_idx, self.crossbar.rows, "input/row")
            self._check_bounds(np.array([op.output]), self.crossbar.rows,
                               "output/row")
            out_cells = cells[np.ix_([op.output], lanes)][0, :]
            in_cells = cells[np.ix_(in_idx, lanes)]
            result = ~in_cells.any(axis=0)
            self._require_initialized(out_cells, op)
            self.switch_events += int((out_cells & ~result).sum())
            cells[op.output, lanes] = out_cells & result
        self.trace.append(self.cycle, OpKind.NOR, op)
        self.cycle += 1

    def _execute_init(self, op: InitOp) -> None:
        lanes = np.asarray(op.lanes)
        targets = np.asarray(op.targets)
        cells = self.crossbar._cells
        if op.axis is Axis.ROW:
            self._check_bounds(lanes, self.crossbar.rows, "lane/row")
            self._check_bounds(targets, self.crossbar.cols, "target/col")
            region = cells[np.ix_(lanes, targets)]
            self.switch_events += int((~region).sum())
            cells[np.ix_(lanes, targets)] = True
        else:
            self._check_bounds(lanes, self.crossbar.cols, "lane/col")
            self._check_bounds(targets, self.crossbar.rows, "target/row")
            region = cells[np.ix_(targets, lanes)]
            self.switch_events += int((~region).sum())
            cells[np.ix_(targets, lanes)] = True
        self.trace.append(self.cycle, OpKind.INIT, op)
        self.cycle += 1

    def _require_initialized(self, out_cells: np.ndarray, op: MagicNorOp) -> None:
        if self.strict and not out_cells.all():
            bad = int((~out_cells).sum())
            raise UninitializedOutputError(
                f"MAGIC NOR on {self.crossbar.name}: {bad} of "
                f"{out_cells.size} output cells (index {op.output}, axis "
                f"{op.axis.value}) were not initialized to LRS")

    @staticmethod
    def _check_bounds(indices: np.ndarray, limit: int, what: str) -> None:
        if indices.size and (indices.min() < 0 or indices.max() >= limit):
            raise MagicOperationError(
                f"{what} index out of range [0, {limit}): "
                f"{indices.min()}..{indices.max()}")
