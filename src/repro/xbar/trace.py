"""Cycle-accurate execution traces.

Every operation issued to a :class:`repro.xbar.magic.MagicEngine` is
appended to an :class:`ExecutionTrace` with the cycle at which it ran.
Latency results (paper Table I) are read off these traces, and tests use
them to assert cycle-accounting invariants (e.g. one cycle per parallel
gate regardless of lane count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.xbar.ops import OpKind


@dataclass(frozen=True)
class TraceRecord:
    """One executed operation: which cycle, what kind, and the op object."""

    cycle: int
    kind: OpKind
    op: object
    note: str = ""


@dataclass
class ExecutionTrace:
    """Ordered log of executed operations with per-kind counters."""

    records: List[TraceRecord] = field(default_factory=list)

    def append(self, cycle: int, kind: OpKind, op: object, note: str = "") -> None:
        """Record an operation executed at ``cycle``."""
        self.records.append(TraceRecord(cycle, kind, op, note))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def cycles(self) -> int:
        """Total cycles elapsed (cycle indices are 0-based)."""
        if not self.records:
            return 0
        return self.records[-1].cycle + 1

    def count(self, kind: OpKind) -> int:
        """Number of recorded operations of the given kind."""
        return sum(1 for r in self.records if r.kind is kind)

    @property
    def gate_ops(self) -> int:
        """Number of NOR/NOT gate issues."""
        return self.count(OpKind.NOR)

    @property
    def init_ops(self) -> int:
        """Number of initialization issues."""
        return self.count(OpKind.INIT)

    def summary(self) -> dict:
        """Aggregate counters keyed by op kind plus total cycles."""
        out = {kind.value: self.count(kind) for kind in OpKind}
        out["cycles"] = self.cycles
        return out
