"""Refresh-vs-ECC comparison (paper Sec. II-B claim, quantified).

The paper notes that the prior-work refresh mechanism (Tosson et al.)
"can still be used in conjunction with the mechanism proposed in this
paper": refresh suppresses *accumulating drift* but cannot address
abrupt upsets or the drift flips occurring between refreshes, while the
diagonal ECC corrects any single error per block regardless of cause.
This module evaluates the four protection configurations on the same
1 GB memory model, demonstrating:

* refresh alone leaves the abrupt-upset floor;
* ECC alone already dominates refresh alone;
* refresh + ECC is the strongest — refresh shrinks the per-window bit
  flip probability that the block-level binomial then squares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.blocks import BlockGrid
from repro.faults.batch import (
    DEFAULT_BATCH_SIZE,
    CampaignRunner,
    derive_campaign_seeds,
)
from repro.faults.campaign import CampaignResult
from repro.faults.drift import DriftInjector, DriftModel
from repro.reliability.model import MemoryOrganization, \
    window_failure_probability
from repro.utils.backend import BackendLike
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class ProtectionConfig:
    """One row of the comparison: which mechanisms are active."""

    name: str
    use_ecc: bool
    refresh_period_hours: Optional[float]


@dataclass(frozen=True)
class DriftComparisonRow:
    """Evaluated MTTF of one protection configuration."""

    config: ProtectionConfig
    bit_flip_probability: float
    mttf_hours: float


def _mttf_no_ecc(p_bit: float, org: MemoryOrganization) -> float:
    """Unprotected memory: any flip within the window is failure."""
    log_ok = org.total_data_bits * math.log1p(-p_bit)
    p_fail = -math.expm1(log_ok)
    if p_fail <= 0:
        return float("inf")
    return org.check_period_hours / p_fail


def _mttf_with_ecc(p_bit: float, org: MemoryOrganization) -> float:
    """Diagonal-ECC memory: any block with >= 2 flips fails."""
    p_fail = window_failure_probability(p_bit, org.cells_per_block,
                                        org.total_blocks)
    if p_fail <= 0:
        return float("inf")
    return org.check_period_hours / p_fail


def compare_protections(model: Optional[DriftModel] = None,
                        organization: Optional[MemoryOrganization] = None,
                        refresh_period_hours: float = 1.0,
                        ) -> List[DriftComparisonRow]:
    """Evaluate none / refresh-only / ECC-only / refresh+ECC.

    The window is the organization's check period (paper: 24 h); the
    refresh runs every ``refresh_period_hours`` within it.
    """
    model = model or DriftModel()
    org = organization or MemoryOrganization()
    window = org.check_period_hours

    configs = [
        ProtectionConfig("none", False, None),
        ProtectionConfig("refresh only", False, refresh_period_hours),
        ProtectionConfig("ECC only", True, None),
        ProtectionConfig("refresh + ECC", True, refresh_period_hours),
    ]
    rows = []
    for cfg in configs:
        p_bit = model.flip_probability(window, cfg.refresh_period_hours)
        mttf = (_mttf_with_ecc if cfg.use_ecc else _mttf_no_ecc)(p_bit, org)
        rows.append(DriftComparisonRow(cfg, p_bit, mttf))
    return rows


def simulate_drift_survival(grid: BlockGrid,
                            model: Optional[DriftModel] = None,
                            window_hours: float = 24.0,
                            refresh_period_hours: Optional[float] = None,
                            trials: int = 256,
                            seed: SeedLike = 0,
                            engine: str = "batched",
                            batch_size: int = DEFAULT_BATCH_SIZE,
                            workers: int = 1,
                            seeding: Optional[str] = None,
                            backend: BackendLike = None,
                            include_check_bits: bool = True,
                            packing: str = "u8",
                            ) -> CampaignResult:
    """Grid-level drift survival through the real ECC machinery.

    Each trial samples one drift + abrupt exposure window over a fresh
    protected ``n x n`` crossbar (:class:`repro.faults.drift
    .DriftInjector`), runs the full check sweep, and classifies the trial
    — the empirical counterpart of the closed-form composition the rows
    of :func:`compare_protections` are built from.

    Dispatches through :class:`repro.faults.batch.CampaignRunner`, so
    drift sweeps get the batched ``(B, n, n)`` kernels, process-pool
    sharding, adaptive sampling, and array-backend selection with the
    standard seeding contracts (``engine="scalar"`` is the bit-identical
    sequential reference; per-trial mode is shard-invariant and needs an
    integer seed). ``packing="u64"`` selects the bit-sliced uint64
    layout (64 trials per word, identical tallies). The single ``seed``
    is split into data-fill and injection streams via
    :func:`repro.utils.rng.spawn_rngs`.
    """
    model = model or DriftModel()
    campaign_seed, injector_seed = derive_campaign_seeds(seed, seeding,
                                                         workers)
    runner = CampaignRunner(
        grid,
        DriftInjector(model, window_hours, refresh_period_hours,
                      seed=injector_seed,
                      include_check_bits=include_check_bits),
        seed=campaign_seed, include_check_bits=include_check_bits,
        engine=engine, batch_size=batch_size, workers=workers,
        seeding=seeding, backend=backend, packing=packing)
    return runner.run(trials)


def validate_drift_model(grid: BlockGrid, model: DriftModel,
                         window_hours: float,
                         refresh_period_hours: Optional[float] = None,
                         trials: int = 256, seed: SeedLike = 0,
                         tolerance_sigmas: float = 5.0,
                         backend: BackendLike = None) -> dict:
    """Empirical drift campaign vs the closed-form block binomial.

    The analytic side converts the model's per-bit window flip
    probability into P(some block of the crossbar catches >= 2 upsets) —
    the same composition as :func:`compare_protections` but for one
    crossbar, counting each block's codeword (``m^2 + 2m`` cells). The
    empirical side is :func:`simulate_drift_survival`'s failure rate
    (trials not fully restored). They agree within sampling error except
    for the rare aliasing cases (a multi-upset block that happens to
    restore), so ``consistent`` uses a one-sided-friendly sigma band.
    """
    n_cells = grid.cells_per_block + grid.check_bits_per_block
    p_bit = model.flip_probability(window_hours, refresh_period_hours)
    analytic = window_failure_probability(p_bit, n_cells, grid.block_count)

    mc = simulate_drift_survival(
        grid, model, window_hours, refresh_period_hours, trials=trials,
        seed=seed, backend=backend)
    sigma = math.sqrt(max(analytic * (1 - analytic), 1e-300) / trials)
    diff = abs(mc.failure_rate - analytic)
    return {
        "analytic": analytic,
        "empirical": mc.failure_rate,
        "sigma": sigma,
        "difference": diff,
        "consistent": diff <= tolerance_sigmas * sigma + 1e-12,
        "silent": mc.silent,
        "trials": trials,
        "bit_flip_probability": p_bit,
    }


def refresh_period_sweep(model: Optional[DriftModel] = None,
                         organization: Optional[MemoryOrganization] = None,
                         periods_hours: tuple = (0.25, 1.0, 4.0, 12.0, 24.0),
                         ) -> List[dict]:
    """MTTF of refresh+ECC across refresh periods (diminishing returns:
    once drift is suppressed below the abrupt floor, refreshing harder
    buys nothing — only ECC addresses the remainder)."""
    model = model or DriftModel()
    org = organization or MemoryOrganization()
    window = org.check_period_hours
    rows = []
    for r in periods_hours:
        p_bit = model.flip_probability(window, r)
        rows.append({
            "refresh_period_hours": r,
            "bit_flip_probability": p_bit,
            "mttf_hours": _mttf_with_ecc(p_bit, org),
            "drift_share": model.drift_exposure(window, r)
            / max(model.drift_exposure(window, r)
                  + model.abrupt_exposure(window), 1e-300),
        })
    return rows
