"""Refresh-vs-ECC comparison (paper Sec. II-B claim, quantified).

The paper notes that the prior-work refresh mechanism (Tosson et al.)
"can still be used in conjunction with the mechanism proposed in this
paper": refresh suppresses *accumulating drift* but cannot address
abrupt upsets or the drift flips occurring between refreshes, while the
diagonal ECC corrects any single error per block regardless of cause.
This module evaluates the four protection configurations on the same
1 GB memory model, demonstrating:

* refresh alone leaves the abrupt-upset floor;
* ECC alone already dominates refresh alone;
* refresh + ECC is the strongest — refresh shrinks the per-window bit
  flip probability that the block-level binomial then squares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.faults.drift import DriftModel
from repro.reliability.model import MemoryOrganization


@dataclass(frozen=True)
class ProtectionConfig:
    """One row of the comparison: which mechanisms are active."""

    name: str
    use_ecc: bool
    refresh_period_hours: Optional[float]


@dataclass(frozen=True)
class DriftComparisonRow:
    """Evaluated MTTF of one protection configuration."""

    config: ProtectionConfig
    bit_flip_probability: float
    mttf_hours: float


def _mttf_no_ecc(p_bit: float, org: MemoryOrganization) -> float:
    """Unprotected memory: any flip within the window is failure."""
    log_ok = org.total_data_bits * math.log1p(-p_bit)
    p_fail = -math.expm1(log_ok)
    if p_fail <= 0:
        return float("inf")
    return org.check_period_hours / p_fail


def _mttf_with_ecc(p_bit: float, org: MemoryOrganization) -> float:
    """Diagonal-ECC memory: any block with >= 2 flips fails."""
    n_cells = org.cells_per_block
    log_block_ok = (n_cells - 1) * math.log1p(-p_bit) \
        + math.log1p((n_cells - 1) * p_bit)
    log_ok = org.total_blocks * log_block_ok
    p_fail = -math.expm1(log_ok)
    if p_fail <= 0:
        return float("inf")
    return org.check_period_hours / p_fail


def compare_protections(model: Optional[DriftModel] = None,
                        organization: Optional[MemoryOrganization] = None,
                        refresh_period_hours: float = 1.0,
                        ) -> List[DriftComparisonRow]:
    """Evaluate none / refresh-only / ECC-only / refresh+ECC.

    The window is the organization's check period (paper: 24 h); the
    refresh runs every ``refresh_period_hours`` within it.
    """
    model = model or DriftModel()
    org = organization or MemoryOrganization()
    window = org.check_period_hours

    configs = [
        ProtectionConfig("none", False, None),
        ProtectionConfig("refresh only", False, refresh_period_hours),
        ProtectionConfig("ECC only", True, None),
        ProtectionConfig("refresh + ECC", True, refresh_period_hours),
    ]
    rows = []
    for cfg in configs:
        p_bit = model.flip_probability(window, cfg.refresh_period_hours)
        mttf = (_mttf_with_ecc if cfg.use_ecc else _mttf_no_ecc)(p_bit, org)
        rows.append(DriftComparisonRow(cfg, p_bit, mttf))
    return rows


def refresh_period_sweep(model: Optional[DriftModel] = None,
                         organization: Optional[MemoryOrganization] = None,
                         periods_hours: tuple = (0.25, 1.0, 4.0, 12.0, 24.0),
                         ) -> List[dict]:
    """MTTF of refresh+ECC across refresh periods (diminishing returns:
    once drift is suppressed below the abrupt floor, refreshing harder
    buys nothing — only ECC addresses the remainder)."""
    model = model or DriftModel()
    org = organization or MemoryOrganization()
    window = org.check_period_hours
    rows = []
    for r in periods_hours:
        p_bit = model.flip_probability(window, r)
        rows.append({
            "refresh_period_hours": r,
            "bit_flip_probability": p_bit,
            "mttf_hours": _mttf_with_ecc(p_bit, org),
            "drift_share": model.drift_exposure(window, r)
            / max(model.drift_exposure(window, r)
                  + model.abrupt_exposure(window), 1e-300),
        })
    return rows
