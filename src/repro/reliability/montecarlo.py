"""Monte-Carlo validation of the analytic reliability model (E7).

The binomial block-success term is the load-bearing part of Figure 6's
derivation; these routines check it *empirically* against the actual
machinery: inject uniform upsets into a protected crossbar, run the real
checker/decoder, and classify blocks. At simulation-feasible error
probabilities (``p ~ 1e-2``, far above Flash-like rates) the empirical
block failure rate must match ``1 - (1-p)^(N-1) (1 + (N-1)p)`` within
sampling error, and every block hit by at most one upset must be restored
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import BlockGrid
from repro.core.checker import check_all_batched
from repro.core.code import DiagonalParityCode
from repro.utils.backend import BackendLike, get_backend
from repro.utils.rng import SeedLike, make_rng

#: Trials per stacked block of the vectorized estimator (memory bound).
_BATCH = 64


@dataclass
class BlockTrialResult:
    """Tallies of a block-level Monte-Carlo run."""

    trials: int
    blocks_per_trial: int
    blocks_failed: int          # >= 2 upsets (ground truth)
    blocks_restored: int        # memory identical to golden after check
    miscorrections: int         # <= 1 upset yet NOT restored (must be 0)
    silent_multi: int           # >= 2 upsets with clean decode (aliasing)

    @property
    def total_blocks(self) -> int:
        return self.trials * self.blocks_per_trial

    @property
    def empirical_failure_rate(self) -> float:
        """Fraction of blocks with two or more upsets."""
        return self.blocks_failed / self.total_blocks


def estimate_block_failure_rate(grid: BlockGrid, p: float, trials: int,
                                seed: SeedLike = 0,
                                include_check_bits: bool = False,
                                backend: BackendLike = None,
                                ) -> BlockTrialResult:
    """Empirical block-failure statistics under i.i.d. upsets.

    Each trial builds a random protected crossbar, injects upsets with
    per-cell probability ``p`` (optionally into check-bits as well), runs
    the full checker, and compares every block against the golden data.
    ``backend`` selects the array backend of the vectorized sweep; draws
    stay host-side, so tallies are backend-independent.
    """
    rng = make_rng(seed)
    be = get_backend(backend)
    code = DiagonalParityCode(grid)
    n, m = grid.n, grid.m
    b = grid.blocks_per_side
    result = BlockTrialResult(trials, grid.block_count, 0, 0, 0, 0)

    # Trials are stacked into (B, n, n) blocks and swept through the
    # vectorized batch checker. Random fields are still drawn one trial
    # at a time, in the original order (data, flip mask, leading plane,
    # counter plane), so tallies are bit-identical to the historical
    # scalar loop for any seed.
    done = 0
    while done < trials:
        batch = min(_BATCH, trials - done)
        stage = np.empty((batch, n, n), dtype=np.uint8)
        flip_mask = np.empty((batch, n, n), dtype=bool)
        cmask_lead = np.zeros((batch, m, b, b), dtype=bool)
        cmask_ctr = np.zeros((batch, m, b, b), dtype=bool)
        for i in range(batch):
            stage[i] = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
            flip_mask[i] = rng.random((n, n)) < p
            if include_check_bits:
                cmask_lead[i] = rng.random((m, b, b)) < p
                cmask_ctr[i] = rng.random((m, b, b)) < p

        data = be.from_numpy(stage)
        lead, ctr = code.encode_batch(data, backend=be)
        golden = data.copy()
        data ^= be.from_numpy(flip_mask)
        lead ^= be.from_numpy(cmask_lead)
        ctr ^= be.from_numpy(cmask_ctr)

        # Ground-truth upsets per block (data plus its own check-bits).
        per_block = flip_mask.reshape(batch, b, m, b, m).sum(axis=(2, 4)) \
            + cmask_lead.sum(axis=1) + cmask_ctr.sum(axis=1)

        check_all_batched(grid, code, data, lead, ctr, correct=True,
                          backend=be)
        restored = be.to_numpy((data == golden).reshape(batch, b, m, b, m)
                               .all(axis=(2, 4)))

        multi = per_block >= 2
        result.blocks_failed += int(multi.sum())
        result.blocks_restored += int(restored.sum())
        result.miscorrections += int((~restored & ~multi).sum())
        # Aliasing: multi-upset block whose post-check content matches
        # golden anyway (even number of flips on the same cells corrected
        # by luck) — counted for completeness.
        result.silent_multi += int((restored & multi).sum())
        done += batch
    return result


def validate_against_model(grid: BlockGrid, p: float, trials: int,
                           seed: SeedLike = 0,
                           tolerance_sigmas: float = 4.0,
                           backend: BackendLike = None) -> dict:
    """Compare empirical block failure rate with the binomial model.

    Returns a dict with both rates, the binomial-sampling standard error,
    and a boolean ``consistent`` flag (|diff| within the given sigmas).
    """
    import math

    from repro.reliability.model import window_failure_probability

    analytic = window_failure_probability(p, grid.cells_per_block, 1.0)

    mc = estimate_block_failure_rate(grid, p, trials, seed, backend=backend)
    total = mc.total_blocks
    sigma = math.sqrt(max(analytic * (1 - analytic), 1e-300) / total)
    diff = abs(mc.empirical_failure_rate - analytic)
    return {
        "analytic": analytic,
        "empirical": mc.empirical_failure_rate,
        "sigma": sigma,
        "difference": diff,
        "consistent": diff <= tolerance_sigmas * sigma + 1e-12,
        "miscorrections": mc.miscorrections,
        "trials": trials,
        "blocks": total,
    }
