"""Spatial multi-bit upset (burst) analysis.

The paper motivates soft-error protection partly with crossbar MBU
studies (Liu et al., TNS 2015: single *and multiple* bit upsets from ion
strikes). The diagonal code corrects one error per block, so a spatial
burst survives iff **no block receives more than one of its flips** —
bursts confined to one m x m block are detected-uncorrectable, bursts
straddling a block boundary split into independently-correctable single
errors.

Closed forms for linear bursts (all cells in one row or one column, the
dominant MBU geometry along wordlines/bitlines):

* a burst of length ``L <= m`` starting uniformly at random survives iff
  a block boundary falls strictly inside it, and the two fragments have
  length <= 1... more precisely each block must get at most one cell, so
  only ``L <= 2`` can survive: ``P(survive | L=2) = 1/m`` (the boundary
  position), ``P(survive | L=1) = 1``, ``P = 0`` for ``L >= 3``.
* diagonal bursts (cells at (r+i, c+i)) are the interesting case: the
  cells share a *counter* diagonal index but occupy distinct leading
  diagonals, yet within one block two cells on the same counter diagonal
  alias the syndrome — again at most one cell per block may land, giving
  the same fragment rule.

:func:`linear_burst_survival` provides the closed form and
:func:`simulate_burst_survival` validates it through the full machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.blocks import BlockGrid
from repro.core.checker import BlockChecker
from repro.core.code import DiagonalParityCode
from repro.utils.rng import SeedLike, make_rng
from repro.xbar.crossbar import CrossbarArray


def linear_burst_survival(m: int, length: int) -> float:
    """P(an in-row burst of ``length`` adjacent flips is fully corrected).

    The burst start is uniform over in-row positions (wrap-around across
    block boundaries within one crossbar row). Survival requires every
    block to catch at most one flip; adjacent cells are in the same block
    unless a boundary separates them, and a block boundary occurs between
    a specific adjacent pair with probability ``1/m``. Only L=1 (always)
    and L=2 (boundary between the two cells) can survive; L>=3 always
    leaves some block with two or more flips since blocks are m >= 3
    wide.
    """
    if m < 3 or m % 2 == 0:
        raise ValueError(f"m must be odd and >= 3, got {m}")
    if length < 1:
        raise ValueError(f"burst length must be >= 1, got {length}")
    if length == 1:
        return 1.0
    if length == 2:
        return 1.0 / m
    return 0.0


@dataclass
class BurstSurvivalResult:
    """Monte-Carlo burst-survival tallies."""

    trials: int
    survived: int
    detected: int

    @property
    def survival_rate(self) -> float:
        return self.survived / self.trials if self.trials else 0.0


def simulate_burst_survival(grid: BlockGrid, length: int, trials: int,
                            orientation: str = "row",
                            seed: SeedLike = 0) -> BurstSurvivalResult:
    """Empirical burst survival through the real checker.

    Each trial: random data, one linear burst of ``length`` adjacent
    flips at a random position (``orientation`` 'row' or 'col'), full
    check sweep, classify as survived (memory restored exactly) or
    detected (uncorrectable reports — never silent corruption, which is
    asserted).
    """
    if orientation not in ("row", "col"):
        raise ValueError(f"orientation must be 'row' or 'col': {orientation}")
    rng = make_rng(seed)
    code = DiagonalParityCode(grid)
    n = grid.n
    result = BurstSurvivalResult(trials, 0, 0)
    for _ in range(trials):
        mem = CrossbarArray(n, n)
        data = rng.integers(0, 2, (n, n), dtype=np.uint8)
        mem.write_region(0, 0, data)
        store = code.encode(mem.snapshot())
        lane = int(rng.integers(0, n))
        start = int(rng.integers(0, n - length + 1))
        for i in range(length):
            if orientation == "row":
                mem.flip(lane, start + i)
            else:
                mem.flip(start + i, lane)
        checker = BlockChecker(grid, code, store)
        sweep = checker.check_all(mem)
        if (mem.snapshot() == data).all():
            result.survived += 1
        else:
            assert sweep.uncorrectable, "silent burst corruption"
            result.detected += 1
    return result


def interleaving_distance(m: int) -> int:
    """Minimum spatial separation between burst flips for guaranteed
    correction: cells at distance >= m (in the same row/column) are
    always in different blocks, hence independently correctable. This is
    the quantity a system architect uses to decide whether physical MBU
    cluster sizes are covered by block size m."""
    if m < 3 or m % 2 == 0:
        raise ValueError(f"m must be odd and >= 3, got {m}")
    return m
