"""Spatial multi-bit upset (burst) analysis.

The paper motivates soft-error protection partly with crossbar MBU
studies (Liu et al., TNS 2015: single *and multiple* bit upsets from ion
strikes). The diagonal code corrects one error per block, so a spatial
burst survives iff **no block receives more than one of its flips** —
bursts confined to one m x m block are detected-uncorrectable, bursts
straddling a block boundary split into independently-correctable single
errors.

Closed forms for linear bursts (all cells in one row or one column, the
dominant MBU geometry along wordlines/bitlines):

* a burst of length ``L <= m`` starting uniformly at random survives iff
  a block boundary falls strictly inside it, and the two fragments have
  length <= 1... more precisely each block must get at most one cell, so
  only ``L <= 2`` can survive: ``P(survive | L=2) = 1/m`` (the boundary
  position), ``P(survive | L=1) = 1``, ``P = 0`` for ``L >= 3``.
* diagonal bursts (cells at (r+i, c+i)) are the interesting case: the
  cells share a *counter* diagonal index but occupy distinct leading
  diagonals, yet within one block two cells on the same counter diagonal
  alias the syndrome — again at most one cell per block may land, giving
  the same fragment rule.

:func:`linear_burst_survival` provides the closed form and
:func:`simulate_burst_survival` validates it through the full machinery.
The Monte-Carlo side is a thin classification layer over the unified
campaign engine: each trial drives one
:class:`repro.faults.injector.LinearBurstInjector` round through
:class:`repro.faults.batch.CampaignRunner`, so burst sweeps inherit the
``(B, n, n)`` vectorized kernels, process-pool sharding, array-backend
selection, and both campaign seeding contracts (``engine="scalar"`` is
the per-block Python reference; sequential batched runs are bit-identical
to it, per-trial runs are shard-layout invariant).

Seeding: the single ``seed`` is split into independent data-fill and
injection streams with :func:`repro.utils.rng.spawn_rngs` (sequential
modes) or used as the root entropy of per-trial ``SeedSequence`` children
(per-trial mode) — no ad-hoc single-stream consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.blocks import BlockGrid
from repro.faults.batch import (
    DEFAULT_BATCH_SIZE,
    CampaignRunner,
    derive_campaign_seeds,
)
from repro.faults.injector import LinearBurstInjector
from repro.utils.backend import BackendLike
from repro.utils.rng import SeedLike


def linear_burst_survival(m: int, length: int) -> float:
    """P(an in-row burst of ``length`` adjacent flips is fully corrected).

    The burst start is uniform over in-row positions (wrap-around across
    block boundaries within one crossbar row). Survival requires every
    block to catch at most one flip; adjacent cells are in the same block
    unless a boundary separates them, and a block boundary occurs between
    a specific adjacent pair with probability ``1/m``. Only L=1 (always)
    and L=2 (boundary between the two cells) can survive; L>=3 always
    leaves some block with two or more flips since blocks are m >= 3
    wide.
    """
    if m < 3 or m % 2 == 0:
        raise ValueError(f"m must be odd and >= 3, got {m}")
    if length < 1:
        raise ValueError(f"burst length must be >= 1, got {length}")
    if length == 1:
        return 1.0
    if length == 2:
        return 1.0 / m
    return 0.0


@dataclass
class BurstSurvivalResult:
    """Monte-Carlo burst-survival tallies."""

    trials: int
    survived: int
    detected: int

    @property
    def survival_rate(self) -> float:
        return self.survived / self.trials if self.trials else 0.0


def simulate_burst_survival(grid: BlockGrid, length: int, trials: int,
                            orientation: str = "row",
                            seed: SeedLike = 0,
                            engine: str = "batched",
                            batch_size: int = DEFAULT_BATCH_SIZE,
                            workers: int = 1,
                            seeding: Optional[str] = None,
                            backend: BackendLike = None,
                            packing: str = "u8",
                            ) -> BurstSurvivalResult:
    """Empirical burst survival through the real checker.

    Each trial: random data, one linear burst of ``length`` adjacent
    flips at a random position (``orientation`` 'row' or 'col'), full
    check sweep, classify as survived (memory restored exactly) or
    detected (uncorrectable reports — never silent corruption, which is
    asserted).

    ``engine``/``batch_size``/``workers``/``seeding``/``backend``/
    ``packing`` are the
    :class:`repro.faults.batch.CampaignRunner` knobs: the default batched
    engine sweeps trials as ``(B, n, n)`` stacks and, with the same
    ``seed``, reproduces the scalar reference (``engine="scalar"``)
    bit-for-bit in sequential mode; ``workers > 1`` (or
    ``seeding="per-trial"``) switches to the shard-invariant per-trial
    contract, which requires an integer seed.
    """
    if length > grid.n:
        raise ValueError(f"burst length {length} exceeds the {grid.n}-cell "
                         f"crossbar lane")
    campaign_seed, injector_seed = derive_campaign_seeds(seed, seeding,
                                                         workers)
    runner = CampaignRunner(
        grid, LinearBurstInjector(length, orientation, seed=injector_seed),
        seed=campaign_seed, include_check_bits=True, engine=engine,
        batch_size=batch_size, workers=workers, seeding=seeding,
        backend=backend, packing=packing)
    result = runner.run(trials)
    # A linear burst can never alias to a correctable syndrome: within a
    # block its cells occupy distinct diagonals, so any block catching
    # >= 2 flips reports uncorrectable. Silent corruption would mean the
    # machinery (not the model) is broken.
    assert result.silent == 0, "silent burst corruption"
    return BurstSurvivalResult(
        trials=result.trials,
        survived=result.clean + result.corrected,
        detected=result.detected)


def interleaving_distance(m: int) -> int:
    """Minimum spatial separation between burst flips for guaranteed
    correction: cells at distance >= m (in the same row/column) are
    always in different blocks, hence independently correctable. This is
    the quantity a system architect uses to decide whether physical MBU
    cluster sizes are covered by block size m."""
    if m < 3 or m % 2 == 0:
        raise ValueError(f"m must be odd and >= 3, got {m}")
    return m
