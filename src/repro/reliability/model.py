"""Analytic MTTF model reproducing Figure 6.

Derivation (following the paper):

* ``p = 1 - exp(-lambda T / 1e9)`` — probability a given memristor
  suffers at least one upset within one check period ``T`` (worst case:
  the full period elapses between checks of any given bit).
* Block success = zero or one upsets among its ``N`` cells:
  ``P_ok = (1-p)^N + N p (1-p)^(N-1) = (1-p)^(N-1) (1 + (N-1) p)``.
* Blocks are independent; a crossbar succeeds iff all its blocks do; a
  1 GB memory succeeds iff all its crossbars do.
* Memory failure rate ``R = P_fail * 1e9 / T`` [FIT]; ``MTTF = 1e9 / R``.

Numerics: for Flash-like SERs ``p ~ 1e-11`` and the block failure
probability is ``~ C(N,2) p^2 ~ 1e-17`` — hopeless with naive floating
point. All tail probabilities are therefore computed in log-space with
``log1p`` / ``expm1``, which keeps relative error near machine epsilon
across the entire Figure 6 sweep (validated against an exact binomial
series in the tests).

The paper's composition counts the ``m x m`` *data* cells per block
(reproducing its ">3e8 improvement" at Flash-like SER exactly);
``include_check_bits=True`` adds the ``2m`` check cells, which are just
as vulnerable physically — a slightly more conservative variant that the
ablation bench quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.faults.ser import HOURS_PER_FIT_UNIT, probability_from_fit

#: One gibibyte in bits — the paper's memory size for Figure 6.
GIB_BITS = 8 * 1024 ** 3


def log_block_success_probability(p_bit: float, cells_per_block: int) -> float:
    """``log P(a block has <= 1 upset among its cells)`` in log-space.

    The paper's core closed form: ``log[(1-p)^(N-1) (1 + (N-1) p)]``.
    Shared by every composition in the library (Figure 6 model, drift
    comparison, empirical validators) so the block-success term has one
    definition.
    """
    return (cells_per_block - 1) * math.log1p(-p_bit) \
        + math.log1p((cells_per_block - 1) * p_bit)


def window_failure_probability(p_bit: float, cells_per_block: int,
                               blocks: float) -> float:
    """P(some block of ``blocks`` accumulates >= 2 upsets in a window).

    Composes :func:`log_block_success_probability` over independent
    blocks, staying in log-space until the final ``expm1``.
    """
    return -math.expm1(blocks * log_block_success_probability(
        p_bit, cells_per_block))


@dataclass(frozen=True)
class MemoryOrganization:
    """Geometry of the analyzed memory.

    ``n`` and ``m`` follow the paper's case study; ``total_data_bits``
    defaults to 1 GB. Crossbar count is the exact ratio (the paper treats
    the memory as a collection of n x n crossbars).
    """

    n: int = 1020
    m: int = 15
    total_data_bits: float = float(GIB_BITS)
    check_period_hours: float = 24.0
    include_check_bits: bool = False

    @property
    def cells_per_block(self) -> int:
        """Cells whose corruption a block must tolerate."""
        base = self.m * self.m
        return base + 2 * self.m if self.include_check_bits else base

    @property
    def blocks_per_crossbar(self) -> int:
        """(n/m)^2 blocks in one crossbar."""
        return (self.n // self.m) ** 2

    @property
    def crossbars(self) -> float:
        """Number of n x n crossbars forming the memory."""
        return self.total_data_bits / (self.n * self.n)

    @property
    def total_blocks(self) -> float:
        """Blocks in the whole memory."""
        return self.crossbars * self.blocks_per_crossbar


@dataclass(frozen=True)
class SweepPoint:
    """One point of the Figure 6 sensitivity sweep."""

    ser_fit_per_bit: float
    baseline_mttf_hours: float
    proposed_mttf_hours: float

    @property
    def improvement(self) -> float:
        """MTTF ratio proposed / baseline."""
        return self.proposed_mttf_hours / self.baseline_mttf_hours


class ReliabilityModel:
    """Closed-form MTTF evaluation for baseline and proposed designs."""

    def __init__(self, organization: Optional[MemoryOrganization] = None):
        self.org = organization or MemoryOrganization()

    # ------------------------------------------------------------------ #
    # Elementary probabilities (log-space)
    # ------------------------------------------------------------------ #

    def bit_upset_probability(self, ser: float) -> float:
        """P(a given bit upsets within one check period)."""
        return probability_from_fit(ser, self.org.check_period_hours)

    def log_block_success(self, ser: float) -> float:
        """``log P(block has <= 1 upset in T)`` (see module docstring)."""
        return log_block_success_probability(self.bit_upset_probability(ser),
                                             self.org.cells_per_block)

    def block_failure_probability(self, ser: float) -> float:
        """``P(block accumulates >= 2 upsets in T)``."""
        return -math.expm1(self.log_block_success(ser))

    # ------------------------------------------------------------------ #
    # Memory-level failure
    # ------------------------------------------------------------------ #

    def proposed_failure_probability(self, ser: float) -> float:
        """P(1 GB memory with diagonal ECC fails within one period)."""
        log_ok = self.org.total_blocks * self.log_block_success(ser)
        return -math.expm1(log_ok)

    def baseline_failure_probability(self, ser: float) -> float:
        """P(unprotected memory has any upset within one period)."""
        p = self.bit_upset_probability(ser)
        log_ok = self.org.total_data_bits * math.log1p(-p)
        return -math.expm1(log_ok)

    # ------------------------------------------------------------------ #
    # FIT / MTTF
    # ------------------------------------------------------------------ #

    def _mttf_from_window_probability(self, p_fail: float) -> float:
        """MTTF = 1e9 / (p * 1e9 / T) = T / p (paper Sec. V-A)."""
        if p_fail <= 0.0:
            return float("inf")
        return self.org.check_period_hours / p_fail

    def proposed_mttf_hours(self, ser: float) -> float:
        """MTTF of the ECC-protected memory."""
        return self._mttf_from_window_probability(
            self.proposed_failure_probability(ser))

    def baseline_mttf_hours(self, ser: float) -> float:
        """MTTF of the unprotected memory."""
        return self._mttf_from_window_probability(
            self.baseline_failure_probability(ser))

    def proposed_fit(self, ser: float) -> float:
        """Failure rate of the protected memory [FIT]."""
        return HOURS_PER_FIT_UNIT / self.proposed_mttf_hours(ser)

    def baseline_fit(self, ser: float) -> float:
        """Failure rate of the unprotected memory [FIT]."""
        return HOURS_PER_FIT_UNIT / self.baseline_mttf_hours(ser)

    def improvement_factor(self, ser: float) -> float:
        """Proposed / baseline MTTF ratio (paper: > 3e8 at 1e-3 FIT/bit)."""
        return self.proposed_mttf_hours(ser) / self.baseline_mttf_hours(ser)

    # ------------------------------------------------------------------ #
    # Figure 6 sweep
    # ------------------------------------------------------------------ #

    def sweep(self, sers: Optional[Iterable[float]] = None) -> List[SweepPoint]:
        """MTTF sensitivity sweep over SER (defaults to Figure 6's range)."""
        if sers is None:
            sers = np.logspace(-5, 3, 33)
        return [SweepPoint(float(s), self.baseline_mttf_hours(float(s)),
                           self.proposed_mttf_hours(float(s)))
                for s in sers]
