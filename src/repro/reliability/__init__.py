"""Reliability analysis (paper Sec. V-A, Figure 6).

The analytic model: memristor soft errors are uniform and independent at
rate ``lambda`` FIT/bit; full-memory ECC checks run every ``T`` hours; a
block survives a check window iff it accumulated at most one error
(single-error correction); blocks, crossbars, and the 1 GB memory compose
independently; the memory failure rate in FIT is the window failure
probability scaled by ``1e9 / T``, and MTTF is its reciprocal scaled by
``1e9``. :mod:`repro.reliability.montecarlo` validates the binomial core
of this model against actual fault injection + decode on the simulated
machinery (experiment E7 in DESIGN.md).
"""

from repro.reliability.model import (
    MemoryOrganization,
    ReliabilityModel,
    SweepPoint,
    log_block_success_probability,
    window_failure_probability,
)
from repro.reliability.montecarlo import (
    BlockTrialResult,
    estimate_block_failure_rate,
    validate_against_model,
)
from repro.reliability.burst import (
    BurstSurvivalResult,
    interleaving_distance,
    linear_burst_survival,
    simulate_burst_survival,
)
from repro.reliability.drift_analysis import (
    compare_protections,
    refresh_period_sweep,
    simulate_drift_survival,
    validate_drift_model,
)

__all__ = [
    "ReliabilityModel",
    "MemoryOrganization",
    "SweepPoint",
    "log_block_success_probability",
    "window_failure_probability",
    "estimate_block_failure_rate",
    "validate_against_model",
    "BlockTrialResult",
    "linear_burst_survival",
    "simulate_burst_survival",
    "interleaving_distance",
    "BurstSurvivalResult",
    "compare_protections",
    "refresh_period_sweep",
    "simulate_drift_survival",
    "validate_drift_model",
]
