"""Longitudinal performance ledger, trend reports, regression gating.

The paper's claim is a throughput claim, and the repo's perf story so
far lives in point-in-time ``BENCH_*.json`` artifacts that each bench
run overwrites — the trajectory is unrecoverable and a silent 10x
regression would ship unnoticed. This module adds the time axis:

* **Ledger.** An append-only JSONL file (one record per bench run;
  ``benchmarks/results/ledger.jsonl`` locally, the store's ``perf/``
  namespace for service-side job phases). Records carry provenance —
  git revision, host fingerprint, kernel tier, backend — so epochs are
  comparable across machines and commits::

      {"schema": 1, "bench", "source", "params", "kernel_tier",
       "backend", "git_rev", "host", "timestamp",
       "samples": [{"metric", "value"}, ...]}

  Torn tail lines (process killed mid-append) are skipped on read,
  same contract as the store's ``events/`` namespace.
* **Trend/compare.** Samples group by ``(bench, metric, kernel_tier)``;
  epochs group by ``git_rev``. :func:`compare` takes the ratio of
  medians in the *good* direction (``current/baseline`` for
  throughput-like metrics, inverted for latency-like ones), bootstraps
  a confidence interval over resampled medians, and flags a regression
  only when the CI's upper bound sits below ``1 - threshold`` — noise
  widens the interval and disarms the gate, a reproducible cliff does
  not. Rate metrics (``*_per_s``, ``speedup*``) gate by default;
  second-valued metrics are reported but not gated unless asked,
  because quick-params CI runs change the work per invocation while
  leaving rates comparable.
* **Jobs.** Per-phase nanoseconds merged onto job records (PR 9) feed
  the same comparator, normalised to seconds-per-trial and grouped by
  a digest of the job's shape, so ``repro perf jobs`` flags e.g. the
  pack phase drifting on production campaigns.

Everything here is stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import platform
import random
import statistics
import subprocess
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1

#: Default ledger / baseline locations, relative to the repo root.
DEFAULT_LEDGER = os.path.join("benchmarks", "results", "ledger.jsonl")
DEFAULT_BASELINE = os.path.join("benchmarks", "results", "baseline.json")

#: Epoch label for ingested pre-ledger artifacts with no recorded rev.
SEED_EPOCH = "seed"

#: Numeric payload keys that are inputs (geometry, workload size),
#: not measurements. Strings, booleans, and ``required_*``/``max_*``
#: gate constants are classified as params structurally.
PARAM_KEYS = frozenset({
    "n", "m", "B", "trials", "rounds", "seed", "probability",
    "burst_length", "refresh_hours", "window_hours", "batch_size",
    "jobs", "trials_per_job", "shard_trials", "workers", "cpu_count",
})

_PROVENANCE_KEYS = frozenset({
    "bench", "machine", "host", "kernels", "backend", "git_rev",
    "timestamp", "kernel_tier",
})


def host_fingerprint() -> Dict[str, object]:
    """Where a sample was taken: platform, cpu count, interpreter."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Short HEAD revision, or ``None`` outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@functools.lru_cache(maxsize=1)
def cached_git_revision() -> Optional[str]:
    """One ``git rev-parse`` per process — hot paths (a job settling)
    must not fork a subprocess every time."""
    return git_revision()


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=repr)


def params_digest(params: Dict[str, object]) -> str:
    """Stable short digest of a param dict (job-shape grouping key)."""
    return hashlib.sha256(_canonical(params).encode()).hexdigest()[:10]


def record_digest(record: dict) -> str:
    """Content digest minus the timestamp — the ingest dedupe key.

    Re-running ``repro perf ingest`` over a re-checked-out tree (new
    file mtimes, identical content) must be a no-op.
    """
    scrubbed = {k: v for k, v in record.items() if k != "timestamp"}
    return hashlib.sha256(_canonical(scrubbed).encode()).hexdigest()


def metric_direction(metric: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` is better, or ``None`` (don't trend).

    Gate constants (``required_*``, ``max_*``), overheads, and
    fractions are excluded: their baselines sit near zero where a
    ratio of medians amplifies noise into false regressions.
    """
    name = metric.lower()
    if ("required" in name or "overhead" in name or "fraction" in name
            or "max_" in name or name.endswith("_x")):
        return None
    if "per_s" in name or "speedup" in name or name.endswith("_rate"):
        return "higher"
    if (name.endswith("_s") or name.endswith("_ns")
            or "seconds" in name or "_s_per_" in name):
        return "lower"
    return None


def _flatten_numeric(prefix: str, value, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            _flatten_numeric(f"{prefix}.{key}", value[key], out)
    elif isinstance(value, list):
        for i, item in enumerate(value):
            _flatten_numeric(f"{prefix}.{i}", item, out)


def samples_from_payload(payload: dict
                         ) -> Tuple[Dict[str, object], List[dict]]:
    """Split a ``BENCH_*.json``-shaped payload into params + samples.

    Numeric leaves become metric samples (nested dicts/lists flatten
    to dotted names, e.g. ``tiers.native.trials_per_s``); strings,
    booleans, known workload keys, and gate constants become params.
    """
    params: Dict[str, object] = {}
    metrics: Dict[str, float] = {}
    for key, value in payload.items():
        if key in _PROVENANCE_KEYS:
            continue
        if (isinstance(value, (str, bool)) or key in PARAM_KEYS
                or key.startswith("required_") or key.startswith("max_")):
            params[key] = value
        elif isinstance(value, (int, float)):
            metrics[key] = float(value)
        elif isinstance(value, (dict, list)):
            _flatten_numeric(key, value, metrics)
    samples = [{"metric": name, "value": metrics[name]}
               for name in sorted(metrics)]
    return params, samples


def bench_record(bench: str, payload: dict, *,
                 kernel_tier: Optional[str] = None,
                 backend: Optional[str] = None,
                 git_rev: Optional[str] = None,
                 host: Optional[dict] = None,
                 timestamp: Optional[float] = None,
                 source: str = "bench") -> dict:
    """Build a schema-v1 ledger record from a bench payload."""
    params, samples = samples_from_payload(payload)
    return {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "source": source,
        "params": params,
        "kernel_tier": kernel_tier or payload.get("kernels"),
        "backend": backend or payload.get("backend"),
        "git_rev": git_rev or payload.get("git_rev"),
        "host": host if host is not None else host_fingerprint(),
        "timestamp": time.time() if timestamp is None else timestamp,
        "samples": samples,
    }


def job_phases_record(*, kind: str, key: str,
                      phases: Dict[str, int],
                      trials: Optional[int],
                      params: Dict[str, object],
                      kernel_tier: Optional[str] = None,
                      backend: Optional[str] = None,
                      git_rev: Optional[str] = None,
                      host: Optional[dict] = None,
                      timestamp: Optional[float] = None) -> dict:
    """A ledger record from a settled job's merged phase profile.

    Phase nanoseconds normalise to seconds-per-trial so campaigns of
    different sizes but the same shape land in one comparable series;
    ``group`` digests the shape params (minus trials/seed) for that
    grouping.
    """
    per = max(int(trials or 0), 1)
    samples = [{"metric": f"phase.{name}_s_per_trial",
                "value": int(ns) / 1e9 / per}
               for name, ns in sorted(phases.items())]
    samples.append({"metric": "phase.total_s_per_trial",
                    "value": sum(int(ns) for ns in phases.values())
                    / 1e9 / per})
    shape = {k: v for k, v in params.items()
             if k not in ("trials", "seed", "entropy")}
    return {
        "schema": SCHEMA_VERSION,
        "bench": f"job.{kind}",
        "source": "job",
        "params": dict(params),
        "group": params_digest(shape),
        "job_key": key,
        "trials": trials,
        "kernel_tier": kernel_tier,
        "backend": backend,
        "git_rev": git_rev,
        "host": host if host is not None else host_fingerprint(),
        "timestamp": time.time() if timestamp is None else timestamp,
        "samples": samples,
    }


# --------------------------------------------------------------------
# Ledger IO


def encode_record(record: dict) -> str:
    return _canonical(record) + "\n"


def append_record(path: str, record: dict) -> None:
    """Append one record; creates the parent directory on first use."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(encode_record(record))


def read_ledger(path: str) -> List[dict]:
    """All readable records; torn/corrupt lines are skipped, same as
    the trace plane's event namespace."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        return []
    records: List[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("samples"):
            records.append(record)
    return records


def ingest_results(results_dir: str, ledger_path: str) -> dict:
    """Backfill committed ``BENCH_*.json`` files as the seed epoch.

    Idempotent: records already in the ledger (by content digest,
    timestamps excluded) are skipped, so re-running after a fresh
    checkout adds nothing.
    """
    seen = {record_digest(r) for r in read_ledger(ledger_path)}
    added, skipped, files = 0, 0, []
    try:
        names = sorted(os.listdir(results_dir))
    except OSError:
        names = []
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(results_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict):
            continue
        bench = payload.get("bench") or name[len("BENCH_"):-len(".json")]
        record = bench_record(
            bench, payload,
            git_rev=payload.get("git_rev") or SEED_EPOCH,
            host=payload.get("host") or payload.get("machine") or {},
            timestamp=os.path.getmtime(path),
            source="ingest")
        digest = record_digest(record)
        if digest in seen:
            skipped += 1
            continue
        append_record(ledger_path, record)
        seen.add(digest)
        added += 1
        files.append(name)
    return {"added": added, "skipped": skipped, "files": files,
            "ledger": ledger_path}


# --------------------------------------------------------------------
# Aggregation


def series_key(record: dict, metric: str) -> Tuple[str, str, str]:
    return (str(record.get("bench")), metric,
            str(record.get("kernel_tier") or "-"))


def collect_series(records: Iterable[dict]
                   ) -> Dict[Tuple[str, str, str], List[float]]:
    """``{(bench, metric, tier): [values...]}`` over trendable metrics."""
    series: Dict[Tuple[str, str, str], List[float]] = {}
    for record in records:
        for sample in record.get("samples", ()):
            metric = sample.get("metric")
            value = sample.get("value")
            if not metric or not isinstance(value, (int, float)):
                continue
            if metric_direction(metric) is None:
                continue
            series.setdefault(series_key(record, metric),
                              []).append(float(value))
    return series


def _rev_of(record: dict) -> str:
    return str(record.get("git_rev") or "unknown")


def epochs_by_rev(records: Iterable[dict]) -> List[Tuple[str, List[dict]]]:
    """Records grouped by git revision, ordered by first timestamp."""
    groups: Dict[str, List[dict]] = {}
    for record in records:
        groups.setdefault(_rev_of(record), []).append(record)
    return sorted(groups.items(),
                  key=lambda item: min(r.get("timestamp") or 0
                                       for r in item[1]))


def latest_rev(records: Sequence[dict]) -> Optional[str]:
    """Revision of the newest record by timestamp."""
    if not records:
        return None
    newest = max(records, key=lambda r: r.get("timestamp") or 0)
    return _rev_of(newest)


def records_for_rev(records: Iterable[dict], rev: str) -> List[dict]:
    """Records whose revision matches ``rev`` exactly or by prefix."""
    exact = [r for r in records if _rev_of(r) == rev]
    if exact:
        return exact
    return [r for r in records if _rev_of(r).startswith(rev)]


# --------------------------------------------------------------------
# Trend report


def trend_report(records: Sequence[dict],
                 benches: Optional[Sequence[str]] = None) -> dict:
    """Per-(bench, metric, tier) medians across revision epochs."""
    if benches:
        wanted = set(benches)
        records = [r for r in records if r.get("bench") in wanted]
    epochs = epochs_by_rev(records)
    order = [rev for rev, _ in epochs]
    per_epoch = {rev: collect_series(group) for rev, group in epochs}
    keys = sorted({key for series in per_epoch.values()
                   for key in series})
    rows = []
    for key in keys:
        bench, metric, tier = key
        medians = {rev: statistics.median(per_epoch[rev][key])
                   for rev in order if key in per_epoch[rev]}
        revs = list(medians)
        first, last = medians[revs[0]], medians[revs[-1]]
        direction = metric_direction(metric)
        if first > 0:
            change = (last / first - 1.0) * 100.0
            if direction == "lower":
                change = -change
        else:
            change = 0.0
        rows.append({"bench": bench, "metric": metric,
                     "kernel_tier": tier, "direction": direction,
                     "epochs": len(revs), "first_rev": revs[0],
                     "last_rev": revs[-1], "first": first,
                     "last": last, "change_pct": change,
                     "medians": medians})
    return {"revisions": order, "rows": rows,
            "records": len(records)}


def format_table(rows: Sequence[Sequence[str]],
                 headers: Sequence[str]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out += [line(row) for row in rows]
    return "\n".join(out)


def render_trend(report: dict) -> str:
    if not report["rows"]:
        return "ledger is empty — run `repro perf ingest` or a bench"
    rows = []
    for row in report["rows"]:
        rows.append([
            row["bench"], row["metric"], row["kernel_tier"],
            str(row["epochs"]),
            f"{row['first']:.6g}", f"{row['last']:.6g}",
            f"{row['change_pct']:+.1f}%",
        ])
    table = format_table(rows, ["bench", "metric", "tier", "epochs",
                                "first", "last", "change"])
    revs = " -> ".join(report["revisions"])
    return (f"{table}\n\nepochs (oldest -> newest): {revs}\n"
            f"records: {report['records']} "
            "(change is in the metric's good direction)")


# --------------------------------------------------------------------
# Regression compare


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def bootstrap_ratio(baseline: Sequence[float], current: Sequence[float],
                    direction: str, n_boot: int = 400,
                    seed: int = 7) -> Tuple[float, float, float]:
    """``(ratio, ci_lo, ci_hi)`` of medians in the good direction.

    Ratio > 1 means current is better; < 1 worse. The 95% interval
    comes from bootstrap-resampled medians on both sides with a seeded
    PRNG so the gate is deterministic. Single-sample sides degenerate
    to a zero-width interval — the point ratio gates alone.
    """
    def ratio_of(base_med: float, cur_med: float) -> float:
        if base_med <= 0 or cur_med <= 0:
            return 1.0
        return (cur_med / base_med if direction == "higher"
                else base_med / cur_med)

    point = ratio_of(statistics.median(baseline),
                     statistics.median(current))
    if len(baseline) == 1 and len(current) == 1:
        return point, point, point
    rng = random.Random(seed)
    ratios = []
    for _ in range(n_boot):
        base = [rng.choice(baseline) for _ in baseline]
        cur = [rng.choice(current) for _ in current]
        ratios.append(ratio_of(statistics.median(base),
                               statistics.median(cur)))
    ratios.sort()
    return point, _quantile(ratios, 0.025), _quantile(ratios, 0.975)


def compare(baseline: Dict[Tuple[str, str, str], List[float]],
            current: Dict[Tuple[str, str, str], List[float]],
            threshold: float = 0.2, n_boot: int = 400, seed: int = 7,
            gate_directions: Sequence[str] = ("higher",)) -> dict:
    """Compare two series maps; flag regressions past ``threshold``.

    A key regresses when the bootstrap CI's *upper* bound on the
    good-direction ratio sits below ``1 - threshold`` — i.e. we are
    confident the loss exceeds the threshold, not merely unlucky.
    Keys present on only one side are reported as uncompared, never
    silently dropped.
    """
    gate = set(gate_directions)
    rows, uncompared = [], []
    for key in sorted(set(baseline) | set(current)):
        if key not in baseline or key not in current:
            uncompared.append({"bench": key[0], "metric": key[1],
                               "kernel_tier": key[2],
                               "side": ("current" if key in current
                                        else "baseline")})
            continue
        bench, metric, tier = key
        direction = metric_direction(metric)
        if direction is None:
            continue
        base, cur = baseline[key], current[key]
        if min(base) <= 0 or min(cur) <= 0:
            continue
        ratio, lo, hi = bootstrap_ratio(base, cur, direction,
                                        n_boot=n_boot, seed=seed)
        gated = direction in gate
        rows.append({
            "bench": bench, "metric": metric, "kernel_tier": tier,
            "direction": direction, "gated": gated,
            "baseline_median": statistics.median(base),
            "current_median": statistics.median(cur),
            "ratio": ratio, "ci_lo": lo, "ci_hi": hi,
            "regressed": bool(gated and hi < 1.0 - threshold),
        })
    regressions = [r for r in rows if r["regressed"]]
    return {"threshold": threshold, "rows": rows,
            "regressions": regressions, "uncompared": uncompared,
            "ok": not regressions}


def render_compare(report: dict) -> str:
    if not report["rows"]:
        return ("nothing to compare — no (bench, metric, tier) series "
                "present on both sides")
    rows = []
    for row in report["rows"]:
        flag = "REGRESSED" if row["regressed"] else (
            "" if row["gated"] else "info")
        rows.append([
            row["bench"], row["metric"], row["kernel_tier"],
            f"{row['baseline_median']:.6g}",
            f"{row['current_median']:.6g}",
            f"{row['ratio']:.3f}",
            f"[{row['ci_lo']:.3f}, {row['ci_hi']:.3f}]", flag,
        ])
    table = format_table(rows, ["bench", "metric", "tier", "baseline",
                                "current", "ratio", "ci95", ""])
    lines = [table, "",
             f"gate: ratio CI upper bound < {1 - report['threshold']:.2f}"
             " fails (ratio > 1 is better)"]
    if report["uncompared"]:
        lines.append(f"uncompared series (one side only): "
                     f"{len(report['uncompared'])}")
    n = len(report["regressions"])
    lines.append("PASS: no gated regressions" if report["ok"]
                 else f"FAIL: {n} regression(s)")
    return "\n".join(lines)


# --------------------------------------------------------------------
# Baseline snapshots


def baseline_from_records(records: Sequence[dict],
                          rev: Optional[str] = None) -> dict:
    """Committable snapshot of a revision's series (values + median)."""
    rev = rev or latest_rev(records)
    chosen = records_for_rev(records, rev) if rev else list(records)
    series = collect_series(chosen)
    return {
        "schema": SCHEMA_VERSION,
        "git_rev": rev,
        "created": time.time(),
        "series": [{"bench": k[0], "metric": k[1], "kernel_tier": k[2],
                    "median": statistics.median(v), "values": v}
                   for k, v in sorted(series.items())],
    }


def write_baseline(path: str, baseline: dict) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Dict[Tuple[str, str, str], List[float]]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    series: Dict[Tuple[str, str, str], List[float]] = {}
    for entry in payload.get("series", ()):
        key = (str(entry["bench"]), str(entry["metric"]),
               str(entry.get("kernel_tier") or "-"))
        values = [float(v) for v in entry.get("values")
                  or [entry["median"]]]
        series[key] = values
    return series


# --------------------------------------------------------------------
# Job-phase drift


def jobs_report(records: Sequence[dict], threshold: float = 0.5,
                n_boot: int = 200, seed: int = 7) -> dict:
    """Flag per-phase drift on settled campaigns in the perf namespace.

    Within each ``(bench, group, tier)`` job shape, the newest record
    is compared against the history before it; phase seconds-per-trial
    are lower-better and gated. ``threshold`` is generous by default —
    phase timings on shared hosts are noisy, and the gate exists to
    catch e.g. pack regressing by half, not scheduler jitter.
    """
    shapes: Dict[Tuple[str, str, str], List[dict]] = {}
    for record in records:
        if record.get("source") != "job":
            continue
        key = (str(record.get("bench")),
               str(record.get("group") or "-"),
               str(record.get("kernel_tier") or "-"))
        shapes.setdefault(key, []).append(record)
    rows, drifted = [], []
    groups = 0
    for key in sorted(shapes):
        history = sorted(shapes[key],
                         key=lambda r: r.get("timestamp") or 0)
        if len(history) < 2:
            continue
        groups += 1
        newest = history[-1]
        base_series = collect_series(history[:-1])
        cur_series = collect_series([newest])
        report = compare(base_series, cur_series, threshold=threshold,
                         n_boot=n_boot, seed=seed,
                         gate_directions=("lower",))
        for row in report["rows"]:
            row = dict(row, group=key[1], runs=len(history))
            rows.append(row)
            if row["regressed"]:
                drifted.append(row)
    return {"threshold": threshold, "groups": groups, "rows": rows,
            "drift": drifted, "records": len(records),
            "ok": not drifted}


def render_jobs(report: dict) -> str:
    if not report["rows"]:
        return (f"no comparable job history yet "
                f"({report['records']} perf record(s); a shape needs "
                "at least two settled runs)")
    rows = []
    for row in report["rows"]:
        rows.append([
            row["bench"], row["group"], row["metric"],
            row["kernel_tier"], str(row["runs"]),
            f"{row['baseline_median']:.3e}",
            f"{row['current_median']:.3e}",
            f"{row['ratio']:.3f}",
            "DRIFT" if row["regressed"] else "",
        ])
    table = format_table(rows, ["job", "shape", "metric", "tier",
                                "runs", "hist s/trial", "last s/trial",
                                "ratio", ""])
    n = len(report["drift"])
    verdict = ("no phase drift past threshold" if report["ok"]
               else f"{n} phase(s) drifted past threshold")
    return (f"{table}\n\nthreshold: {report['threshold']:.2f} "
            f"(ratio > 1 is better) — {verdict}")
