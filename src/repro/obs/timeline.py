"""Reconstruct and render a cross-process job timeline from events.

Input is the flat list of span/event records a trace accumulated in
the store's ``events/`` namespace (service submit/dispatch/settle,
worker claim/execute/complete, chaos firings — whatever landed).
Records are ordered by wall-clock start; parentage (``parent`` span
ids, carried across the wire by the dispatch envelope) indents worker
activity under the scheduler's execute span, so one readable page
shows a job's whole distributed life: retries, lease-expiry
reattempts, requeues, and per-phase shard timings.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def _fmt_dur(dur_ns: int) -> str:
    if dur_ns <= 0:
        return ""
    if dur_ns < 1_000_000:
        return f"{dur_ns / 1_000:.0f}us"
    if dur_ns < 1_000_000_000:
        return f"{dur_ns / 1_000_000:.1f}ms"
    return f"{dur_ns / 1_000_000_000:.3f}s"


def _fmt_attrs(attrs: dict) -> str:
    parts = []
    for key in sorted(attrs):
        if key == "phases":
            continue
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _fmt_phases(phases: Dict[str, int]) -> str:
    shown = " ".join(f"{name}={_fmt_dur(int(ns))}"
                     for name, ns in sorted(phases.items(),
                                            key=lambda kv: -kv[1]))
    return f"phases: {shown}"


def build_timeline(events: List[dict]) -> dict:
    """Order events and resolve parentage.

    Returns ``{"trace", "start_wall", "end_wall", "events", "depths"}``
    where ``events`` is wall-clock sorted and ``depths`` maps span id →
    indent depth (0 for roots and for events whose parent never made it
    into the trace — a killed worker can die before emitting spans its
    children reference).
    """
    ordered = sorted(events, key=lambda e: (e.get("wall", 0.0),
                                            e.get("span") or ""))
    by_span = {e["span"]: e for e in ordered if e.get("span")}
    depths: Dict[str, int] = {}

    def depth_of(span_id: Optional[str], hops: int = 0) -> int:
        if not span_id or span_id not in by_span or hops > 32:
            return 0
        if span_id in depths:
            return depths[span_id]
        parent = by_span[span_id].get("parent")
        depth = (depth_of(parent, hops + 1) + 1
                 if parent and parent in by_span else 0)
        depths[span_id] = depth
        return depth

    for event in ordered:
        depth_of(event.get("span"))
    walls = [e["wall"] for e in ordered if "wall" in e]
    return {
        "trace": ordered[0].get("trace") if ordered else None,
        "start_wall": min(walls) if walls else 0.0,
        "end_wall": max(
            (e["wall"] + e.get("dur_ns", 0) / 1e9 for e in ordered
             if "wall" in e), default=0.0),
        "events": ordered,
        "depths": depths,
    }


def render_timeline(events: List[dict]) -> str:
    """One line per event: offset, process, name, duration, attrs."""
    if not events:
        return "(no events)"
    timeline = build_timeline(events)
    t0 = timeline["start_wall"]
    procs = sorted({e.get("proc", "?") for e in timeline["events"]})
    wall_s = max(0.0, timeline["end_wall"] - t0)
    lines = [f"trace {timeline['trace']} — "
             f"{len(timeline['events'])} events, "
             f"{wall_s:.3f}s wall, procs: {', '.join(procs)}"]
    for event in timeline["events"]:
        offset = event.get("wall", t0) - t0
        indent = "  " * timeline["depths"].get(event.get("span"), 0)
        mark = "x" if event.get("status") == "error" else (
            "-" if event.get("kind") == "event" else "+")
        dur = _fmt_dur(event.get("dur_ns", 0))
        attrs = event.get("attrs") or {}
        cells = [f"{offset:8.3f}s", mark,
                 f"{indent}{event.get('name', '?')}"]
        if dur:
            cells.append(dur)
        summary = _fmt_attrs(attrs)
        if summary:
            cells.append(f"[{summary}]")
        cells.append(f"({event.get('proc', '?')})")
        lines.append("  ".join(cells))
        phases = attrs.get("phases")
        if isinstance(phases, dict) and phases:
            lines.append(f"{'':>10}  {indent}  {_fmt_phases(phases)}")
    return "\n".join(lines)
