"""Trace-correlated structured logging on stdlib :mod:`logging`.

The fleet's daemons (scheduler, dispatcher, broker, workers) were
previously silent unless an exception happened to propagate — a
terminal unit failure inside the worker loop left *nothing* on stderr.
This module gives every ``repro.*`` logger two things:

* **Trace correlation.** A :class:`TraceContextFilter` stamps the
  active ``(trace, span)`` pair from :func:`repro.obs.trace.current_span`
  onto each record, so ``grep <job-id>`` over worker stderr lines up
  with ``repro trace <job-id>``. Call sites can also pass explicit
  ``extra={"trace": ...}`` which always wins over the ambient context.
* **Selectable format/level.** ``REPRO_LOG=<level>[,text|json]``
  (e.g. ``REPRO_LOG=debug,json``) configures a stderr handler on the
  ``repro`` logger root. Unset, nothing is configured and stdlib
  semantics apply — WARNING and above still reach stderr through
  ``logging.lastResort``, so the worker's terminal-failure lines are
  visible even on an unconfigured fleet.

Structured fields travel as ``extra={...}`` kwargs; the JSON formatter
emits them as top-level keys, the text formatter as trailing
``key=value`` pairs. Logging must never take down a campaign: both
formatters coerce unserialisable values through ``repr``.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import Optional, Tuple

from repro.obs.trace import current_span

#: Root of the package logger hierarchy configure() manages.
ROOT_LOGGER = "repro"

_LEVELS = ("debug", "info", "warning", "error", "critical")
_FORMATS = ("text", "json")

#: LogRecord attributes that are plumbing, not user-supplied fields.
_RESERVED = frozenset((
    "name", "msg", "args", "levelname", "levelno", "pathname",
    "filename", "module", "exc_info", "exc_text", "stack_info",
    "lineno", "funcName", "created", "msecs", "relativeCreated",
    "thread", "threadName", "processName", "process", "taskName",
    "message", "asctime", "trace", "span"))


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (prefix added if absent)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


class TraceContextFilter(logging.Filter):
    """Stamp the ambient trace/span ids onto every record.

    Explicit ``extra={"trace": ...}`` set by the call site is left
    untouched; otherwise the contextvar set by ``Tracer.span`` fills
    both fields. Always returns True — this filter annotates, it never
    drops.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if getattr(record, "trace", None) is None:
            active = current_span()
            if active is not None:
                record.trace, record.span = active
        return True


def _structured_fields(record: logging.LogRecord) -> dict:
    fields = {}
    for key, value in record.__dict__.items():
        if key in _RESERVED or key.startswith("_"):
            continue
        if not isinstance(value, (str, int, float, bool, type(None))):
            value = repr(value)
        fields[key] = value
    return fields


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line; machine-greppable fleet logs."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        trace = getattr(record, "trace", None)
        if trace is None:
            active = current_span()
            if active is not None:
                trace, record.span = active
        if trace is not None:
            payload["trace"] = trace
            span = getattr(record, "span", None)
            if span is not None:
                payload["span"] = span
        payload.update(_structured_fields(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


class TextLogFormatter(logging.Formatter):
    """Terse human format: level/logger/message plus ``k=v`` fields."""

    default_time_format = "%H:%M:%S"

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)-7s %(name)s: "
                         "%(message)s")

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        pairs = []
        trace = getattr(record, "trace", None)
        if trace is None:
            active = current_span()
            if active is not None:
                trace, record.span = active
        if trace is not None:
            pairs.append(f"trace={trace}")
        for key, value in sorted(_structured_fields(record).items()):
            if key == "span":
                continue
            pairs.append(f"{key}={value}")
        return f"{base} [{' '.join(pairs)}]" if pairs else base


def parse_log_env(value: str) -> Tuple[Optional[str], Optional[str]]:
    """``"debug,json"`` → ``("debug", "json")``; unknown tokens are
    ignored (a typo'd REPRO_LOG must not crash the CLI)."""
    level = fmt = None
    for token in value.split(","):
        token = token.strip().lower()
        if token in _LEVELS:
            level = token
        elif token in _FORMATS:
            fmt = token
    return level, fmt


def configure(level: Optional[str] = None, fmt: Optional[str] = None,
              stream=None) -> Optional[logging.Handler]:
    """Install (or retune) the ``repro`` stderr log handler.

    Explicit arguments win; unset ones fall back to ``REPRO_LOG``.
    With no arguments and no ``REPRO_LOG``, this is a no-op returning
    ``None`` — the fleet stays on stdlib-default behaviour. Idempotent:
    repeated calls reconfigure the one managed handler instead of
    stacking duplicates.
    """
    env_level, env_fmt = parse_log_env(os.environ.get("REPRO_LOG", ""))
    level = (level or env_level or "").strip().lower() or None
    fmt = (fmt or env_fmt or "").strip().lower() or None
    if level is None and fmt is None:
        return None
    level = level if level in _LEVELS else "info"
    fmt = fmt if fmt in _FORMATS else "text"

    root = logging.getLogger(ROOT_LOGGER)
    handler = next((h for h in root.handlers
                    if getattr(h, "repro_managed", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.repro_managed = True
        handler.addFilter(TraceContextFilter())
        root.addHandler(handler)
        root.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    handler.setFormatter(JsonLogFormatter() if fmt == "json"
                         else TextLogFormatter())
    root.setLevel(getattr(logging, level.upper()))
    return handler


def unconfigure() -> None:
    """Remove the managed handler (test isolation hook)."""
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "repro_managed", False):
            root.removeHandler(handler)
            handler.close()
    root.propagate = True
    root.setLevel(logging.NOTSET)
