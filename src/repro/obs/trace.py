"""Structured tracing: span/event records and phase profiling.

Identity model: the **trace id is the job id** (``j000042-ab12cd34``)
— it is already unique per submission, filesystem-safe, and known to
every process that touches the job, so no id service is needed. Span
ids are short random hex tokens; cross-process parentage rides the
unit dispatch envelope (wire v4) as a ``trace`` block, letting worker
spans attach under the scheduler's execute span.

Events are plain dicts so any sink can persist them; the canonical
sink appends JSONL lines to the store's ``events/`` namespace
(:meth:`repro.service.store.ResultStore.append_events`). Each record:

``{"trace", "span", "parent", "name", "kind": "span"|"event",
   "status": "ok"|"error", "proc", "wall", "dur_ns", "attrs"}``

``wall`` (``time.time()`` at span start) orders events *across*
processes; ``dur_ns`` is measured with the monotonic
``perf_counter_ns`` so durations never go negative under clock steps.
Emission is fire-and-forget: a sink failure is swallowed (telemetry
must never fail a campaign), and everything becomes a no-op when
observability is disabled (:func:`repro.obs.metrics.set_enabled`).

:class:`PhaseProfile` is the profiling leg's accumulator: the batched
campaign engine stamps per-phase nanoseconds (pack, encode, inject,
decode_sweep, tally, ...) into one via explicit ``add()`` calls —
deliberately not a context manager, so the hot block loop pays two
``perf_counter_ns`` reads per phase and nothing more.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import time
import uuid
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import is_enabled

#: ``sink(trace_id, events)`` — persists a batch of event dicts.
TraceSink = Callable[[str, List[dict]], None]

#: The innermost live span of the current context, as a
#: ``(trace_id, span_id)`` pair. Set by :meth:`Tracer.span` on entry
#: and restored on exit; the structured-logging plane
#: (:mod:`repro.obs.logs`) reads it to stamp every log record emitted
#: inside a span with that span's trace id. Context-local, so
#: concurrent asyncio tasks and threads each see their own span.
_ACTIVE_SPAN: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_span", default=None)


def current_span() -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` of the active span, or ``None``."""
    return _ACTIVE_SPAN.get()


def new_span_id() -> str:
    """A fresh 12-hex-char span id (collision odds are irrelevant at
    per-job event counts)."""
    return uuid.uuid4().hex[:12]


class Span:
    """Mutable in-flight span; emitted by the owning tracer on exit."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs",
                 "status", "_wall", "_t0")

    def __init__(self, trace_id: str, name: str,
                 parent_id: Optional[str],
                 attrs: Optional[dict]) -> None:
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.status = "ok"
        self._wall = time.time()
        self._t0 = time.perf_counter_ns()

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    def _record(self, proc: str) -> dict:
        return {"trace": self.trace_id, "span": self.span_id,
                "parent": self.parent_id, "name": self.name,
                "kind": "span", "status": self.status, "proc": proc,
                "wall": self._wall,
                "dur_ns": time.perf_counter_ns() - self._t0,
                "attrs": self.attrs}


class _NullSpan:
    """Stand-in yielded when tracing is disabled; absorbs everything."""

    trace_id = None
    span_id = None
    parent_id = None
    status = "ok"
    attrs: Dict[str, object] = {}

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emits spans and point events for one process through one sink.

    ``proc`` names the emitting process in every record (``service``,
    or a worker id) so the timeline can show who did what. Buffering
    is the caller's concern: each span/event is one sink call, and the
    worker batches where IO amortisation matters.
    """

    def __init__(self, sink: Optional[TraceSink],
                 proc: str = "proc") -> None:
        self._sink = sink
        self.proc = proc

    @property
    def active(self) -> bool:
        return self._sink is not None and is_enabled()

    def _emit(self, trace_id: str, records: List[dict]) -> None:
        if self._sink is None:
            return
        try:
            self._sink(trace_id, records)
        except Exception:  # noqa: BLE001 - telemetry must never raise
            pass

    @contextlib.contextmanager
    def span(self, trace_id: Optional[str], name: str,
             parent: Optional[str] = None,
             attrs: Optional[dict] = None):
        # A falsy trace id means "this work is untraced" (e.g. a unit
        # published by a pre-v4 dispatcher) — same null path as
        # disabled observability.
        if not self.active or not trace_id:
            yield _NULL_SPAN
            return
        span = Span(trace_id, name, parent, attrs)
        token = _ACTIVE_SPAN.set((trace_id, span.span_id))
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attrs.setdefault("error", repr(exc))
            raise
        finally:
            _ACTIVE_SPAN.reset(token)
            self._emit(trace_id, [span._record(self.proc)])

    def event(self, trace_id: str, name: str,
              parent: Optional[str] = None,
              attrs: Optional[dict] = None,
              status: str = "ok") -> Optional[dict]:
        """Emit a zero-duration point event; returns the record."""
        if not self.active:
            return None
        record = {"trace": trace_id, "span": new_span_id(),
                  "parent": parent, "name": name, "kind": "event",
                  "status": status, "proc": self.proc,
                  "wall": time.time(), "dur_ns": 0,
                  "attrs": dict(attrs) if attrs else {}}
        self._emit(trace_id, [record])
        return record

    def event_record(self, trace_id: str, name: str,
                     parent: Optional[str] = None,
                     attrs: Optional[dict] = None,
                     status: str = "ok") -> Optional[dict]:
        """Build a point-event record WITHOUT emitting it.

        For callers that batch several records into one sink write
        (the worker flushes per work-unit, not per event).
        """
        if not self.active:
            return None
        return {"trace": trace_id, "span": new_span_id(),
                "parent": parent, "name": name, "kind": "event",
                "status": status, "proc": self.proc,
                "wall": time.time(), "dur_ns": 0,
                "attrs": dict(attrs) if attrs else {}}

    def emit_records(self, trace_id: str,
                     records: Iterable[Optional[dict]]) -> None:
        """Flush a batch of pre-built records (Nones filtered)."""
        batch = [r for r in records if r]
        if batch and self.active:
            self._emit(trace_id, batch)


#: Shared inert tracer for call sites that may run untraced.
NULL_TRACER = Tracer(None, proc="null")


class PhaseProfile:
    """Accumulates per-phase wall time in integer nanoseconds.

    Single-threaded by contract: one profile per shard execution (the
    engine runs a shard's blocks sequentially). ``as_dict`` returns a
    plain ``{phase: ns}`` mapping, JSON-ready for shard checkpoint
    records and span attributes.
    """

    __slots__ = ("ns",)

    def __init__(self) -> None:
        self.ns: Dict[str, int] = {}

    def add(self, phase: str, dur_ns: int) -> None:
        self.ns[phase] = self.ns.get(phase, 0) + int(dur_ns)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.ns)

    def __bool__(self) -> bool:
        return bool(self.ns)


def merge_phases(profiles: Iterable[Optional[Dict[str, int]]]
                 ) -> Dict[str, int]:
    """Sum ``{phase: ns}`` dicts (Nones and empties are skipped)."""
    total: Dict[str, int] = {}
    for profile in profiles:
        if not profile:
            continue
        for phase, ns in profile.items():
            total[phase] = total.get(phase, 0) + int(ns)
    return total


def chaos_sink(tracer: Tracer, trace_id: str,
               parent: Optional[str] = None) -> Callable[[dict], None]:
    """Adapt a tracer into a ``ChaosPlan`` fault sink.

    The chaos harness calls the sink with ``{"site": ..., "call": ...}``
    each time a rule fires; this emits it as a ``chaos.fire`` trace
    event so the chaos matrix can assert "the fault I scheduled is the
    fault the trace observed".
    """

    def sink(fire: dict) -> None:
        tracer.event(trace_id, "chaos.fire", parent=parent,
                     attrs=dict(fire), status="error")

    return sink


def encode_event_lines(events: Iterable[dict]) -> str:
    """Serialize event records as newline-terminated JSONL."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in events)


def decode_event_lines(text: str) -> List[dict]:
    """Parse JSONL event lines, skipping torn/corrupt ones.

    Events are observational: a half-written tail line (process killed
    mid-append) must not poison the readable prefix.
    """
    events: List[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            events.append(record)
    return events
