"""Zero-dependency observability plane: metrics, tracing, profiling.

Three legs, one package (see the module docstrings for the contracts):

* :mod:`repro.obs.metrics` — a process-local metrics registry
  (counters, gauges, fixed-bucket histograms) rendered in Prometheus
  text exposition format by ``GET /metrics`` and ``repro metrics``.
* :mod:`repro.obs.trace` — ``trace_id``/``span_id`` event records
  propagated from job submission through the broker wire to worker
  shard execution, persisted as append-only JSONL by the store's
  ``events/`` namespace.
* :mod:`repro.obs.timeline` — reconstructs and renders a cross-process
  timeline from those events (``repro trace <job-id>``).
* :mod:`repro.obs.perf` — the longitudinal leg: an append-only JSONL
  benchmark ledger with provenance, trend reports, and a bootstrap-CI
  regression gate (``repro perf ingest/report/compare/jobs``).
* :mod:`repro.obs.logs` — trace-correlated structured logging on
  stdlib ``logging`` (``REPRO_LOG=<level>[,text|json]``); every record
  emitted inside an active span carries that span's trace id.

The package imports nothing from the rest of :mod:`repro` (stdlib
only), so any layer — ``utils.retry`` included — can instrument itself
without import cycles. A single switch (:func:`set_enabled`, or the
``REPRO_OBS=off`` environment variable read at import) turns every
counter increment, span emission, and phase timer into a near-zero-cost
no-op; ``benchmarks/bench_obs_overhead.py`` gates the enabled cost.
"""

from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    is_enabled,
    render_prometheus,
    set_enabled,
)
from repro.obs.trace import (
    NULL_TRACER,
    PhaseProfile,
    Tracer,
    chaos_sink,
    current_span,
    merge_phases,
    new_span_id,
)
from repro.obs.timeline import build_timeline, render_timeline
from repro.obs.logs import configure as configure_logging
from repro.obs.logs import get_logger

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "is_enabled",
    "render_prometheus",
    "set_enabled",
    "NULL_TRACER",
    "PhaseProfile",
    "Tracer",
    "chaos_sink",
    "current_span",
    "merge_phases",
    "new_span_id",
    "build_timeline",
    "render_timeline",
    "configure_logging",
    "get_logger",
]
