"""Process-local metrics registry with Prometheus text rendering.

Design goals, in priority order:

1. **Near-zero cost when observability is disabled.** Every mutation
   checks one module-level boolean first; a disabled ``inc()`` is a
   function call, a flag read, and a return. ``REPRO_OBS=off`` (or
   ``0``/``false``/``no``) disables at import; :func:`set_enabled`
   flips it at runtime (the overhead benchmark uses this to measure
   the instrumented-vs-stripped delta).
2. **Thread-safe.** The scheduler's executor threads, worker
   heartbeats, and the broker all mutate metrics concurrently; each
   metric guards its children with one lock. There is no cross-process
   aggregation — the registry is process-local by design, and the
   service's ``/metrics`` endpoint complements it with point-in-time
   gauges sampled from shared state (broker counts, store quarantine).
3. **Get-or-create registration.** Modules declare their metrics at
   import time (``_CLAIMS = counter("repro_broker_claims_total", ...)``);
   re-declaring the same name with the same type returns the same
   instance, so instrumentation sites never race over registration
   order. Re-declaring with a *different* type or label set raises.

Rendering follows the Prometheus text exposition format, version
0.0.4: ``# HELP``/``# TYPE`` headers, label values escaped, histogram
``_bucket`` samples cumulative with a ``+Inf`` terminal bucket.
"""

from __future__ import annotations

import bisect
import math
import os
import re
import threading
from typing import Dict, Iterable, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Default histogram buckets, in seconds: spans poll sleeps (~ms) up to
# long campaign jobs (~minutes). Fixed boundaries keep scrapes
# comparable across processes and runs.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                   10.0, 30.0, 60.0, 300.0)

_enabled = os.environ.get("REPRO_OBS", "on").strip().lower() not in (
    "0", "off", "false", "no")


def is_enabled() -> bool:
    """True when metric mutations and span emission are live."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Set the global observability switch; returns the previous value.

    Disabling does not clear accumulated values — it only stops new
    mutations — so a scrape after ``set_enabled(False)`` still renders
    everything recorded while enabled.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _sample_line(name: str, label_names: Tuple[str, ...],
                 label_values: Tuple[str, ...], value) -> str:
    if label_names:
        labels = ",".join(
            f'{k}="{_escape_label_value(str(v))}"'
            for k, v in zip(label_names, label_values))
        return f"{name}{{{labels}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Metric:
    """Shared bookkeeping: name/help/labels plus a child-value lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def reset(self) -> None:
        """Drop all recorded children (test/bench isolation hook)."""
        with self._lock:
            self._children.clear()

    def samples(self) -> List[str]:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: str) -> None:
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._children.get(self._key(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._children.values())

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._children.items())
        return [_sample_line(self.name, self.labelnames, key, value)
                for key, value in items]


class Gauge(_Metric):
    """Last-write-wins value, settable from any thread."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._children[key] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._children.get(self._key(labels), 0)

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._children.items())
        return [_sample_line(self.name, self.labelnames, key, value)
                for key, value in items]


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative buckets + sum + count)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...],
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        if not _enabled:
            return
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = {"counts": [0] * (len(self.buckets) + 1),
                         "sum": 0.0, "count": 0}
                self._children[key] = child
            child["counts"][bisect.bisect_left(self.buckets, value)] += 1
            child["sum"] += value
            child["count"] += 1

    def child(self, **labels: str) -> Optional[dict]:
        with self._lock:
            found = self._children.get(self._key(labels))
            return dict(found) if found else None

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted((k, dict(v)) for k, v in self._children.items())
        lines: List[str] = []
        for key, child in items:
            cumulative = 0
            for bound, count in zip(self.buckets, child["counts"]):
                cumulative += count
                lines.append(_sample_line(
                    f"{self.name}_bucket", self.labelnames + ("le",),
                    key + (_format_value(bound),), cumulative))
            cumulative += child["counts"][-1]
            lines.append(_sample_line(
                f"{self.name}_bucket", self.labelnames + ("le",),
                key + ("+Inf",), cumulative))
            lines.append(_sample_line(
                f"{self.name}_sum", self.labelnames, key, child["sum"]))
            lines.append(_sample_line(
                f"{self.name}_count", self.labelnames, key,
                child["count"]))
        return lines


class MetricsRegistry:
    """Name → metric map with get-or-create registration."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: Tuple[str, ...], **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labelnames != tuple(labelnames)):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.labelnames}")
                return existing
            metric = cls(name, help_text, tuple(labelnames), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text,
                                   tuple(labelnames))

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text,
                                   tuple(labelnames))

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   tuple(labelnames), buckets=buckets)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name]
                    for name in sorted(self._metrics)]

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of everything."""
        lines: List[str] = []
        for metric in self.metrics():
            samples = metric.samples()
            if not samples:
                continue
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n" if lines else ""

    def counter_totals(self) -> Dict[str, float]:
        """``{counter name: label-summed total}`` for quick snapshots.

        This is the compact block ``GET /health`` embeds as
        ``metrics_snapshot`` — counters only, summed across labels, so
        the payload stays small and stable as label cardinality grows.
        """
        totals: Dict[str, float] = {}
        for metric in self.metrics():
            if isinstance(metric, Counter):
                value = metric.total()
                if value:
                    totals[metric.name] = value
        return totals

    def reset(self) -> None:
        """Zero every metric in place (instances stay registered)."""
        for metric in self.metrics():
            metric.reset()


#: The process-wide default registry; module-level helpers below bind
#: to it, and ``GET /metrics`` / ``repro metrics`` render it.
REGISTRY = MetricsRegistry()


def counter(name: str, help_text: str = "",
            labelnames: Iterable[str] = ()) -> Counter:
    return REGISTRY.counter(name, help_text, labelnames)


def gauge(name: str, help_text: str = "",
          labelnames: Iterable[str] = ()) -> Gauge:
    return REGISTRY.gauge(name, help_text, labelnames)


def histogram(name: str, help_text: str = "",
              labelnames: Iterable[str] = (),
              buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
    return REGISTRY.histogram(name, help_text, labelnames, buckets)


def render_prometheus() -> str:
    return REGISTRY.render()


def estimate_quantiles(bounds: Iterable[float],
                       counts: Iterable[int],
                       quantiles: Iterable[float]) -> Dict[float, float]:
    """Estimate quantiles from per-bucket histogram counts.

    ``counts`` has one entry per finite bound plus a terminal overflow
    bucket (``len(bounds) + 1`` entries, *not* cumulative). Values are
    interpolated linearly inside the winning bucket, the way Prometheus'
    ``histogram_quantile`` does; the overflow bucket has no upper edge,
    so estimates there clamp to the largest finite bound. Returns
    ``{quantile: estimate}``; empty histograms yield an empty dict.
    """
    bounds = [float(b) for b in bounds]
    counts = [int(c) for c in counts]
    total = sum(counts)
    if total <= 0:
        return {}
    out: Dict[float, float] = {}
    for q in quantiles:
        target = max(0.0, min(1.0, float(q))) * total
        cumulative = 0
        estimate = bounds[-1] if bounds else 0.0
        for i, count in enumerate(counts):
            if count == 0:
                continue
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i] if i < len(bounds) else bounds[-1]
            if cumulative + count >= target:
                fraction = (target - cumulative) / count
                estimate = lower + fraction * max(0.0, upper - lower)
                break
            cumulative += count
        out[float(q)] = estimate
    return out


_BUCKET_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)_"
                        r"(?P<sample>bucket|sum|count)"
                        r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)='
                            r'"((?:[^"\\]|\\.)*)"')


def parse_prometheus_histograms(text: str) -> Dict[Tuple[str, Tuple],
                                                   dict]:
    """Parse histogram series out of Prometheus text exposition.

    Returns ``{(name, labels): {"bounds", "counts", "sum", "count"}}``
    where ``labels`` is a sorted tuple of ``(key, value)`` pairs minus
    ``le`` and ``counts`` is per-bucket (de-cumulated), matching what
    :func:`estimate_quantiles` expects. Non-histogram samples and
    malformed lines are ignored — this is a display helper, not a full
    exposition parser.
    """
    series: Dict[Tuple[str, Tuple], dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _BUCKET_RE.match(line)
        if not match:
            continue
        labels = dict(_LABEL_PAIR_RE.findall(match.group("labels") or ""))
        le = labels.pop("le", None)
        key = (match.group("name"),
               tuple(sorted(labels.items())))
        try:
            value = float(match.group("value").replace("+Inf", "inf"))
        except ValueError:
            continue
        entry = series.setdefault(key, {"cumulative": [], "sum": None,
                                        "count": None})
        sample = match.group("sample")
        if sample == "bucket":
            if le is None:
                continue
            bound = math.inf if le == "+Inf" else float(le)
            entry["cumulative"].append((bound, value))
        elif sample == "sum":
            entry["sum"] = value
        elif sample == "count":
            entry["count"] = value
    out: Dict[Tuple[str, Tuple], dict] = {}
    for key, entry in series.items():
        cumulative = sorted(entry["cumulative"])
        if not cumulative or entry["count"] is None:
            continue
        bounds = [b for b, _ in cumulative if b != math.inf]
        counts, previous = [], 0.0
        for _, running in cumulative:
            counts.append(max(0, int(running - previous)))
            previous = running
        if len(counts) == len(bounds):  # no explicit +Inf bucket
            counts.append(max(0, int(entry["count"] - previous)))
        out[key] = {"bounds": bounds, "counts": counts,
                    "sum": entry["sum"] or 0.0,
                    "count": int(entry["count"])}
    return out


def render_histogram_summary(text: str,
                             quantiles=(0.5, 0.95, 0.99)) -> str:
    """Human-readable p50/p95/p99 lines for every histogram in ``text``.

    ``repro metrics`` appends this under the raw exposition so a human
    gets latency percentiles without mentally integrating cumulative
    bucket counts. Returns ``""`` when the exposition holds no
    populated histograms.
    """
    lines: List[str] = []
    for (name, labels), hist in sorted(
            parse_prometheus_histograms(text).items()):
        if hist["count"] <= 0:
            continue
        estimates = estimate_quantiles(hist["bounds"], hist["counts"],
                                       quantiles)
        label_text = ("{" + ",".join(f'{k}="{v}"' for k, v in labels)
                      + "}") if labels else ""
        mean = hist["sum"] / hist["count"]
        parts = [f"count={hist['count']}", f"mean={mean:.4g}"]
        parts += [f"p{int(q * 100)}={estimates[q]:.4g}"
                  for q in quantiles if q in estimates]
        lines.append(f"{name}{label_text}: " + " ".join(parts))
    return "\n".join(lines)
