"""Small argument-validation helpers raising library exceptions.

These keep the public constructors short while producing error messages that
name the offending parameter, which matters for a library meant to be driven
from user scripts and notebooks.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, GeometryError


def check_positive(name: str, value) -> None:
    """Raise :class:`ConfigurationError` unless ``value > 0``."""
    if value is None or value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def check_odd(name: str, value: int) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is odd.

    The diagonal code requires odd block sizes so the (leading, counter)
    diagonal pair uniquely identifies a cell (paper Sec. III, footnote 1).
    """
    if value % 2 != 1:
        raise ConfigurationError(f"{name} must be odd, got {value}")


def check_power_compatible(n: int, m: int) -> None:
    """Raise :class:`GeometryError` unless the ``n x n`` crossbar divides
    evenly into ``m x m`` blocks."""
    check_positive("n", n)
    check_positive("m", m)
    if n % m != 0:
        raise GeometryError(f"crossbar size n={n} is not a multiple of block size m={m}")


def check_index(name: str, value: int, limit: int) -> None:
    """Raise :class:`ConfigurationError` unless ``0 <= value < limit``."""
    if not 0 <= value < limit:
        raise ConfigurationError(f"{name} must be in [0, {limit}), got {value}")
