"""Shared helpers: bit manipulation, validation, RNG, array backends."""

from repro.utils.backend import (
    ArrayBackend,
    BackendUnavailableError,
    TracingBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.utils.bitops import (
    bits_to_int,
    bools_to_bits,
    int_to_bits,
    pack_bits,
    parity,
    popcount,
    unpack_bits,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import wilson_halfwidth, wilson_interval
from repro.utils.validation import (
    check_index,
    check_odd,
    check_positive,
    check_power_compatible,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "TracingBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "wilson_interval",
    "wilson_halfwidth",
    "bits_to_int",
    "bools_to_bits",
    "int_to_bits",
    "pack_bits",
    "parity",
    "popcount",
    "unpack_bits",
    "make_rng",
    "spawn_rngs",
    "check_index",
    "check_odd",
    "check_positive",
    "check_power_compatible",
]
