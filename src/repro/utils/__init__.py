"""Shared helpers: bit manipulation, validation, RNG, array backends."""

from repro.utils.backend import (
    ArrayBackend,
    BackendUnavailableError,
    TracingBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.utils.bitops import (
    WORD_BITS,
    bits_to_int,
    bools_to_bits,
    int_to_bits,
    pack_bits,
    pack_words,
    pack_words_axis0,
    parity,
    popcount,
    unpack_bits,
    unpack_words,
    unpack_words_axis0,
    words_for,
)
from repro.utils.bitpack import (
    and_reduce_words,
    batch_tail_mask,
    or_reduce_words,
    pack_batch,
    popcount_words,
    saturating_count2,
    unpack_batch,
)
from repro.utils.canonical import canonical_json, content_hash
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import wilson_halfwidth, wilson_interval
from repro.utils.validation import (
    check_index,
    check_odd,
    check_positive,
    check_power_compatible,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "TracingBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "wilson_interval",
    "wilson_halfwidth",
    "WORD_BITS",
    "bits_to_int",
    "bools_to_bits",
    "int_to_bits",
    "pack_bits",
    "pack_words",
    "pack_words_axis0",
    "parity",
    "popcount",
    "unpack_bits",
    "unpack_words",
    "unpack_words_axis0",
    "words_for",
    "and_reduce_words",
    "batch_tail_mask",
    "or_reduce_words",
    "pack_batch",
    "popcount_words",
    "saturating_count2",
    "unpack_batch",
    "canonical_json",
    "content_hash",
    "make_rng",
    "spawn_rngs",
    "check_index",
    "check_odd",
    "check_positive",
    "check_power_compatible",
]
