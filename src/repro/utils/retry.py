"""Unified retry/backoff policy: capped exponential + full jitter.

Every poll/retry loop in the repo used to roll its own
``time.sleep(min(interval * 2**n, cap))`` — the client's job poll, the
client's come-up probe, the worker daemon's claim loop, and the
distributed dispatcher's checkpoint poll. Four copies of the same
shape, all unjittered: a restarted fleet would thunder against the
service in lockstep, every worker retrying at the exact same instants.

:class:`RetryPolicy` is the one implementation they all share now:

* **Capped exponential envelope** — attempt ``n`` may sleep at most
  ``min(initial_s * multiplier**n, cap_s)``.
* **Full jitter** (the AWS "full jitter" scheme) — the actual sleep is
  drawn uniformly from ``[0, envelope]``, which decorrelates a fleet
  of retriers without changing the worst-case latency envelope.
* **Deadline propagation** — sleeps truncate at a
  :class:`Deadline`, so a retry loop never overshoots its caller's
  timeout just to finish a backoff nap.
* **Stop-event awareness** — blocking sleeps wait on a
  ``threading.Event`` when one is given, so shutdown requests
  interrupt the wait immediately instead of lingering a full interval.

A policy with ``multiplier=1.0`` degenerates to a jittered
constant-interval poll — useful for steady polling loops that should
still be decorrelated across a fleet.

Randomness defaults to a module-level :class:`random.Random`; callers
that need reproducible sleep schedules (tests, the chaos harness)
pass their own seeded instance.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger

_LOG = get_logger("utils.retry")

#: Fleet-decorrelation entropy. Timing jitter never feeds results
#: (the seeding contract draws from SeedSequence streams only), so an
#: OS-seeded shared instance is correct here.
_JITTER_RNG = random.Random()

_RETRY_SLEEPS = obs_metrics.counter(
    "repro_retry_sleeps_total",
    "Backoff sleeps taken through RetryPolicy.")
_RETRY_SLEEP_SECONDS = obs_metrics.counter(
    "repro_retry_sleep_seconds_total",
    "Total seconds slept in RetryPolicy backoffs.")
_RETRY_GIVEUPS = obs_metrics.counter(
    "repro_retry_giveups_total",
    "Retry loops abandoned (deadline expired or stop requested), "
    "by call site.", ("site",))


def note_giveup(site: str) -> None:
    """Record that a retry loop gave up (timeout/stop) at ``site``.

    Give-up is a caller-level outcome — the policy itself has no loop
    — so call sites (client wait timeout, worker shutdown, dispatcher
    deadline) report it explicitly through this hook.
    """
    _RETRY_GIVEUPS.inc(site=site)
    _LOG.warning("retry loop gave up", extra={
        "event": "retry.giveup", "site": site})


class Deadline:
    """A monotonic-clock deadline that propagates through call layers.

    Constructed once at the top of an operation
    (``Deadline.after(timeout)``) and handed down, so every nested
    retry loop truncates its sleeps against the *same* instant instead
    of each layer granting itself a fresh budget.
    """

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = float(at)

    @classmethod
    def after(cls, timeout_s: float) -> "Deadline":
        """The deadline ``timeout_s`` seconds from now."""
        return cls(time.monotonic() + float(timeout_s))

    def remaining(self) -> float:
        """Seconds left (clamped at zero)."""
        return max(0.0, self.at - time.monotonic())

    def expired(self) -> bool:
        """True once the deadline has passed."""
        return time.monotonic() >= self.at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter (module docstring).

    Parameters
    ----------
    initial_s:
        Envelope of attempt 0 (and the steady interval when
        ``multiplier`` is 1.0).
    multiplier:
        Envelope growth per attempt (>= 1.0).
    cap_s:
        Hard ceiling on any single sleep.
    jitter:
        When ``True`` (default), sleeps draw uniformly from
        ``[0, envelope]``; ``False`` sleeps the envelope exactly
        (for callers that need deterministic pacing without an rng).
    """

    initial_s: float = 0.1
    multiplier: float = 2.0
    cap_s: float = 5.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.initial_s <= 0:
            raise ValueError(f"initial_s must be positive, "
                             f"got {self.initial_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1.0, "
                             f"got {self.multiplier}")
        if self.cap_s <= 0:
            raise ValueError(f"cap_s must be positive, got {self.cap_s}")

    # ------------------------------------------------------------------ #
    # Delay computation
    # ------------------------------------------------------------------ #

    def backoff_s(self, attempt: int) -> float:
        """The (unjittered) envelope of attempt ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, "
                             f"got {attempt}")
        try:
            envelope = self.initial_s * (self.multiplier ** attempt)
        except OverflowError:
            return self.cap_s
        return min(envelope, self.cap_s)

    def delay_s(self, attempt: int,
                rng: Optional[random.Random] = None) -> float:
        """The actual sleep for ``attempt``: jittered within the
        envelope (full jitter), or the envelope itself when the policy
        is unjittered."""
        envelope = self.backoff_s(attempt)
        if not self.jitter:
            return envelope
        return (rng or _JITTER_RNG).uniform(0.0, envelope)

    # ------------------------------------------------------------------ #
    # Sleeping
    # ------------------------------------------------------------------ #

    def sleep(self, attempt: int, *,
              deadline: Optional[Union[Deadline, float]] = None,
              stop: Optional[threading.Event] = None,
              rng: Optional[random.Random] = None) -> bool:
        """Block for this attempt's delay; returns ``False`` when the
        ``stop`` event cut the sleep short (the caller should exit its
        loop), ``True`` otherwise.

        ``deadline`` (a :class:`Deadline`, or a plain
        ``time.monotonic()`` timestamp) truncates the sleep so the
        retry loop wakes in time to observe its own timeout.
        """
        delay = self.delay_s(attempt, rng)
        if deadline is not None:
            if not isinstance(deadline, Deadline):
                deadline = Deadline(deadline)
            delay = min(delay, deadline.remaining())
        _RETRY_SLEEPS.inc()
        _RETRY_SLEEP_SECONDS.inc(delay)
        if stop is not None:
            return not stop.wait(delay)
        if delay > 0:
            time.sleep(delay)
        return True

    async def sleep_async(self, attempt: int, *,
                          deadline: Optional[Deadline] = None,
                          rng: Optional[random.Random] = None) -> None:
        """The asyncio twin of :meth:`sleep` (cancellation plays the
        role of the stop event on the event loop)."""
        delay = self.delay_s(attempt, rng)
        if deadline is not None:
            delay = min(delay, deadline.remaining())
        _RETRY_SLEEPS.inc()
        _RETRY_SLEEP_SECONDS.inc(delay)
        await asyncio.sleep(delay)


#: A jittered constant-interval poll at ``interval_s`` — the steady
#: (non-error) poll loops' shape, kept as a helper so call sites read
#: as intent rather than as a degenerate policy construction.
def poll_policy(interval_s: float) -> RetryPolicy:
    return RetryPolicy(initial_s=interval_s, multiplier=1.0,
                       cap_s=interval_s, jitter=True)
