"""Kernel-tier registry: pluggable host-side word-level kernels.

The array-backend layer (:mod:`repro.utils.backend`) abstracts *which
array module* tensors live on; this module abstracts *how the host-side
word-level hot loops run*. The ``uint64`` bit-slice layout
(:mod:`repro.utils.bitpack`) spends most of its end-to-end time in a
handful of loops — the axis-0 bit transpose (``pack_words_axis0``), the
saturating carry-save counter of the packed decoder, the fused decode
sweep, per-word popcounts, and the matrix codes' syndrome-difference
pattern match. Each has a pure-numpy implementation and, when the
optional C extension :mod:`repro._native._kernels` is built, a compiled
one that is **bit-identical** (same expressions, same order, same
tail-garbage behaviour).

Tier-selection contract (mirrors ``backend.get_backend``):

1. An explicit handle wins: pass a :class:`KernelTier` instance (used
   verbatim) or a registered tier name (``str``) to any ``kernels=``
   parameter in the library.
2. With ``kernels=None`` (the default everywhere), the environment
   variable ``REPRO_KERNELS`` selects a tier by name.
3. With no environment override, ``"auto"`` is used.

Registered tiers:

``"numpy"``
    The pure-numpy reference implementations — always available, and
    the tier every differential contract is stated against.
``"native"``
    The compiled C extension. Requesting it explicitly (argument or
    ``REPRO_KERNELS=native``) when the extension is not built raises
    :class:`KernelUnavailableError` with a build hint — never a silent
    fallback, exactly like requesting the cupy backend without cupy.
``"auto"``
    Resolves to ``"native"`` when the extension imported, else
    ``"numpy"``; :func:`get_kernels` returns the *concrete* tier, so
    resolved names (e.g. on shard payloads) are always one of the two.

Kernel tiers operate on **host numpy arrays only** — packing is defined
as a host-side operation (see the staging contract in
:mod:`repro.utils.bitpack`), and the dispatch sites only route
backend-resident tensors through the native tier when the resolved
backend's module is numpy itself. Device backends (cupy) and diagnostic
backends (tracing) keep the generic backend-dispatched paths untouched.

Like backends, sharded campaigns ship the **resolved tier name** to
workers (:class:`repro.faults.batch.ShardTask`); a worker asked for
``"native"`` without the extension fails loudly rather than silently
computing on a different code path than the campaign recorded.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Tuple, Union

import numpy as np

from repro.utils import bitops

#: Environment variable naming the default kernel tier.
KERNELS_ENV_VAR = "REPRO_KERNELS"

__all__ = [
    "KERNELS_ENV_VAR",
    "KernelUnavailableError",
    "KernelTier",
    "KernelsLike",
    "register_kernels",
    "available_kernels",
    "native_available",
    "get_kernels",
]


class KernelUnavailableError(RuntimeError):
    """A registered kernel tier's implementation is not importable."""


def _native_module():
    """The compiled extension module, or ``None`` (test seam)."""
    from repro import _native
    return _native.load()


def native_available() -> bool:
    """Whether the compiled ``repro._native._kernels`` extension built."""
    return _native_module() is not None


class KernelTier:
    """Handle over one implementation set of the word-level kernels.

    All methods take and return host ``numpy`` arrays. Shapes follow the
    :mod:`repro.utils.bitops` / :mod:`repro.utils.bitpack` conventions:
    the packed axis is axis 0 for pack/unpack, an explicit ``axis`` for
    the counters, and axis 1 (the plane axis) for the decode sweep and
    pattern match.
    """

    #: Registered tier name (shard payloads carry this).
    name: str = ""
    #: Whether this tier runs the compiled extension.
    native: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelTier({self.name!r})"

    # ------------------------------------------------------------------ #
    # Pack / unpack (axis-0 bit transpose)
    # ------------------------------------------------------------------ #

    def pack_words_axis0(self, bits: np.ndarray) -> np.ndarray:
        """``(B, ...)`` 0/1 array -> ``(ceil(B/64), ...)`` uint64 words."""
        raise NotImplementedError

    def unpack_words_axis0(self, words: np.ndarray,
                           count: int) -> np.ndarray:
        """``(W, ...)`` words -> ``(count, ...)`` uint8 bits."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Word-level reductions
    # ------------------------------------------------------------------ #

    def popcount_words(self, words: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts (``int64``, same shape)."""
        raise NotImplementedError

    def saturating_count2(self, planes: np.ndarray,
                          axis: int) -> Tuple[np.ndarray, np.ndarray]:
        """Carry-save ``(ones, twos)`` along ``axis`` (see bitpack)."""
        raise NotImplementedError

    def decode_sweep(self, lead: np.ndarray, ctr: np.ndarray) -> Tuple:
        """Fused packed-decoder classification over plane axis 1.

        ``lead``/``ctr`` are ``(W, depth, ...)`` syndrome word planes;
        returns the five ``(W, ...)`` status masks ``(no_error,
        data_error, lead_check, ctr_check, uncorrectable)`` of
        :class:`repro.core.code.PackedBatchDecode`, bit-identical to the
        two-counter numpy expression (including tail garbage from the
        complements).
        """
        raise NotImplementedError

    def match_pattern(self, diff: np.ndarray, pattern: int) -> np.ndarray:
        """AND of ``(W, r, ...)`` planes, complemented where bit clear.

        The matrix codes' packed syndrome-difference column match;
        returns the ``(W, ...)`` match mask.
        """
        raise NotImplementedError


class _NumpyKernels(KernelTier):
    """Pure-numpy reference tier (always available)."""

    name = "numpy"
    native = False

    def pack_words_axis0(self, bits: np.ndarray) -> np.ndarray:
        return bitops.pack_words_axis0_numpy(bits)

    def unpack_words_axis0(self, words: np.ndarray,
                           count: int) -> np.ndarray:
        return bitops.unpack_words_axis0_numpy(words, count)

    def popcount_words(self, words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words).astype(np.int64)

    def saturating_count2(self, planes: np.ndarray,
                          axis: int) -> Tuple[np.ndarray, np.ndarray]:
        planes = np.asarray(planes)
        length = planes.shape[axis]
        head = (slice(None),) * (axis % planes.ndim)
        ones = np.zeros_like(planes[head + (0,)])
        twos = np.zeros_like(ones)
        for d in range(length):
            lane = planes[head + (d,)]
            twos = twos | (ones & lane)
            ones = ones ^ lane
        return ones, twos

    def decode_sweep(self, lead: np.ndarray, ctr: np.ndarray) -> Tuple:
        l_ones, l_twos = self.saturating_count2(lead, axis=1)
        c_ones, c_twos = self.saturating_count2(ctr, axis=1)
        l0 = ~l_ones & ~l_twos
        l1 = l_ones & ~l_twos
        c0 = ~c_ones & ~c_twos
        c1 = c_ones & ~c_twos
        return (l0 & c0, l1 & c1, l1 & c0, l0 & c1, l_twos | c_twos)

    def match_pattern(self, diff: np.ndarray, pattern: int) -> np.ndarray:
        diff = np.asarray(diff)
        mask = None
        for j in range(diff.shape[1]):
            term = diff[:, j] if (pattern >> j) & 1 else ~diff[:, j]
            mask = term if mask is None else mask & term
        if mask is None:
            raise ValueError("diff must have at least one plane")
        return mask


class _NativeKernels(KernelTier):
    """Compiled tier over :mod:`repro._native._kernels`.

    Wrappers normalise to the canonical contiguous 2-D/3-D forms the C
    functions expect (collapsing trailing/surrounding axes) and fall
    back to the numpy tier for inputs outside the compiled fast path
    (exotic dtypes, >64 match planes), so behaviour is uniformly
    bit-identical.
    """

    name = "native"
    native = True

    def __init__(self, mod):
        self._mod = mod
        self._numpy = _NumpyKernels()

    def pack_words_axis0(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits)
        if bits.dtype == np.bool_:
            bits = bits.view(np.uint8)
        if bits.dtype != np.uint8 or bits.ndim < 1:
            # Casting wider ints to uint8 could wrap a nonzero value to
            # zero; only the reference path handles those faithfully.
            return self._numpy.pack_words_axis0(bits)
        tail_shape = bits.shape[1:]
        k = 1
        for dim in tail_shape:
            k *= dim
        flat = np.ascontiguousarray(bits.reshape(bits.shape[0], k))
        words = self._mod.pack_words_axis0(flat)
        return words.reshape((words.shape[0],) + tail_shape)

    def unpack_words_axis0(self, words: np.ndarray,
                           count: int) -> np.ndarray:
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim < 1:
            return self._numpy.unpack_words_axis0(words, count)
        tail_shape = words.shape[1:]
        k = 1
        for dim in tail_shape:
            k *= dim
        flat = np.ascontiguousarray(words.reshape(words.shape[0], k))
        bits = self._mod.unpack_words_axis0(flat, count)
        return bits.reshape((count,) + tail_shape)

    def popcount_words(self, words: np.ndarray) -> np.ndarray:
        words = np.asarray(words)
        if words.dtype != np.uint64:
            # Width-dependent: popcount of an int32 must count 32 bits.
            return self._numpy.popcount_words(words)
        flat = np.ascontiguousarray(words.reshape(-1))
        return self._mod.popcount_words(flat).reshape(words.shape)

    @staticmethod
    def _as3d(arr: np.ndarray, axis: int):
        axis = axis % arr.ndim
        outer = 1
        for dim in arr.shape[:axis]:
            outer *= dim
        inner = 1
        for dim in arr.shape[axis + 1:]:
            inner *= dim
        return (np.ascontiguousarray(
            arr.reshape(outer, arr.shape[axis], inner)),
            arr.shape[:axis] + arr.shape[axis + 1:])

    def saturating_count2(self, planes: np.ndarray,
                          axis: int) -> Tuple[np.ndarray, np.ndarray]:
        planes = np.asarray(planes)
        if planes.dtype != np.uint64 or planes.shape[axis % planes.ndim] < 1:
            return self._numpy.saturating_count2(planes, axis)
        flat, out_shape = self._as3d(planes, axis)
        ones, twos = self._mod.saturating_count2(flat)
        return ones.reshape(out_shape), twos.reshape(out_shape)

    def decode_sweep(self, lead: np.ndarray, ctr: np.ndarray) -> Tuple:
        lead = np.asarray(lead)
        ctr = np.asarray(ctr)
        if (lead.dtype != np.uint64 or ctr.dtype != np.uint64
                or lead.ndim < 2 or ctr.ndim < 2
                or lead.shape[0] != ctr.shape[0]
                or lead.shape[2:] != ctr.shape[2:]
                or lead.shape[1] < 1 or ctr.shape[1] < 1):
            return self._numpy.decode_sweep(lead, ctr)
        lead3, out_shape = self._as3d(lead, 1)
        ctr3, _ = self._as3d(ctr, 1)
        masks = self._mod.decode_sweep(lead3, ctr3)
        return tuple(m.reshape(out_shape) for m in masks)

    def match_pattern(self, diff: np.ndarray, pattern: int) -> np.ndarray:
        diff = np.asarray(diff)
        if (diff.dtype != np.uint64 or diff.ndim < 2
                or not 1 <= diff.shape[1] <= 64
                or not 0 <= pattern < (1 << 64)):
            return self._numpy.match_pattern(diff, pattern)
        flat, out_shape = self._as3d(diff, 1)
        return self._mod.match_pattern(flat, pattern).reshape(out_shape)


def _make_numpy() -> KernelTier:
    return _NumpyKernels()


def _make_native() -> KernelTier:
    mod = _native_module()
    if mod is None:
        raise KernelUnavailableError(
            "the 'native' kernel tier requires the compiled "
            "repro._native._kernels extension; build it with "
            "'python setup.py build_ext --inplace' (or 'pip install -e .' "
            "with a C compiler and numpy headers); falling back is "
            "automatic only when REPRO_KERNELS is unset")
    return _NativeKernels(mod)


_FACTORIES: Dict[str, Callable[[], KernelTier]] = {
    "numpy": _make_numpy,
    "native": _make_native,
}

#: Instantiated tiers, one per registry name.
_CACHE: Dict[str, KernelTier] = {}

KernelsLike = Union[KernelTier, str, None]


def register_kernels(name: str, factory: Callable[[], KernelTier],
                     overwrite: bool = False) -> None:
    """Register a kernel-tier factory under ``name``.

    ``factory`` is a zero-argument callable returning a
    :class:`KernelTier`; it runs lazily on first :func:`get_kernels`
    lookup (optional imports belong inside it). Re-registering an
    existing name requires ``overwrite=True``. ``"auto"`` is reserved.
    """
    if name == "auto":
        raise ValueError("'auto' is a reserved tier name")
    if name in _FACTORIES and not overwrite:
        raise ValueError(f"kernel tier {name!r} is already registered "
                         f"(pass overwrite=True to replace it)")
    _FACTORIES[name] = factory
    _CACHE.pop(name, None)


def available_kernels() -> Tuple[str, ...]:
    """Registered tier names (availability of imports not checked)."""
    return tuple(sorted(_FACTORIES))


def get_kernels(kernels: KernelsLike = None) -> KernelTier:
    """Resolve a ``kernels=`` argument to a concrete :class:`KernelTier`.

    See the module docstring for the full resolution contract:
    instance > name > ``$REPRO_KERNELS`` > ``"auto"`` (which picks
    ``"native"`` when the extension imported, else ``"numpy"``).
    """
    if isinstance(kernels, KernelTier):
        return kernels
    if kernels is None:
        kernels = os.environ.get(KERNELS_ENV_VAR) or "auto"
    if not isinstance(kernels, str):
        raise TypeError(f"kernels must be a KernelTier, a registered "
                        f"name, or None; got {type(kernels).__name__}")
    if kernels == "auto":
        kernels = "native" if native_available() else "numpy"
    if kernels not in _FACTORIES:
        raise ValueError(f"unknown kernel tier {kernels!r}; registered: "
                         f"{', '.join(available_kernels())}")
    if kernels not in _CACHE:
        _CACHE[kernels] = _FACTORIES[kernels]()
    return _CACHE[kernels]
