"""Small statistics helpers for Monte-Carlo campaign control.

The adaptive-sampling loop (:meth:`repro.faults.batch.CampaignRunner
.run_adaptive`) stops once the failure-rate confidence interval is tight
enough. The Wilson score interval is used rather than the normal
approximation because campaign failure rates are routinely tiny (a
handful of failures in thousands of trials), where the Wald interval
collapses to zero width and never triggers a principled stop.
"""

from __future__ import annotations

import math
from statistics import NormalDist
from typing import Tuple


def _z_value(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Returns ``(low, high)`` bounds in ``[0, 1]``. With ``trials == 0``
    the interval is the vacuous ``(0, 1)``.
    """
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if not 0 <= successes <= max(trials, 0):
        raise ValueError(f"successes must be in [0, {trials}], "
                         f"got {successes}")
    z = _z_value(confidence)
    if trials == 0:
        return 0.0, 1.0
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials
                                   + z2 / (4 * trials * trials))
    # At the degenerate proportions the exact bounds are 0 and 1; snap
    # them so float rounding cannot leave the interval excluding p-hat.
    low = 0.0 if successes == 0 else max(0.0, center - half)
    high = 1.0 if successes == trials else min(1.0, center + half)
    return low, high


def wilson_halfwidth(successes: int, trials: int,
                     confidence: float = 0.95) -> float:
    """Half-width of :func:`wilson_interval` (the early-stop criterion)."""
    low, high = wilson_interval(successes, trials, confidence)
    return (high - low) / 2.0
