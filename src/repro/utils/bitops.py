"""Bit-vector helpers used throughout the crossbar and logic simulators.

Data inside the simulated crossbars is held as numpy boolean arrays; the
logic layer frequently needs to convert between Python integers and
little-endian bit vectors (bit 0 = least significant). These helpers keep
those conversions in one place and make the endianness convention explicit.

Two packing granularities are exposed:

* the byte-level :func:`pack_bits` / :func:`unpack_bits` pair (numpy
  ``packbits`` order) used for serialization;
* the word-level ``uint64`` API — :func:`pack_words` /
  :func:`unpack_words` and the axis-0 generalizations
  :func:`pack_words_axis0` / :func:`unpack_words_axis0` — which is the
  layout primitive of the bit-sliced simulation kernels in
  :mod:`repro.utils.bitpack`. Word layout: element ``i`` of the unpacked
  axis lives in word ``i // 64`` at bit ``i % 64`` (little-endian within
  the word: bit ``j`` is ``(word >> j) & 1``), and the tail of the last
  word is zero-padded.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Bits per packed word of the uint64 API.
WORD_BITS = 64


def int_to_bits(value: int, width: int) -> list[int]:
    """Return ``value`` as a little-endian list of ``width`` bits.

    >>> int_to_bits(6, 4)
    [0, 1, 1, 0]
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int] | np.ndarray) -> int:
    """Inverse of :func:`int_to_bits` (little-endian).

    >>> bits_to_int([0, 1, 1, 0])
    6
    """
    result = 0
    for i, bit in enumerate(bits):
        if bit:
            result |= 1 << i
    return result


def bools_to_bits(values: Iterable[bool]) -> list[int]:
    """Convert an iterable of booleans to a list of 0/1 integers."""
    return [1 if v else 0 for v in values]


def parity(bits: Sequence[int] | np.ndarray) -> int:
    """Even parity (XOR-reduction) of a bit sequence."""
    arr = np.asarray(bits, dtype=np.uint8)
    return int(arr.sum() & 1)


def popcount(bits: Sequence[int] | np.ndarray) -> int:
    """Number of set bits in a bit sequence."""
    arr = np.asarray(bits, dtype=np.uint8)
    return int(arr.sum())


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a boolean/0-1 array into bytes (numpy bit order)."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def unpack_bits(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a uint8 0/1 array of ``count``."""
    arr = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=count)
    return arr.astype(np.uint8)


# ---------------------------------------------------------------------- #
# Word-level (uint64) packing — the bit-slice layout primitive
# ---------------------------------------------------------------------- #

def words_for(count: int) -> int:
    """Number of 64-bit words holding ``count`` packed bits."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return (count + WORD_BITS - 1) // WORD_BITS


def _pack_lanes_contiguous(lanes: np.ndarray, nwords: int) -> np.ndarray:
    """Pack pre-padded ``(nwords * 64, ...)`` uint8/bool lanes to words.

    Regroup the packed axis into per-word 64-bit lanes, transpose them
    innermost (one contiguous copy), then a single
    ``packbits(bitorder="little")`` over the contiguous lane axis and an
    8-byte little-endian view — packbits over a strided axis is several
    times slower than the transpose + contiguous pass.
    """
    tail_shape = lanes.shape[1:]
    k = int(np.prod(tail_shape))
    lanes = np.ascontiguousarray(
        np.moveaxis(lanes.reshape(nwords, WORD_BITS, k), 1, 2))
    packed = np.packbits(lanes, axis=-1, bitorder="little")  # (W, k, 8)
    return packed.view("<u8").reshape((nwords,) + tail_shape)


def _pack_words_axis0_generic(bits: np.ndarray) -> np.ndarray:
    """Reference pack path: normalise to bool, zero-pad, then pack.

    Kept (and benchmarked) separately from the uint8 fast path of
    :func:`pack_words_axis0_numpy` — the ``bits != 0`` bool tensor plus
    the padded copy are two full-size materialisations the common case
    never needs.
    """
    bits = np.asarray(bits)
    count = bits.shape[0]
    tail_shape = bits.shape[1:]
    nwords = words_for(count)
    lanes = bits != 0
    if count != nwords * WORD_BITS:
        padded = np.zeros((nwords * WORD_BITS,) + tail_shape, dtype=bool)
        padded[:count] = lanes
        lanes = padded
    return _pack_lanes_contiguous(lanes, nwords)


def pack_words_axis0_numpy(bits: np.ndarray) -> np.ndarray:
    """Pure-numpy :func:`pack_words_axis0` (the reference tier).

    Fast path: uint8/bool input whose packed axis is already a whole
    number of 64-bit words needs neither the ``bits != 0`` bool tensor
    nor the zero-padded copy — ``packbits`` itself treats any nonzero
    byte as a set bit, so the input feeds the transpose directly.
    """
    bits = np.asarray(bits)
    count = bits.shape[0]
    if count % WORD_BITS == 0 and bits.dtype in (np.uint8, np.bool_):
        return _pack_lanes_contiguous(bits, words_for(count))
    return _pack_words_axis0_generic(bits)


def pack_words_axis0(bits: np.ndarray, kernels=None) -> np.ndarray:
    """Pack axis 0 of a 0/1 array 64-wide into ``uint64`` words.

    ``bits`` of shape ``(B, ...)`` becomes ``(ceil(B/64), ...)`` words
    where slice ``i`` of the input occupies bit ``i % 64`` of word
    ``i // 64`` (little-endian within the word). The tail of the last
    word is zero-padded — the layout invariant every bit-sliced kernel
    in :mod:`repro.utils.bitpack` relies on.

    Dispatches through the kernel-tier registry
    (:func:`repro.utils.kernels.get_kernels`): the compiled tier, when
    built, runs the bit transpose as a single C pass; the numpy tier is
    :func:`pack_words_axis0_numpy`. Both are bit-identical.
    """
    from repro.utils.kernels import get_kernels
    return get_kernels(kernels).pack_words_axis0(np.asarray(bits))


def unpack_words_axis0_numpy(words: np.ndarray, count: int) -> np.ndarray:
    """Pure-numpy :func:`unpack_words_axis0` (the reference tier)."""
    words = np.asarray(words, dtype=np.uint64)
    if words.shape[0] * WORD_BITS < count:
        raise ValueError(f"{words.shape[0]} words hold at most "
                         f"{words.shape[0] * WORD_BITS} bits, need {count}")
    lanes = np.ascontiguousarray(np.moveaxis(words, 0, -1))
    packed = np.moveaxis(lanes.astype("<u8", copy=False).view(np.uint8),
                         -1, 0)
    bits = np.unpackbits(packed, axis=0, count=count, bitorder="little")
    return bits.astype(np.uint8, copy=False)


def unpack_words_axis0(words: np.ndarray, count: int,
                       kernels=None) -> np.ndarray:
    """Inverse of :func:`pack_words_axis0`: ``(W, ...)`` -> ``(count, ...)``.

    Returns a uint8 0/1 array; padding bits beyond ``count`` (and any
    garbage a kernel left in them) are discarded. Dispatches through the
    kernel-tier registry like :func:`pack_words_axis0`.
    """
    from repro.utils.kernels import get_kernels
    return get_kernels(kernels).unpack_words_axis0(words, count)


def pack_words(bits: Sequence[int] | np.ndarray,
               kernels=None) -> np.ndarray:
    """Pack a 1-D bit sequence into little-endian ``uint64`` words.

    >>> pack_words([1, 0, 1])
    array([5], dtype=uint64)
    """
    bits = np.asarray(bits)
    if bits.ndim != 1:
        raise ValueError(f"expected a 1-D bit sequence, got shape {bits.shape}")
    return pack_words_axis0(bits, kernels=kernels)


def unpack_words(words: np.ndarray, count: int,
                 kernels=None) -> np.ndarray:
    """Inverse of :func:`pack_words`; returns a uint8 0/1 array of ``count``.

    >>> unpack_words(np.asarray([5], dtype=np.uint64), 3)
    array([1, 0, 1], dtype=uint8)
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 1:
        raise ValueError(f"expected 1-D words, got shape {words.shape}")
    return unpack_words_axis0(words, count, kernels=kernels)
