"""Bit-vector helpers used throughout the crossbar and logic simulators.

Data inside the simulated crossbars is held as numpy boolean arrays; the
logic layer frequently needs to convert between Python integers and
little-endian bit vectors (bit 0 = least significant). These helpers keep
those conversions in one place and make the endianness convention explicit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def int_to_bits(value: int, width: int) -> list[int]:
    """Return ``value`` as a little-endian list of ``width`` bits.

    >>> int_to_bits(6, 4)
    [0, 1, 1, 0]
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int] | np.ndarray) -> int:
    """Inverse of :func:`int_to_bits` (little-endian).

    >>> bits_to_int([0, 1, 1, 0])
    6
    """
    result = 0
    for i, bit in enumerate(bits):
        if bit:
            result |= 1 << i
    return result


def bools_to_bits(values: Iterable[bool]) -> list[int]:
    """Convert an iterable of booleans to a list of 0/1 integers."""
    return [1 if v else 0 for v in values]


def parity(bits: Sequence[int] | np.ndarray) -> int:
    """Even parity (XOR-reduction) of a bit sequence."""
    arr = np.asarray(bits, dtype=np.uint8)
    return int(arr.sum() & 1)


def popcount(bits: Sequence[int] | np.ndarray) -> int:
    """Number of set bits in a bit sequence."""
    arr = np.asarray(bits, dtype=np.uint8)
    return int(arr.sum())


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a boolean/0-1 array into bytes (numpy bit order)."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes()


def unpack_bits(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a uint8 0/1 array of ``count``."""
    arr = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=count)
    return arr.astype(np.uint8)
