"""Bit-packed (bit-sliced) ``uint64`` kernel layer.

The paper's premise is bulk-bitwise SIMD over crossbar rows; the batched
simulation engine mirrors that on the host, but its ``(B, n, n)`` uint8
tensors still spend one full byte per simulated bit. This module packs
the **batch dimension 64-wide** instead: a stack of ``B`` trials becomes
``ceil(B / 64)`` ``uint64`` *word* tensors of the same trailing shape,
so one XOR/AND/OR machine word processes 64 trials at once and the
memory traffic of every campaign kernel drops 8x versus uint8.

Layout contract
===============

* Trial ``i`` lives in word ``i // 64`` at bit ``i % 64``, little-endian
  within the word (bit ``j`` of a word is ``(word >> j) & 1``) — the
  :func:`repro.utils.bitops.pack_words_axis0` convention, which this
  module reuses as its packing primitive.
* **Tail padding:** when ``B % 64 != 0`` the trailing bits of the last
  word are zero in every *state* tensor (data words, check planes).
  Kernels may leave garbage in those bits of *derived* masks (anything
  computed with a complement, e.g. the ``no_error`` plane of the packed
  decoder); every consumer therefore trims to the true batch size when
  unpacking — :func:`unpack_batch` takes ``batch`` explicitly.
* Packing and unpacking are host-side numpy; the packed words cross onto
  an array backend once via :meth:`repro.utils.backend.ArrayBackend
  .from_numpy`, exactly like the uint8 staging path, so the RNG seeding
  contracts of :mod:`repro.faults.batch` are layout-invariant.

The word-wise kernels (diagonal XOR parity, saturating bit-counts for
the packed decoder, word reductions, popcount) all dispatch through the
backend layer (:mod:`repro.utils.backend`), so the packed path runs on
any registered array module like the uint8 path does. Orthogonally,
the host-side hot loops (pack/unpack, the counters, the fused decoder
sweep) dispatch through the kernel-tier registry
(:mod:`repro.utils.kernels`): when the optional compiled tier is active
*and* the resolved backend's arrays are plain numpy, the C loops run;
every other combination keeps the generic backend path. The tiers are
bit-identical, so the choice is invisible outside of throughput.
"""

from __future__ import annotations

import operator
from typing import Tuple, Union

import numpy as np

from repro.utils.backend import ArrayBackend, BackendLike, get_backend
from repro.utils.bitops import (
    WORD_BITS,
    pack_words_axis0,
    unpack_words_axis0,
    words_for,
)
from repro.utils.kernels import KernelsLike, KernelTier, get_kernels

__all__ = [
    "WORD_BITS",
    "words_for",
    "pack_batch",
    "unpack_batch",
    "batch_tail_mask",
    "saturating_count2",
    "decode_status_masks",
    "or_reduce_words",
    "and_reduce_words",
    "popcount_words",
]


def _native_applies(kern: KernelTier, be: ArrayBackend, *arrays) -> bool:
    """Whether the compiled tier may run on these backend arrays.

    Only when the tier is native *and* the backend's array module is
    numpy itself *and* every operand is a real ``numpy.ndarray`` —
    device backends (cupy) and diagnostic proxies (tracing) must keep
    the generic backend-dispatched path so their semantics (residency,
    op accounting) are preserved.
    """
    return (kern.native and be.xp is np
            and all(isinstance(a, np.ndarray) for a in arrays))


def pack_batch(bits: np.ndarray, backend: BackendLike = None,
               kernels: KernelsLike = None):
    """Pack a host ``(B, ...)`` 0/1 array into ``(W, ...)`` backend words.

    The pack itself runs host-side (numpy or the compiled kernel tier)
    and the words cross onto the backend once — mirroring the
    staged-draw contract of the campaign engine.
    """
    be = get_backend(backend)
    return be.from_numpy(pack_words_axis0(np.asarray(bits),
                                          kernels=kernels))


def unpack_batch(words, batch: int, backend: BackendLike = None,
                 kernels: KernelsLike = None) -> np.ndarray:
    """Unpack ``(W, ...)`` backend words to a host ``(batch, ...)`` uint8.

    Trims tail-padding bits (and any kernel garbage in them) beyond
    ``batch``.
    """
    be = get_backend(backend)
    return unpack_words_axis0(be.to_numpy(words), batch, kernels=kernels)


def batch_tail_mask(batch: int) -> np.ndarray:
    """``(W,)`` uint64 mask with exactly the ``batch`` valid bits set.

    AND a derived mask with this (broadcast over trailing axes) to clear
    tail garbage without unpacking.
    """
    nwords = words_for(batch)
    mask = np.full(nwords, ~np.uint64(0), dtype=np.uint64)
    tail = batch % WORD_BITS
    if tail and nwords:
        mask[-1] = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
    return mask


def saturating_count2(planes, axis: int, backend: BackendLike = None,
                      kernels: KernelsLike = None) -> Tuple:
    """Per-bit count of set bits along ``axis``, saturated at two.

    Returns ``(ones, twos)`` word tensors with ``axis`` removed:
    ``ones`` holds bit 0 of each lane's count and ``twos`` is a sticky
    "count >= 2" flag — the carry-save sideways counter. A lane's count
    is 0 iff ``~ones & ~twos``, exactly 1 iff ``ones & ~twos``, and 2+
    iff ``twos``. This is the bit-parallel core of the packed syndrome
    decoder (the uint8 path's ``sum(axis=1)`` over diagonals).
    """
    be = get_backend(backend)
    kern = get_kernels(kernels)
    if _native_applies(kern, be, planes):
        return kern.saturating_count2(planes, axis)
    xp = be.xp
    planes = xp.asarray(planes)
    length = planes.shape[axis]
    head = (slice(None),) * axis
    ones = xp.zeros_like(planes[head + (0,)])
    twos = xp.zeros_like(ones)
    for d in range(length):
        lane = planes[head + (d,)]
        twos = twos | (ones & lane)
        ones = ones ^ lane
    return ones, twos


def decode_status_masks(lead_syndrome, ctr_syndrome,
                        backend: BackendLike = None,
                        kernels: KernelsLike = None) -> Tuple:
    """Fused packed-decoder classification of two syndrome plane stacks.

    ``lead_syndrome``/``ctr_syndrome`` are ``(W, depth, ...)`` word
    tensors (plane axis 1); returns the five status masks ``(no_error,
    data_error, lead_check, ctr_check, uncorrectable)`` of
    :class:`repro.core.code.PackedBatchDecode`:

    * count 0 in both plane stacks  -> ``no_error``
    * exactly 1 in both             -> ``data_error``
    * exactly 1 lead / 0 counter    -> ``lead_check``
    * 0 lead / exactly 1 counter    -> ``ctr_check``
    * 2+ anywhere                   -> ``uncorrectable``

    On the compiled tier (with numpy-resident arrays) the dual
    carry-save count and the combo expressions run as one C pass; the
    generic path evaluates the same expressions via
    :func:`saturating_count2`. Complement-derived masks may carry tail
    garbage — the usual rule, consumers trim to the true batch.
    """
    be = get_backend(backend)
    kern = get_kernels(kernels)
    if _native_applies(kern, be, lead_syndrome, ctr_syndrome):
        return kern.decode_sweep(lead_syndrome, ctr_syndrome)
    l_ones, l_twos = saturating_count2(lead_syndrome, axis=1, backend=be,
                                       kernels=kern)
    c_ones, c_twos = saturating_count2(ctr_syndrome, axis=1, backend=be,
                                       kernels=kern)
    l0 = ~l_ones & ~l_twos
    l1 = l_ones & ~l_twos
    c0 = ~c_ones & ~c_twos
    c1 = c_ones & ~c_twos
    return (l0 & c0, l1 & c1, l1 & c0, l0 & c1, l_twos | c_twos)


def _fold_reduce(op, arr, axes):
    """Portable fallback: fold ``op`` along each axis via Python loop.

    ``op`` is a plain operator function (``operator.or_`` / ``and_``),
    so the fold dispatches through the arrays' own ``__or__``/``__and__``
    and stays on whatever module the arrays live on.
    """
    for axis in sorted((a % arr.ndim for a in axes), reverse=True):
        acc = arr[(slice(None),) * axis + (0,)]
        for d in range(1, arr.shape[axis]):
            acc = op(acc, arr[(slice(None),) * axis + (d,)])
        arr = acc
    return arr


def _bitwise_reduce(ufunc_name, op, arr, axis, backend):
    be = get_backend(backend)
    xp = be.xp
    arr = xp.asarray(arr)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    ufunc = getattr(xp, ufunc_name, None)
    reduce = getattr(ufunc, "reduce", None) if ufunc is not None else None
    if reduce is not None:
        return reduce(arr, axis=axes)
    return _fold_reduce(op, arr, axes)


def or_reduce_words(arr, axis: Union[int, Tuple[int, ...]],
                    backend: BackendLike = None):
    """Bitwise-OR reduction of word tensors along ``axis`` (int or tuple).

    The packed analogue of ``mask.any(axis)``: a result bit is set iff
    that trial's bit is set anywhere along the reduced axes.
    """
    return _bitwise_reduce("bitwise_or", operator.or_, arr, axis, backend)


def and_reduce_words(arr, axis: Union[int, Tuple[int, ...]],
                     backend: BackendLike = None):
    """Bitwise-AND reduction of word tensors along ``axis`` (int or tuple).

    The packed analogue of ``mask.all(axis)``.
    """
    return _bitwise_reduce("bitwise_and", operator.and_, arr, axis, backend)


def popcount_words(words, backend: BackendLike = None,
                   kernels: KernelsLike = None):
    """Per-word set-bit counts (``int64``), via backend or kernel tier.

    Summing popcounts of a state tensor's words gives the total set bits
    across all trials in one pass — 64 trials per word, no unpacking.
    """
    be = get_backend(backend)
    kern = get_kernels(kernels)
    if _native_applies(kern, be, words):
        return kern.popcount_words(words)
    return be.popcount(words)
