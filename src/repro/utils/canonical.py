"""Canonical JSON serialization and content hashing.

The campaign service (:mod:`repro.service`) addresses results by the
*content* of the submitted job spec: two submissions with the same
normalized spec must map to the same store key on any host, any Python
version, and any dict insertion order. That requires a canonical byte
encoding, which plain ``json.dumps`` is not (key order, whitespace, and
NaN handling all vary by call site).

Canonical form: JSON with sorted keys, no whitespace, ``allow_nan``
disabled (NaN/Infinity have no interoperable JSON encoding and would
silently break cross-host key stability). Floats use Python's shortest
round-trip ``repr``, which is deterministic for equal values.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to its canonical JSON text.

    ``obj`` must be JSON-representable (dicts with string keys, lists,
    strings, ints, finite floats, bools, None). Equal objects always
    produce identical text; non-finite floats and non-JSON types raise
    ``ValueError``/``TypeError`` rather than degrading determinism.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def content_hash(obj: Any) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``obj``.

    The content-addressed store key: identical specs hash identically
    on every host, and any semantic change to the spec changes the key.
    """
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8"))
    return digest.hexdigest()
