"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (fault injectors, Monte-Carlo
campaigns, randomized tests) takes either a seed or a ``numpy.random
.Generator``. Centralizing the coercion here guarantees reproducible runs:
the same seed always produces the same fault pattern.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can
    share one stream when that is desired.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used by parallel Monte-Carlo campaigns so each trial gets its own
    stream while remaining reproducible from the single campaign seed.
    Any integral seed (Python or numpy) seeds the root deterministically;
    ``None`` draws fresh OS entropy. A live :class:`numpy.random
    .Generator` cannot be decomposed into independent children and is
    rejected rather than silently falling back to fresh entropy.
    """
    if isinstance(seed, np.random.Generator):
        raise ValueError(
            "spawn_rngs needs an integer seed (or None), not a Generator: "
            "independent child streams cannot be derived from a live "
            "stream")
    if seed is not None:
        seed = int(seed)
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(count)]


def resolve_entropy(seed: SeedLike = None) -> int:
    """Coerce ``seed`` into root entropy for per-trial seeding.

    ``None`` draws fresh OS entropy once (the run is then reproducible
    from the returned value). A :class:`numpy.random.Generator` cannot be
    decomposed into per-trial child streams, so it is rejected — sharded
    campaigns must be seeded with an integer.
    """
    if isinstance(seed, np.random.Generator):
        raise ValueError(
            "per-trial seeding needs an integer seed (or None), not a "
            "Generator: child streams cannot be derived from a live stream")
    if seed is None:
        entropy = np.random.SeedSequence().entropy
    else:
        entropy = seed
    return int(entropy)


def trial_seed_sequence(entropy: int, trial: int) -> np.random.SeedSequence:
    """The seed sequence of trial ``trial`` under root ``entropy``.

    Equivalent to ``SeedSequence(entropy).spawn(trial + 1)[trial]`` but
    O(1): the child is addressed directly by its spawn key. Because the
    mapping depends only on ``(entropy, trial)``, any partition of a
    campaign into shards reproduces identical per-trial streams.
    """
    return np.random.SeedSequence(entropy, spawn_key=(trial,))


def trial_rngs(entropy: int, trial: int,
               streams: int = 2) -> list[np.random.Generator]:
    """Independent generators for one trial (data fill, injection, ...).

    The trial's seed sequence is split into ``streams`` children so the
    data-fill stream and the injection stream never interleave — the
    same decomposition the scalar campaign gets from its two seeds.
    """
    return [np.random.default_rng(s)
            for s in trial_seed_sequence(entropy, trial).spawn(streams)]


def shard_bounds(total: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``shards`` contiguous half-open slices.

    Sizes differ by at most one; empty slices are dropped, so the result
    may be shorter than ``shards`` when ``total < shards``.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds
