"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (fault injectors, Monte-Carlo
campaigns, randomized tests) takes either a seed or a ``numpy.random
.Generator``. Centralizing the coercion here guarantees reproducible runs:
the same seed always produces the same fault pattern.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can
    share one stream when that is desired.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used by parallel Monte-Carlo campaigns so each trial gets its own
    stream while remaining reproducible from the single campaign seed.
    """
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in root.spawn(count)]
