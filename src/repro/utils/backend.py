"""Pluggable array-backend layer for the vectorized simulation engine.

Every batched kernel in the library (``DiagonalParityCode.encode_batch``
/ ``decode_batch``, ``repro.core.checker.check_all_batched``, the
``inject_batch`` implementations, and the engines built on them) runs its
tensor arithmetic through an :class:`ArrayBackend` handle instead of a
hard-wired ``import numpy``. A backend wraps a numpy-like array module
(duck-typed: anything exposing the array-API-style surface numpy does —
``asarray``/``empty``/``zeros``/``nonzero``/ufuncs/reductions and
advanced indexing) plus the few operations that are *not* portable
across such modules (host transfer, scatter-XOR).

Backend-selection contract
==========================

Resolution order of :func:`get_backend`:

1. An explicit handle wins: pass an :class:`ArrayBackend` instance (used
   verbatim) or a registered backend name (``str``) to any ``backend=``
   parameter in the library.
2. With ``backend=None`` (the default everywhere), the environment
   variable ``REPRO_BACKEND`` selects a registered backend by name.
3. With no environment override, the ``"numpy"`` backend is used.

Built-in registry entries:

``"numpy"``
    The default. Zero-copy host transfer; bit-identical to every scalar
    reference path (the seeding contracts of :mod:`repro.faults.batch`
    are stated for this backend).
``"cupy"``
    GPU backend, available only when the optional ``cupy`` package is
    importable; requesting it without the package raises
    :class:`BackendUnavailableError` with an install hint. Arrays live on
    the device; :meth:`ArrayBackend.to_numpy` copies back to host.
``"tracing"``
    A numpy-delegating diagnostic backend that records every array-module
    attribute the kernels touch (:attr:`TracingBackend.ops`). Results are
    bit-identical to ``"numpy"``; tests use it to prove the engines run
    end-to-end under a non-default handle and never bypass the backend.

Custom backends: build an :class:`ArrayBackend` around any numpy-like
module and either pass the instance directly or
:func:`register_backend` it under a name (required for
``REPRO_BACKEND`` selection and for multi-process sharded campaigns,
which ship the backend *name* to workers — module handles themselves do
not pickle).

Random-number generation is deliberately **not** part of the backend
surface: all stochastic draws stay on ``numpy.random`` generators (see
:mod:`repro.utils.rng`) so the per-trial seeding and bit-identical
sequential contracts hold under every backend; draws cross onto the
backend via :meth:`ArrayBackend.from_numpy` staging.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

#: Environment variable naming the default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendUnavailableError(RuntimeError):
    """A registered backend's underlying array module is not importable."""


class ArrayBackend:
    """Handle around a numpy-like array module.

    Parameters
    ----------
    name:
        Identifier used in reprs, registry lookups, and shard payloads.
    xp:
        The array module (``numpy``, ``cupy``, or any duck-typed
        equivalent). Kernels call ``backend.xp.<op>`` for ordinary array
        arithmetic.
    to_numpy / from_numpy:
        Host-transfer hooks. The defaults (``numpy.asarray`` /
        ``xp.asarray``) are zero-copy for host backends; device backends
        override them (e.g. ``cupy.asnumpy`` / ``cupy.asarray``).
    """

    def __init__(self, name: str, xp,
                 to_numpy: Optional[Callable] = None,
                 from_numpy: Optional[Callable] = None):
        self.name = name
        self.xp = xp
        self._to_numpy = to_numpy
        self._from_numpy = from_numpy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayBackend({self.name!r})"

    # ------------------------------------------------------------------ #
    # Host boundary
    # ------------------------------------------------------------------ #

    def to_numpy(self, arr) -> np.ndarray:
        """Materialize a backend array as a host ``numpy.ndarray``."""
        if self._to_numpy is not None:
            return self._to_numpy(arr)
        return np.asarray(arr)

    def from_numpy(self, arr: np.ndarray):
        """Move a host array onto the backend (identity for numpy)."""
        if self._from_numpy is not None:
            return self._from_numpy(arr)
        return self.xp.asarray(arr)

    # ------------------------------------------------------------------ #
    # Portability shims — the ops that are not uniform across modules
    # ------------------------------------------------------------------ #

    def xor_reduce(self, arr, axis: int = 0):
        """XOR-reduce along ``axis``.

        Uses the ufunc reduction when the module provides one, otherwise
        a portable bitwise fold — the fold (not a sum-parity trick) so
        the result is correct for multi-bit values like the packed
        ``uint64`` word tensors, not just 0/1 fields.
        """
        xor = getattr(self.xp, "bitwise_xor", None)
        reduce = getattr(xor, "reduce", None) if xor is not None else None
        if reduce is not None:
            return reduce(arr, axis=axis)
        index = (slice(None),) * (axis % arr.ndim)
        acc = arr[index + (0,)]
        for d in range(1, arr.shape[axis]):
            acc = acc ^ arr[index + (d,)]
        return acc

    def scatter_xor(self, arr, indices: Tuple, values=None) -> None:
        """In-place ``arr[indices] ^= values`` honouring duplicate indices.

        With ``values=None`` every listed cell is XORed with 1; a cell
        listed ``k`` times is inverted ``k`` times — the semantics the
        fault injectors rely on for duplicate flip events. An explicit
        ``values`` array (one value per index tuple, e.g. the single-bit
        masks of the packed ``uint64`` layout) is XOR-folded per cell the
        same way, so duplicated (index, value) pairs cancel pairwise.
        numpy's ``bitwise_xor.at`` implements both directly; modules
        without ``ufunc.at`` fall back to a host-side fold staged back
        through :meth:`from_numpy`.
        """
        indices = tuple(self.xp.asarray(ix) for ix in indices)
        at = getattr(self.xp.bitwise_xor, "at", None)
        if at is not None:
            if values is None:
                at(arr, indices, arr.dtype.type(1))
            else:
                at(arr, indices, self.xp.asarray(values, dtype=arr.dtype))
            return
        if values is None and hasattr(self.xp, "ravel_multi_index") \
                and hasattr(self.xp, "bincount"):
            flat = self.xp.ravel_multi_index(indices, arr.shape)
            counts = self.xp.bincount(flat, minlength=arr.size)
            arr ^= (counts % 2).astype(arr.dtype).reshape(arr.shape)
            return
        # Generic fallback: XOR-fold host-side, then apply in one pass.
        host_idx = tuple(np.asarray(self.to_numpy(ix)) for ix in indices)
        fold = np.zeros(arr.shape, dtype=arr.dtype)
        host_vals = fold.dtype.type(1) if values is None \
            else np.asarray(values, dtype=fold.dtype)
        np.bitwise_xor.at(fold, host_idx, host_vals)
        arr ^= self.from_numpy(fold)

    def popcount(self, arr):
        """Per-element count of set bits (for packed ``uint64`` words).

        Uses the module's native ``bitwise_count`` when present (numpy
        >= 2.0, cupy) and a SWAR (SIMD-within-a-register) bit-twiddling
        fallback otherwise. Returns an ``int64`` array of ``arr.shape``.
        """
        xp = self.xp
        native = getattr(xp, "bitwise_count", None)
        if native is not None:
            return native(arr).astype(xp.int64)
        x = xp.asarray(arr, dtype=xp.uint64)
        m1 = xp.uint64(0x5555555555555555)
        m2 = xp.uint64(0x3333333333333333)
        m4 = xp.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = xp.uint64(0x0101010101010101)
        x = x - ((x >> xp.uint64(1)) & m1)
        x = (x & m2) + ((x >> xp.uint64(2)) & m2)
        x = (x + (x >> xp.uint64(4))) & m4
        return ((x * h01) >> xp.uint64(56)).astype(xp.int64)


class _TracingModule:
    """Attribute proxy over numpy that records which ops were requested."""

    def __init__(self, ops: Dict[str, int]):
        self._ops = ops

    def __getattr__(self, name: str):
        attr = getattr(np, name)
        self._ops[name] = self._ops.get(name, 0) + 1
        return attr


class TracingBackend(ArrayBackend):
    """Numpy-delegating backend that counts array-module attribute hits.

    ``ops`` maps op name -> access count; :meth:`reset` clears it. Used
    by tests to prove the batched engines route every tensor op through
    the backend handle (and as a template for wrapping real alternative
    modules).
    """

    def __init__(self):
        self.ops: Dict[str, int] = {}
        super().__init__("tracing", _TracingModule(self.ops),
                         to_numpy=np.asarray)

    def reset(self) -> None:
        self.ops.clear()


def _make_numpy() -> ArrayBackend:
    return ArrayBackend("numpy", np, to_numpy=np.asarray, from_numpy=None)


def _make_cupy() -> ArrayBackend:
    try:
        import cupy  # noqa: F401 - optional dependency
    except ImportError as exc:
        raise BackendUnavailableError(
            "the 'cupy' backend requires the optional cupy package "
            "(pip install cupy-cuda12x or the wheel matching your CUDA "
            "toolkit); falling back is automatic only when REPRO_BACKEND "
            "is unset") from exc
    return ArrayBackend("cupy", cupy, to_numpy=cupy.asnumpy,
                        from_numpy=cupy.asarray)


_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _make_numpy,
    "cupy": _make_cupy,
    "tracing": TracingBackend,
}

#: Instantiated backends, one per registry name (tracing excepted — its
#: per-instance op log makes caching surprising, so it is rebuilt fresh).
_CACHE: Dict[str, ArrayBackend] = {}

BackendLike = Union[ArrayBackend, str, None]


def register_backend(name: str, factory: Callable[[], ArrayBackend],
                     overwrite: bool = False) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is a zero-argument callable returning an
    :class:`ArrayBackend`; it runs lazily on first :func:`get_backend`
    lookup (so optional imports belong inside it). Re-registering an
    existing name requires ``overwrite=True``.
    """
    if name in _FACTORIES and not overwrite:
        raise ValueError(f"backend {name!r} is already registered "
                         f"(pass overwrite=True to replace it)")
    _FACTORIES[name] = factory
    _CACHE.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names (availability of imports not checked)."""
    return tuple(sorted(_FACTORIES))


def get_backend(backend: BackendLike = None) -> ArrayBackend:
    """Resolve a ``backend=`` argument to an :class:`ArrayBackend`.

    See the module docstring for the full resolution contract:
    instance > name > ``$REPRO_BACKEND`` > ``"numpy"``.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "numpy"
    if not isinstance(backend, str):
        raise TypeError(f"backend must be an ArrayBackend, a registered "
                        f"name, or None; got {type(backend).__name__}")
    if backend not in _FACTORIES:
        raise ValueError(f"unknown backend {backend!r}; registered: "
                         f"{', '.join(available_backends())}")
    if backend == "tracing":
        return _FACTORIES[backend]()
    if backend not in _CACHE:
        _CACHE[backend] = _FACTORIES[backend]()
    return _CACHE[backend]
